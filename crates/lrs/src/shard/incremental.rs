//! Incremental CCO training: per-event indicator/co-occurrence updates.
//!
//! The batch trainer ([`crate::cco::CcoTrainer`]) recounts every pair on
//! every retrain — the Spark-job shape the paper inherits from Harness.
//! At million-user scale that batch is the freshness bottleneck: an
//! association posted right after a retrain is invisible until the next
//! one. This module keeps the *same* count structures the batch job
//! would build (per-user deduplicated/downsampled sets, per-item user
//! counts, pairwise co-occurrence counts) and folds each accepted event
//! into them online, then repairs only the indicator lists the event
//! touched — the incremental item-similarity update of Zhao et al.
//! (scalable item-based top-N, PAPERS.md).
//!
//! ## Exactness invariants
//!
//! * **Counts are always exact.** After any event prefix, user sets,
//!   item counts, co-occurrence counts and interaction totals are
//!   byte-identical to what a batch pass over the same prefix would
//!   count (the acceptance rule is the batch rule, applied online).
//! * **Touched lists are fresh.** Every pair whose `k11` changed is
//!   re-scored immediately and repositioned in both items' top-K lists,
//!   so a new association is queryable as soon as its post returns.
//! * **Untouched lists may drift.** A pair only one of whose marginals
//!   changed (`k12`/`k21`/`k22` via another item's count or a new user)
//!   keeps its last LLR until its item is next touched or [`sync`]
//!   runs. [`sync`](IncrementalCco::sync) recomputes every list from
//!   the exact counts, after which recommendations are byte-identical
//!   to a batch retrain over the same events (the differential test in
//!   `tests/shard_differential.rs` holds this line).

use crate::cco::{log_likelihood_ratio, CcoConfig};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Interned item id (the catalog is bounded — ~100k items — while users
/// are not, so only items are interned).
pub type ItemId = u32;

/// Aggregate counters of one incremental model, for gauges and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Accepted interactions (after dedup/downsampling) — the batch
    /// trainer's `num_interactions`.
    pub interactions: u64,
    /// Distinct items with at least one accepted interaction.
    pub items: u64,
    /// Items whose indicator lists may have drifted since the last
    /// [`IncrementalCco::sync`] (the ingest-backlog depth gauge).
    pub dirty: u64,
    /// Microseconds the most recent accepted event spent updating the
    /// index — the ingest lag between a post and its queryability.
    pub last_apply_us: u64,
}

/// An incrementally-trained CCO model plus its inverted scoring index.
///
/// Owns the item-side state only; the caller owns per-user sets (they
/// live with the user record) and passes them in, which keeps one map
/// of users instead of two at million-user scale.
pub struct IncrementalCco {
    config: CcoConfig,
    names: Vec<String>,
    ids: HashMap<String, ItemId>,
    /// Users per item (over deduplicated sets) — `k11 + k12` marginal.
    item_count: Vec<u64>,
    /// Symmetric co-occurrence adjacency: `cooc[a][b] == cooc[b][a]`.
    cooc: Vec<HashMap<ItemId, u64>>,
    /// Per target item: its top-K indicators, ordered (LLR desc, item
    /// name asc) — the same total order the batch trainer sorts by.
    indicators: Vec<Vec<(ItemId, f64)>>,
    /// Inverted index: `postings[h]` lists `(target, llr)` for every
    /// target whose indicator list contains `h`.
    postings: Vec<Vec<(ItemId, f64)>>,
    items_seen: u64,
    interactions: u64,
    dirty: HashSet<ItemId>,
    last_apply_us: u64,
}

impl std::fmt::Debug for IncrementalCco {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalCco")
            .field("items", &self.items_seen)
            .field("interactions", &self.interactions)
            .field("dirty", &self.dirty.len())
            .finish()
    }
}

impl IncrementalCco {
    /// An empty model with the given CCO limits.
    pub fn new(config: CcoConfig) -> Self {
        IncrementalCco {
            config,
            names: Vec::new(),
            ids: HashMap::new(),
            item_count: Vec::new(),
            cooc: Vec::new(),
            indicators: Vec::new(),
            postings: Vec::new(),
            items_seen: 0,
            interactions: 0,
            dirty: HashSet::new(),
            last_apply_us: 0,
        }
    }

    /// The model's CCO limits.
    pub fn config(&self) -> &CcoConfig {
        &self.config
    }

    /// Interns `name`, growing every per-item table in step.
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as ItemId;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        self.item_count.push(0);
        self.cooc.push(HashMap::new());
        self.indicators.push(Vec::new());
        self.postings.push(Vec::new());
        id
    }

    /// The id of an already-interned item.
    pub fn lookup(&self, name: &str) -> Option<ItemId> {
        self.ids.get(name).copied()
    }

    /// The name of an interned item.
    ///
    /// # Panics
    ///
    /// If `id` was not returned by [`intern`](Self::intern).
    pub fn name(&self, id: ItemId) -> &str {
        &self.names[id as usize]
    }

    /// Applies one interaction: item `item` joins the caller's per-user
    /// `set` under the batch acceptance rule (reject when the set is at
    /// `max_prefs_per_user` or already contains the item), and every
    /// touched pair is re-scored into both top-K lists. `num_users` must
    /// count the user owning `set` (it is the `k22` marginal).
    ///
    /// Returns whether the interaction was accepted.
    pub fn add_to_set(&mut self, set: &mut Vec<ItemId>, item: ItemId, num_users: u64) -> bool {
        if set.len() >= self.config.max_prefs_per_user || set.contains(&item) {
            return false;
        }
        let started = Instant::now();
        set.push(item);
        self.interactions += 1;
        self.item_count[item as usize] += 1;
        if self.item_count[item as usize] == 1 {
            self.items_seen += 1;
        }
        self.dirty.insert(item);
        // Count and re-score every pair the event touched. `set` ends
        // with `item` itself; skip it.
        for &other in set.iter().take(set.len() - 1) {
            *self.cooc[item as usize].entry(other).or_insert(0) += 1;
            *self.cooc[other as usize].entry(item).or_insert(0) += 1;
            let llr = self.pair_llr(item, other, num_users);
            self.upsert_indicator(item, other, llr);
            self.upsert_indicator(other, item, llr);
            self.dirty.insert(other);
        }
        self.last_apply_us = started.elapsed().as_micros() as u64;
        true
    }

    /// Dunning LLR of the `(a, b)` pair from the current exact counts.
    ///
    /// The pair is canonicalized by item name before building the
    /// contingency table: the batch trainer computes each pair once
    /// with the lexicographically smaller item in the row role, and the
    /// entropy sums are order-sensitive in the last ulps — transposing
    /// the table gives a mathematically equal but not bit-equal f64.
    fn pair_llr(&self, a: ItemId, b: ItemId, num_users: u64) -> f64 {
        let (a, b) = if self.names[a as usize] <= self.names[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        let k11 = self.cooc[a as usize].get(&b).copied().unwrap_or(0);
        let count_a = self.item_count[a as usize];
        let count_b = self.item_count[b as usize];
        let k12 = count_a - k11;
        let k21 = count_b - k11;
        let k22 = num_users.saturating_sub(count_a + count_b - k11);
        log_likelihood_ratio(k11, k12, k21, k22)
    }

    /// `true` when `(llr_x, name_x)` sorts before `(llr_y, name_y)` in
    /// indicator order: LLR descending, item name ascending — the batch
    /// trainer's exact comparator.
    fn precedes(&self, x: (ItemId, f64), y: (ItemId, f64)) -> bool {
        match y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.names[x.0 as usize] < self.names[y.0 as usize],
        }
    }

    /// Repositions indicator `ind` in `target`'s top-K list at strength
    /// `llr`, mirroring the change into the inverted postings. Below
    /// `min_llr` (or evicted by a stronger K-th entry) the indicator is
    /// removed instead.
    fn upsert_indicator(&mut self, target: ItemId, ind: ItemId, llr: f64) {
        let list = &mut self.indicators[target as usize];
        let existing = list.iter().position(|&(i, _)| i == ind);
        if llr < self.config.min_llr {
            if existing.is_some() {
                self.remove_indicator(target, ind);
            }
            return;
        }
        if let Some(at) = existing {
            list.remove(at);
        } else if list.len() >= self.config.max_indicators_per_item {
            // Full list: the candidate must beat the current weakest.
            let weakest = *list.last().expect("non-empty at capacity");
            if !self.precedes((ind, llr), weakest) {
                return;
            }
            self.remove_indicator(target, weakest.0);
        }
        let entry = (ind, llr);
        let list = &self.indicators[target as usize];
        let mut at = list.len();
        for (i, &e) in list.iter().enumerate() {
            if !self.precedes(e, entry) {
                at = i;
                break;
            }
        }
        self.indicators[target as usize].insert(at, entry);
        let posts = &mut self.postings[ind as usize];
        match posts.iter_mut().find(|(t, _)| *t == target) {
            Some(slot) => slot.1 = llr,
            None => posts.push((target, llr)),
        }
    }

    /// Drops indicator `ind` from `target`'s list and its posting.
    fn remove_indicator(&mut self, target: ItemId, ind: ItemId) {
        self.indicators[target as usize].retain(|&(i, _)| i != ind);
        self.postings[ind as usize].retain(|&(t, _)| t != target);
    }

    /// Accumulates indicator strengths over `history` (in order, one
    /// contribution per `(history item, target)` pair — the same
    /// arithmetic, in the same order, as
    /// [`crate::index::ScoringIndex::recommend_filtered`]).
    pub fn score(&self, history: &[ItemId]) -> HashMap<ItemId, f64> {
        let mut scores: HashMap<ItemId, f64> = HashMap::new();
        for &h in history {
            if let Some(posts) = self.postings.get(h as usize) {
                for &(target, llr) in posts {
                    *scores.entry(target).or_insert(0.0) += llr;
                }
            }
        }
        scores
    }

    /// Full exact repair: recomputes every indicator list from the
    /// (always-exact) counts and rebuilds the inverted index. After
    /// `sync`, recommendations are byte-identical to a batch retrain
    /// over the same events. Cost is proportional to the number of
    /// distinct co-occurring pairs.
    pub fn sync(&mut self, num_users: u64) {
        for posts in &mut self.postings {
            posts.clear();
        }
        for a in 0..self.names.len() as ItemId {
            let mut list: Vec<(ItemId, f64)> = self.cooc[a as usize]
                .iter()
                .map(|(&b, _)| (b, self.pair_llr(a, b, num_users)))
                .filter(|&(_, llr)| llr >= self.config.min_llr)
                .collect();
            list.sort_by(|&x, &y| {
                y.1.partial_cmp(&x.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| self.names[x.0 as usize].cmp(&self.names[y.0 as usize]))
            });
            list.truncate(self.config.max_indicators_per_item);
            self.indicators[a as usize] = list;
        }
        for a in 0..self.names.len() as ItemId {
            for &(ind, llr) in &self.indicators[a as usize] {
                self.postings[ind as usize].push((a, llr));
            }
        }
        self.dirty.clear();
    }

    /// The current indicator list of `name`, strongest first, as
    /// `(item name, llr)` pairs. Empty for unknown items.
    pub fn indicators_of(&self, name: &str) -> Vec<(String, f64)> {
        let Some(id) = self.lookup(name) else {
            return Vec::new();
        };
        self.indicators[id as usize]
            .iter()
            .map(|&(i, llr)| (self.names[i as usize].clone(), llr))
            .collect()
    }

    /// Aggregate counters for gauges and reports.
    pub fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            interactions: self.interactions,
            items: self.items_seen,
            dirty: self.dirty.len() as u64,
            last_apply_us: self.last_apply_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IncrementalCco {
        IncrementalCco::new(CcoConfig {
            min_llr: 0.5,
            ..CcoConfig::default()
        })
    }

    /// Drives `(user, item)` events through per-user sets the way the
    /// shard engine does.
    fn drive(m: &mut IncrementalCco, events: &[(&str, &str)]) {
        let mut users: HashMap<String, Vec<ItemId>> = HashMap::new();
        for &(u, i) in events {
            let id = m.intern(i);
            let is_new = !users.contains_key(u);
            let num_users = users.len() as u64 + is_new as u64;
            let set = users.entry(u.to_owned()).or_default();
            m.add_to_set(set, id, num_users);
        }
    }

    fn clustered() -> Vec<(&'static str, &'static str)> {
        // Contrast users first: an event's LLR is computed against the
        // user population at event time, so the pair events must arrive
        // when the background already exists for "immediately visible"
        // to hold (otherwise the pair waits for the next sync — the
        // documented drift).
        let mut ev = Vec::new();
        for u in ["x1", "x2", "x3", "x4", "x5", "x6"] {
            ev.push((u, "solo"));
        }
        for u in ["u1", "u2", "u3", "u4", "u5", "u6"] {
            ev.push((u, "a"));
            ev.push((u, "b"));
        }
        ev
    }

    #[test]
    fn association_is_visible_immediately() {
        let mut m = model();
        drive(&mut m, &clustered());
        let inds = m.indicators_of("a");
        assert_eq!(inds.len(), 1);
        assert_eq!(inds[0].0, "b");
        assert!(inds[0].1 > 1.0);
    }

    #[test]
    fn duplicates_and_caps_follow_the_batch_rule() {
        let mut m = IncrementalCco::new(CcoConfig {
            max_prefs_per_user: 2,
            ..CcoConfig::default()
        });
        let a = m.intern("a");
        let b = m.intern("b");
        let c = m.intern("c");
        let mut set = Vec::new();
        assert!(m.add_to_set(&mut set, a, 1));
        assert!(!m.add_to_set(&mut set, a, 1), "duplicate rejected");
        assert!(m.add_to_set(&mut set, b, 1));
        assert!(!m.add_to_set(&mut set, c, 1), "cap rejected");
        assert_eq!(m.stats().interactions, 2);
    }

    #[test]
    fn scoring_accumulates_over_history() {
        let mut m = model();
        drive(&mut m, &clustered());
        let a = m.lookup("a").unwrap();
        let b = m.lookup("b").unwrap();
        let scores = m.score(&[a]);
        assert!(scores[&b] > 0.0);
        let double = m.score(&[a, a]);
        assert!((double[&b] - 2.0 * scores[&b]).abs() < 1e-12);
    }

    #[test]
    fn sync_clears_the_dirty_backlog() {
        let mut m = model();
        drive(&mut m, &clustered());
        assert!(m.stats().dirty > 0);
        m.sync(12);
        assert_eq!(m.stats().dirty, 0);
        // Lists survive the repair.
        assert_eq!(m.indicators_of("a")[0].0, "b");
    }

    #[test]
    fn weak_pairs_are_filtered() {
        let mut m = IncrementalCco::new(CcoConfig {
            min_llr: 1000.0,
            ..CcoConfig::default()
        });
        drive(&mut m, &clustered());
        assert!(m.indicators_of("a").is_empty());
        let a = m.lookup("a").unwrap();
        assert!(m.score(&[a]).is_empty());
    }

    #[test]
    fn top_k_evicts_the_weakest() {
        let mut m = IncrementalCco::new(CcoConfig {
            max_indicators_per_item: 2,
            min_llr: 0.1,
            ..CcoConfig::default()
        });
        // hub pairs with i1 (3 users), i2 (2 users), i3 (1 user), plus
        // background users for contrast.
        let mut ev: Vec<(String, String)> = Vec::new();
        for (strength, other) in [(5, "i1"), (4, "i2"), (2, "i3")] {
            for u in 0..strength {
                ev.push((format!("u-{other}-{u}"), "hub".into()));
                ev.push((format!("u-{other}-{u}"), other.into()));
            }
        }
        for u in 0..30 {
            ev.push((format!("bg{u}"), format!("bg-{u}")));
        }
        let evs: Vec<(&str, &str)> = ev.iter().map(|(u, i)| (u.as_str(), i.as_str())).collect();
        drive(&mut m, &evs);
        m.sync(41);
        let inds = m.indicators_of("hub");
        assert_eq!(inds.len(), 2);
        assert!(inds[0].1 >= inds[1].1);
        assert!(!inds.iter().any(|(n, _)| n == "i3"), "{inds:?}");
    }
}
