//! In-memory document store (MongoDB substitute).
//!
//! Harness persists engine data and pending feedback events in MongoDB
//! (§7). The reproduction keeps the same architecture — the engine writes
//! every `post` event to a document collection, and the batch trainer reads
//! them back — with an in-process store: named collections of JSON
//! documents with auto-assigned ids, equality filters, and a simple
//! secondary index.

use parking_lot::RwLock;
use pprox_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored document id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

/// One collection of JSON documents.
#[derive(Debug, Default)]
struct Collection {
    docs: Vec<(DocId, Value)>,
    /// field name -> field value -> doc positions
    indexes: HashMap<String, HashMap<String, Vec<usize>>>,
}

impl Collection {
    fn insert(&mut self, id: DocId, doc: Value) {
        let pos = self.docs.len();
        for (field, index) in self.indexes.iter_mut() {
            if let Some(key) = doc.get(field).and_then(|v| v.as_str()) {
                index.entry(key.to_owned()).or_default().push(pos);
            }
        }
        self.docs.push((id, doc));
    }

    fn create_index(&mut self, field: &str) {
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (pos, (_, doc)) in self.docs.iter().enumerate() {
            if let Some(key) = doc.get(field).and_then(|v| v.as_str()) {
                index.entry(key.to_owned()).or_default().push(pos);
            }
        }
        self.indexes.insert(field.to_owned(), index);
    }

    fn find_eq(&self, field: &str, value: &str) -> Vec<(DocId, Value)> {
        if let Some(index) = self.indexes.get(field) {
            return index
                .get(value)
                .map(|positions| positions.iter().map(|&p| self.docs[p].clone()).collect())
                .unwrap_or_default();
        }
        self.docs
            .iter()
            .filter(|(_, d)| d.get(field).and_then(|v| v.as_str()) == Some(value))
            .cloned()
            .collect()
    }
}

/// A thread-safe, in-memory document database.
///
/// # Examples
///
/// ```
/// use pprox_lrs::docstore::DocStore;
/// use pprox_json::Value;
///
/// let store = DocStore::new();
/// store.insert("events", Value::object([("user", Value::from("u1"))]));
/// assert_eq!(store.find_eq("events", "user", "u1").len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DocStore {
    collections: RwLock<HashMap<String, Collection>>,
    next_id: AtomicU64,
}

impl DocStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a document, returning its id. The collection is created on
    /// first use (MongoDB semantics).
    pub fn insert(&self, collection: &str, doc: Value) -> DocId {
        let id = DocId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut cols = self.collections.write();
        cols.entry(collection.to_owned())
            .or_default()
            .insert(id, doc);
        id
    }

    /// Creates an equality index over a string field.
    pub fn create_index(&self, collection: &str, field: &str) {
        let mut cols = self.collections.write();
        cols.entry(collection.to_owned())
            .or_default()
            .create_index(field);
    }

    /// All documents where string field `field` equals `value`.
    pub fn find_eq(&self, collection: &str, field: &str, value: &str) -> Vec<(DocId, Value)> {
        let cols = self.collections.read();
        cols.get(collection)
            .map(|c| c.find_eq(field, value))
            .unwrap_or_default()
    }

    /// Full scan of a collection.
    pub fn scan(&self, collection: &str) -> Vec<(DocId, Value)> {
        let cols = self.collections.read();
        cols.get(collection)
            .map(|c| c.docs.clone())
            .unwrap_or_default()
    }

    /// Number of documents in a collection (0 if absent).
    pub fn count(&self, collection: &str) -> usize {
        let cols = self.collections.read();
        cols.get(collection).map(|c| c.docs.len()).unwrap_or(0)
    }

    /// Drops a collection, returning how many documents it held.
    pub fn drop_collection(&self, collection: &str) -> usize {
        let mut cols = self.collections.write();
        cols.remove(collection).map(|c| c.docs.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(user: &str, item: &str) -> Value {
        Value::object([("user", Value::from(user)), ("item", Value::from(item))])
    }

    #[test]
    fn insert_assigns_unique_ids() {
        let store = DocStore::new();
        let a = store.insert("c", doc("u1", "i1"));
        let b = store.insert("c", doc("u1", "i2"));
        assert_ne!(a, b);
        assert_eq!(store.count("c"), 2);
    }

    #[test]
    fn find_eq_without_index() {
        let store = DocStore::new();
        store.insert("c", doc("u1", "i1"));
        store.insert("c", doc("u2", "i2"));
        store.insert("c", doc("u1", "i3"));
        let found = store.find_eq("c", "user", "u1");
        assert_eq!(found.len(), 2);
        assert!(found
            .iter()
            .all(|(_, d)| d.get("user").unwrap().as_str() == Some("u1")));
    }

    #[test]
    fn find_eq_with_index_matches_scan() {
        let store = DocStore::new();
        for i in 0..20 {
            store.insert("c", doc(&format!("u{}", i % 3), &format!("i{i}")));
        }
        let unindexed = store.find_eq("c", "user", "u1");
        store.create_index("c", "user");
        let indexed = store.find_eq("c", "user", "u1");
        assert_eq!(unindexed, indexed);
    }

    #[test]
    fn index_created_before_inserts_stays_current() {
        let store = DocStore::new();
        store.create_index("c", "user");
        store.insert("c", doc("u9", "i1"));
        store.insert("c", doc("u9", "i2"));
        assert_eq!(store.find_eq("c", "user", "u9").len(), 2);
    }

    #[test]
    fn missing_collection_is_empty() {
        let store = DocStore::new();
        assert!(store.find_eq("none", "f", "v").is_empty());
        assert!(store.scan("none").is_empty());
        assert_eq!(store.count("none"), 0);
    }

    #[test]
    fn drop_collection_counts() {
        let store = DocStore::new();
        store.insert("c", doc("u", "i"));
        assert_eq!(store.drop_collection("c"), 1);
        assert_eq!(store.count("c"), 0);
        assert_eq!(store.drop_collection("c"), 0);
    }

    #[test]
    fn collections_are_isolated() {
        let store = DocStore::new();
        store.insert("a", doc("u", "i"));
        store.insert("b", doc("u", "j"));
        assert_eq!(store.count("a"), 1);
        assert_eq!(store.count("b"), 1);
        assert_eq!(store.find_eq("a", "item", "j").len(), 0);
    }

    #[test]
    fn concurrent_inserts() {
        use std::sync::Arc;
        let store = Arc::new(DocStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.insert("c", doc(&format!("u{t}"), &format!("i{i}")));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.count("c"), 400);
    }
}
