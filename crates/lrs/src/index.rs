//! Scoring index over the trained CCO model (Elasticsearch substitute).
//!
//! Harness persists the Universal Recommender model in an Elasticsearch
//! index and answers queries by matching a user's interaction history
//! against each item's indicator field (§7). This module reproduces the
//! same retrieval structure in-process: an inverted index from indicator
//! item → (target item, llr), so that scoring a history of `h` items
//! touches only the postings of those `h` items instead of the whole
//! catalog.

use crate::api::ScoredItem;
use crate::cco::CcoModel;
use std::collections::HashMap;

/// Inverted scoring index built from a [`CcoModel`].
///
/// # Examples
///
/// ```
/// use pprox_lrs::cco::CcoTrainer;
/// use pprox_lrs::index::ScoringIndex;
///
/// let data = vec![("u1", "a"), ("u1", "b"), ("u2", "a"), ("u2", "b"), ("u3", "c")];
/// let model = CcoTrainer::default().train(data);
/// let index = ScoringIndex::build(&model);
/// // A user who saw "a" gets "b" recommended (co-occurrence), not "a" again.
/// let recs = index.recommend(&["a".to_owned()], 10);
/// assert_eq!(recs[0].item, "b");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoringIndex {
    /// indicator item -> postings of (target item, llr)
    postings: HashMap<String, Vec<(String, f64)>>,
    item_count: usize,
}

impl ScoringIndex {
    /// Builds the inverted index from a trained model.
    pub fn build(model: &CcoModel) -> Self {
        let mut postings: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        let mut items = 0usize;
        for (target, indicators) in model.iter() {
            items += 1;
            for ind in indicators {
                postings
                    .entry(ind.item.clone())
                    .or_default()
                    .push((target.to_owned(), ind.llr));
            }
        }
        ScoringIndex {
            postings,
            item_count: items,
        }
    }

    /// Recommends up to `n` items for a user with the given interaction
    /// `history`. Items already in the history are excluded (the user has
    /// them), and results are ordered by descending aggregate LLR with the
    /// item id as a deterministic tiebreak.
    pub fn recommend(&self, history: &[String], n: usize) -> Vec<ScoredItem> {
        self.recommend_filtered(history, n, &[])
    }

    /// Like [`recommend`](Self::recommend), additionally dropping the
    /// `exclude` items (the Universal Recommender blacklist rule).
    pub fn recommend_filtered(
        &self,
        history: &[String],
        n: usize,
        exclude: &[String],
    ) -> Vec<ScoredItem> {
        let mut scores: HashMap<&str, f64> = HashMap::new();
        for h in history {
            if let Some(posts) = self.postings.get(h) {
                for (target, llr) in posts {
                    *scores.entry(target.as_str()).or_insert(0.0) += llr;
                }
            }
        }
        let mut scored: Vec<ScoredItem> = scores
            .into_iter()
            .filter(|(item, _)| {
                !history.iter().any(|h| h == item) && !exclude.iter().any(|e| e == item)
            })
            .map(|(item, score)| ScoredItem {
                item: item.to_owned(),
                score,
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.item.cmp(&b.item))
        });
        scored.truncate(n);
        scored
    }

    /// Number of items with at least one indicator at build time.
    pub fn indexed_items(&self) -> usize {
        self.item_count
    }

    /// Number of distinct indicator terms.
    pub fn indicator_terms(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cco::{CcoConfig, CcoTrainer};

    /// Dataset: group A users like {a1, a2, a3}; group B users like {b1, b2}.
    fn clustered_model() -> CcoModel {
        let mut data = Vec::new();
        for u in 0..10 {
            for i in ["a1", "a2", "a3"] {
                data.push((format!("ua{u}"), i.to_owned()));
            }
        }
        for u in 0..10 {
            for i in ["b1", "b2"] {
                data.push((format!("ub{u}"), i.to_owned()));
            }
        }
        CcoTrainer::new(CcoConfig {
            min_llr: 0.5,
            ..CcoConfig::default()
        })
        .train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())))
    }

    #[test]
    fn recommends_within_cluster() {
        let index = ScoringIndex::build(&clustered_model());
        let recs = index.recommend(&["a1".to_owned()], 10);
        let ids: Vec<&str> = recs.iter().map(|r| r.item.as_str()).collect();
        assert!(ids.contains(&"a2") && ids.contains(&"a3"), "{ids:?}");
        assert!(!ids.contains(&"b1") && !ids.contains(&"b2"), "{ids:?}");
    }

    #[test]
    fn excludes_history() {
        let index = ScoringIndex::build(&clustered_model());
        let recs = index.recommend(&["a1".to_owned(), "a2".to_owned()], 10);
        let ids: Vec<&str> = recs.iter().map(|r| r.item.as_str()).collect();
        assert_eq!(ids, vec!["a3"]);
    }

    #[test]
    fn respects_limit_and_order() {
        let index = ScoringIndex::build(&clustered_model());
        let recs = index.recommend(&["a1".to_owned()], 1);
        assert_eq!(recs.len(), 1);
        let all = index.recommend(&["a1".to_owned()], 10);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn unknown_history_gives_empty() {
        let index = ScoringIndex::build(&clustered_model());
        assert!(index.recommend(&["nope".to_owned()], 10).is_empty());
        assert!(index.recommend(&[], 10).is_empty());
    }

    #[test]
    fn multi_item_history_accumulates_scores() {
        let index = ScoringIndex::build(&clustered_model());
        let single = index.recommend(&["a1".to_owned()], 10);
        let double = index.recommend(&["a1".to_owned(), "a2".to_owned()], 10);
        let s1 = single.iter().find(|r| r.item == "a3").unwrap().score;
        let s2 = double.iter().find(|r| r.item == "a3").unwrap().score;
        assert!(s2 > s1, "two supporting history items must score higher");
    }

    #[test]
    fn exclusions_filter_results() {
        let index = ScoringIndex::build(&clustered_model());
        let all = index.recommend(&["a1".to_owned()], 10);
        assert!(all.iter().any(|r| r.item == "a2"));
        let filtered = index.recommend_filtered(&["a1".to_owned()], 10, &["a2".to_owned()]);
        assert!(!filtered.iter().any(|r| r.item == "a2"));
        assert!(filtered.iter().any(|r| r.item == "a3"));
    }

    #[test]
    fn deterministic_tiebreak() {
        let index = ScoringIndex::build(&clustered_model());
        let a = index.recommend(&["a1".to_owned()], 10);
        let b = index.recommend(&["a1".to_owned()], 10);
        assert_eq!(a, b);
    }

    #[test]
    fn stats() {
        let index = ScoringIndex::build(&clustered_model());
        assert!(index.indexed_items() >= 5);
        assert!(index.indicator_terms() >= 5);
    }
}
