//! Periodic background training (the paper's "periodic runs of Apache
//! Spark for rebuilding this model including new inputs fetched from
//! MongoDB", §7).
//!
//! [`PeriodicTrainer`] owns a background thread that retrains the shared
//! [`Engine`] on a fixed interval, atomically swapping in each new model
//! exactly as `Engine::train` does. Queries keep hitting the previous
//! model while a build runs — the same read-availability property the
//! Harness stack gets from Elasticsearch index swaps.

use crate::engine::Engine;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running periodic trainer; stops on drop or [`stop`].
///
/// [`stop`]: PeriodicTrainer::stop
pub struct PeriodicTrainer {
    stop_flag: Arc<AtomicBool>,
    runs: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for PeriodicTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeriodicTrainer")
            .field("runs", &self.runs())
            .finish()
    }
}

impl PeriodicTrainer {
    /// Starts retraining `engine` every `interval`.
    ///
    /// The first training runs immediately (so a freshly started service
    /// has a model as soon as possible), then on the interval.
    pub fn start(engine: Engine, interval: Duration) -> Self {
        let stop_flag = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU64::new(0));
        let thread_stop = stop_flag.clone();
        let thread_runs = runs.clone();
        let handle = std::thread::spawn(move || {
            loop {
                engine.train();
                thread_runs.fetch_add(1, Ordering::Relaxed);
                // Sleep in small slices so stop() is responsive.
                let mut remaining = interval;
                while !thread_stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                if thread_stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        });
        PeriodicTrainer {
            stop_flag,
            runs,
            handle: Some(handle),
        }
    }

    /// Completed training runs so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Stops the trainer and waits for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop_flag.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PeriodicTrainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_cluster() -> Engine {
        let engine = Engine::new();
        for u in 0..5 {
            engine.post(&format!("u{u}"), "a", None);
            engine.post(&format!("u{u}"), "b", None);
        }
        for u in 0..8 {
            engine.post(&format!("bg{u}"), &format!("s{u}"), None);
        }
        engine
    }

    #[test]
    fn trains_immediately_on_start() {
        let engine = engine_with_cluster();
        let trainer = PeriodicTrainer::start(engine.clone(), Duration::from_secs(3600));
        // The immediate first run lands quickly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while trainer.runs() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(trainer.runs() >= 1);
        assert_eq!(engine.stats().trainings, trainer.runs());
        trainer.stop();
    }

    #[test]
    fn retrains_on_interval_and_picks_up_new_events() {
        let engine = engine_with_cluster();
        let trainer = PeriodicTrainer::start(engine.clone(), Duration::from_millis(30));
        // Insert a new user mid-flight; a later run must include them.
        engine.post("late", "a", None);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if trainer.runs() >= 2 && !engine.get("late", 5).items.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(trainer.runs() >= 2, "expected multiple training runs");
        assert_eq!(engine.get("late", 5).item_ids(), vec!["b"]);
        trainer.stop();
    }

    #[test]
    fn stop_joins_cleanly_and_halts_training() {
        let engine = engine_with_cluster();
        let trainer = PeriodicTrainer::start(engine.clone(), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(50));
        let runs_at_stop = {
            let r = trainer.runs();
            trainer.stop();
            r
        };
        let after = engine.stats().trainings;
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(engine.stats().trainings, after, "no training after stop");
        assert!(runs_at_stop >= 1);
    }

    #[test]
    fn drop_also_stops() {
        let engine = engine_with_cluster();
        {
            let _trainer = PeriodicTrainer::start(engine.clone(), Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(30));
        } // dropped here
        let settled = engine.stats().trainings;
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(engine.stats().trainings, settled);
    }
}
