//! Failure injection for resilience testing.
//!
//! The paper's RaaS provider promises service-level objectives; the proxy
//! must degrade cleanly — not hang or corrupt state — when the LRS behind
//! it misbehaves. [`ChaosLrs`] wraps any [`RestHandler`] and injects
//! deterministic, seed-driven failures: error statuses and garbage
//! bodies.

use crate::api::{HttpRequest, HttpResponse, RestHandler};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Kinds of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Reply with HTTP 503.
    ErrorStatus,
    /// Reply 200 with a non-JSON body.
    GarbageBody,
}

/// A fault-injecting wrapper around an inner LRS.
///
/// # Examples
///
/// ```
/// use pprox_lrs::chaos::{ChaosLrs, Fault};
/// use pprox_lrs::stub::StubLrs;
/// use pprox_lrs::api::{HttpRequest, RestHandler, QUERIES_PATH};
/// use std::sync::Arc;
///
/// let chaos = ChaosLrs::new(Arc::new(StubLrs::new()), 1.0, Fault::ErrorStatus, 7);
/// let resp = chaos.handle(&HttpRequest::post(QUERIES_PATH, "{}"));
/// assert_eq!(resp.status, 503);
/// ```
pub struct ChaosLrs {
    inner: std::sync::Arc<dyn RestHandler>,
    failure_rate: f64,
    fault: Fault,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
    served: AtomicU64,
}

impl std::fmt::Debug for ChaosLrs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLrs")
            .field("failure_rate", &self.failure_rate)
            .field("fault", &self.fault)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChaosLrs {
    /// Wraps `inner`, failing each request independently with
    /// `failure_rate` probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= failure_rate <= 1.0`.
    pub fn new(
        inner: std::sync::Arc<dyn RestHandler>,
        failure_rate: f64,
        fault: Fault,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&failure_rate));
        ChaosLrs {
            inner,
            failure_rate,
            fault,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Requests passed through to the inner handler.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl RestHandler for ChaosLrs {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let fail = self.rng.lock().gen::<f64>() < self.failure_rate;
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return match self.fault {
                Fault::ErrorStatus => HttpResponse::error(503, "injected failure"),
                Fault::GarbageBody => HttpResponse::ok("<<<garbage-not-json>>>"),
            };
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        self.inner.handle(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QUERIES_PATH;
    use crate::stub::StubLrs;
    use std::sync::Arc;

    fn chaos(rate: f64, fault: Fault) -> ChaosLrs {
        ChaosLrs::new(Arc::new(StubLrs::new()), rate, fault, 42)
    }

    #[test]
    fn zero_rate_never_fails() {
        let c = chaos(0.0, Fault::ErrorStatus);
        for _ in 0..100 {
            assert!(c.handle(&HttpRequest::post(QUERIES_PATH, "{}")).is_success());
        }
        assert_eq!(c.injected(), 0);
        assert_eq!(c.served(), 100);
    }

    #[test]
    fn full_rate_always_fails() {
        let c = chaos(1.0, Fault::ErrorStatus);
        for _ in 0..20 {
            assert_eq!(c.handle(&HttpRequest::post(QUERIES_PATH, "{}")).status, 503);
        }
        assert_eq!(c.served(), 0);
    }

    #[test]
    fn partial_rate_roughly_matches() {
        let c = chaos(0.3, Fault::ErrorStatus);
        for _ in 0..1000 {
            c.handle(&HttpRequest::post(QUERIES_PATH, "{}"));
        }
        let rate = c.injected() as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.06, "rate {rate}");
    }

    #[test]
    fn garbage_body_is_200_but_unparsable() {
        let c = chaos(1.0, Fault::GarbageBody);
        let resp = c.handle(&HttpRequest::post(QUERIES_PATH, "{}"));
        assert!(resp.is_success());
        assert!(crate::api::RecommendationList::from_json(&resp.body).is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_rate_panics() {
        let _ = chaos(1.5, Fault::ErrorStatus);
    }
}
