//! Failure injection for resilience testing.
//!
//! The paper's RaaS provider promises service-level objectives; the proxy
//! must degrade cleanly — not hang or corrupt state — when the LRS behind
//! it misbehaves. [`ChaosLrs`] wraps any [`RestHandler`] and injects
//! deterministic, seed-driven failures across the full spectrum a real
//! backend exhibits:
//!
//! * [`Fault::ErrorStatus`] — HTTP 503 (transient server failure);
//! * [`Fault::GarbageBody`] — HTTP 200 with an unparsable body (broken
//!   serialization, truncated proxy responses);
//! * [`Fault::Latency`] — the call succeeds but only after a uniformly
//!   distributed delay (GC pauses, queueing);
//! * [`Fault::Hang`] — the call blocks indefinitely (wedged connection,
//!   dead peer without RST) until [`ChaosLrs::release_hangs`] or a safety
//!   cap;
//! * [`Fault::Flap`] — deterministic up/down oscillation (crash-looping
//!   backend), the canonical circuit-breaker workload.
//! * [`Fault::TornWrite`], [`Fault::CorruptBlock`],
//!   [`Fault::StaleSnapshot`] — *storage* faults: the request is served
//!   normally but the durable store's on-disk image is damaged via
//!   [`pprox_store::FaultInjector`], so the failure only surfaces at the
//!   next recovery. Requires [`ChaosLrs::with_store_dir`].
//!
//! Faults are driven by a [`ChaosSchedule`]: each entry activates during
//! a time window and fires with its own probability, so a single wrapper
//! can model "30% errors plus latency spikes, and the backend goes down
//! entirely between t=2s and t=4s".

use crate::api::{HttpRequest, HttpResponse, RestHandler};
use parking_lot::Mutex;
use pprox_store::{FaultInjector, StorageFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Hung calls are force-released after this long even without
/// [`ChaosLrs::release_hangs`] — a backstop so a forgotten hang cannot
/// wedge a test binary forever.
const HANG_SAFETY_CAP: Duration = Duration::from_secs(60);

/// Kinds of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Reply with HTTP 503.
    ErrorStatus,
    /// Reply 200 with a non-JSON body.
    GarbageBody,
    /// Serve correctly, but delay the reply by a uniform sample from
    /// `[min, max]`.
    Latency {
        /// Minimum injected delay.
        min: Duration,
        /// Maximum injected delay.
        max: Duration,
    },
    /// Block the calling thread until [`ChaosLrs::release_hangs`] (or the
    /// 60 s safety cap), then reply 503.
    Hang,
    /// Deterministic availability oscillation: starting at the wrapper's
    /// creation, the backend answers 503 for `down_for`, then serves
    /// normally for `up_for`, repeating.
    Flap {
        /// Length of each unavailable phase.
        down_for: Duration,
        /// Length of each healthy phase between outages.
        up_for: Duration,
    },
    /// Serve normally, but tear the durable store's last WAL record on
    /// disk (a `kill -9` mid-append). Latent: surfaces at next recovery.
    TornWrite,
    /// Serve normally, but flip a byte in a persisted snapshot block.
    CorruptBlock,
    /// Serve normally, but reinstall the previous snapshot manifest over
    /// the committed one.
    StaleSnapshot,
}

impl Fault {
    /// The on-disk fault this variant maps to, if it is a storage fault.
    fn storage(self) -> Option<StorageFault> {
        match self {
            Fault::TornWrite => Some(StorageFault::TornWrite),
            Fault::CorruptBlock => Some(StorageFault::CorruptBlock),
            Fault::StaleSnapshot => Some(StorageFault::StaleSnapshot),
            _ => None,
        }
    }
}

/// One line of a fault schedule: `fault` fires with `probability` on
/// requests arriving in the window `[after, until)` (measured from the
/// wrapper's creation; `until: None` = forever).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEntry {
    /// The failure to inject.
    pub fault: Fault,
    /// Per-request injection probability while the window is active.
    pub probability: f64,
    /// Window start, relative to wrapper creation.
    pub after: Duration,
    /// Window end (exclusive), or `None` for an open-ended window.
    pub until: Option<Duration>,
}

impl ChaosEntry {
    /// An always-active entry firing with `probability`.
    pub fn always(fault: Fault, probability: f64) -> Self {
        ChaosEntry {
            fault,
            probability,
            after: Duration::ZERO,
            until: None,
        }
    }

    /// An entry active only during `[after, until)`.
    pub fn window(fault: Fault, probability: f64, after: Duration, until: Duration) -> Self {
        ChaosEntry {
            fault,
            probability,
            after,
            until: Some(until),
        }
    }

    fn active_at(&self, elapsed: Duration) -> bool {
        elapsed >= self.after && self.until.is_none_or(|end| elapsed < end)
    }
}

/// A time-windowed fault-injection plan: entries are evaluated in order
/// and the first one that is active and fires wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSchedule {
    /// The schedule's entries, in priority order.
    pub entries: Vec<ChaosEntry>,
}

impl ChaosSchedule {
    /// An empty schedule (no faults ever fire).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single always-active entry — the classic "fail each request
    /// independently with rate `p`" injector.
    pub fn constant(fault: Fault, probability: f64) -> Self {
        ChaosSchedule {
            entries: vec![ChaosEntry::always(fault, probability)],
        }
    }

    /// Appends an entry, returning `self` for chaining.
    pub fn with(mut self, entry: ChaosEntry) -> Self {
        self.entries.push(entry);
        self
    }
}

// Built on std primitives (not the parking_lot API) because waiting needs
// a condition variable that re-takes the guard; poisoning is recovered.
struct HangGate {
    // Incremented by release_hangs(); sleepers wake when it moves.
    epoch: std::sync::Mutex<u64>,
    signal: std::sync::Condvar,
}

/// A fault-injecting wrapper around an inner LRS.
///
/// # Examples
///
/// ```
/// use pprox_lrs::chaos::{ChaosLrs, Fault};
/// use pprox_lrs::stub::StubLrs;
/// use pprox_lrs::api::{HttpRequest, RestHandler, QUERIES_PATH};
/// use std::sync::Arc;
///
/// let chaos = ChaosLrs::new(Arc::new(StubLrs::new()), 1.0, Fault::ErrorStatus, 7);
/// let resp = chaos.handle(&HttpRequest::post(QUERIES_PATH, "{}"));
/// assert_eq!(resp.status, 503);
/// ```
pub struct ChaosLrs {
    inner: std::sync::Arc<dyn RestHandler>,
    schedule: ChaosSchedule,
    started: Instant,
    rng: Mutex<StdRng>,
    hang_gate: HangGate,
    injector: Option<FaultInjector>,
    injected: AtomicU64,
    served: AtomicU64,
}

impl std::fmt::Debug for ChaosLrs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLrs")
            .field("schedule", &self.schedule)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChaosLrs {
    /// Wraps `inner`, failing each request independently with
    /// `failure_rate` probability — shorthand for a single-entry
    /// always-active [`ChaosSchedule`].
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= failure_rate <= 1.0`.
    pub fn new(
        inner: std::sync::Arc<dyn RestHandler>,
        failure_rate: f64,
        fault: Fault,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&failure_rate));
        Self::with_schedule(inner, ChaosSchedule::constant(fault, failure_rate), seed)
    }

    /// Wraps `inner` with a full time-windowed fault schedule.
    ///
    /// # Panics
    ///
    /// Panics when any entry's probability is outside `[0, 1]`, or a
    /// `Latency` entry has `min > max`.
    pub fn with_schedule(
        inner: std::sync::Arc<dyn RestHandler>,
        schedule: ChaosSchedule,
        seed: u64,
    ) -> Self {
        for entry in &schedule.entries {
            assert!(
                (0.0..=1.0).contains(&entry.probability),
                "probability {} outside [0, 1]",
                entry.probability
            );
            if let Fault::Latency { min, max } = entry.fault {
                assert!(min <= max, "latency min {min:?} > max {max:?}");
            }
        }
        ChaosLrs {
            inner,
            schedule,
            started: Instant::now(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            hang_gate: HangGate {
                epoch: std::sync::Mutex::new(0),
                signal: std::sync::Condvar::new(),
            },
            injector: None,
            injected: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Points storage faults at the durable store rooted at `dir`
    /// (usually [`crate::durable::DurableLrs::store_dir`]). Without this,
    /// storage-fault entries are inert pass-throughs.
    #[must_use]
    pub fn with_store_dir(mut self, dir: &Path) -> Self {
        self.injector = Some(FaultInjector::new(dir));
        self
    }

    /// Failures injected so far (including latency injections, which
    /// still serve a correct response).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Requests passed through to the inner handler.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Releases every thread currently blocked in a [`Fault::Hang`]
    /// injection (they return 503). Call from test teardown so abandoned
    /// pool workers unblock promptly instead of waiting out the safety
    /// cap.
    pub fn release_hangs(&self) {
        let mut epoch = self
            .hang_gate
            .epoch
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        self.hang_gate.signal.notify_all();
    }

    fn hang(&self) -> HttpResponse {
        let deadline = Instant::now() + HANG_SAFETY_CAP;
        let mut epoch = self
            .hang_gate
            .epoch
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entered_at = *epoch;
        while *epoch == entered_at {
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                break; // safety cap: never wedge a binary forever
            }
            let (guard, _) = self
                .hang_gate
                .signal
                .wait_timeout(epoch, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            epoch = guard;
        }
        HttpResponse::error(503, "injected hang released")
    }

    /// Picks the fault (if any) to inject for a request arriving now.
    fn roll(&self, elapsed: Duration) -> Option<Fault> {
        for entry in &self.schedule.entries {
            if !entry.active_at(elapsed) {
                continue;
            }
            if let Fault::Flap { down_for, up_for } = entry.fault {
                // Flap is a deterministic phase function of time, not a
                // coin flip: down for `down_for`, up for `up_for`, repeat.
                let period = down_for + up_for;
                if period.is_zero() {
                    continue;
                }
                let phase = Duration::from_nanos((elapsed.as_nanos() % period.as_nanos()) as u64);
                if phase < down_for {
                    return Some(entry.fault);
                }
                continue;
            }
            if entry.probability >= 1.0 || self.rng.lock().gen::<f64>() < entry.probability {
                return Some(entry.fault);
            }
        }
        None
    }
}

impl RestHandler for ChaosLrs {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let elapsed = self.started.elapsed();
        match self.roll(elapsed) {
            None => {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.inner.handle(request)
            }
            Some(fault) if fault.storage().is_some() => {
                // Storage faults damage the persisted image *after* the
                // request is served (a torn write is this append, cut
                // short at crash time); the caller sees nothing.
                let on_disk = fault.storage().expect("guarded by match arm");
                self.served.fetch_add(1, Ordering::Relaxed);
                let response = self.inner.handle(request);
                if let Some(injector) = &self.injector {
                    if matches!(injector.inject(on_disk), Ok(report) if report.applied) {
                        self.injected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                response
            }
            Some(fault) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                match fault {
                    Fault::ErrorStatus => HttpResponse::error(503, "injected failure"),
                    Fault::GarbageBody => HttpResponse::ok("<<<garbage-not-json>>>"),
                    Fault::Latency { min, max } => {
                        let span = max.saturating_sub(min);
                        let extra = if span.is_zero() {
                            Duration::ZERO
                        } else {
                            let ns = self.rng.lock().gen::<u64>() % span.as_nanos().max(1) as u64;
                            Duration::from_nanos(ns)
                        };
                        std::thread::sleep(min + extra);
                        // Slow but correct: the request still counts as
                        // served by the inner handler.
                        self.served.fetch_add(1, Ordering::Relaxed);
                        self.inner.handle(request)
                    }
                    Fault::Hang => self.hang(),
                    Fault::Flap { .. } => HttpResponse::error(503, "injected outage"),
                    Fault::TornWrite | Fault::CorruptBlock | Fault::StaleSnapshot => {
                        unreachable!("storage faults are handled by the outer match")
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QUERIES_PATH;
    use crate::stub::StubLrs;
    use std::sync::Arc;

    fn chaos(rate: f64, fault: Fault) -> ChaosLrs {
        ChaosLrs::new(Arc::new(StubLrs::new()), rate, fault, 42)
    }

    fn query() -> HttpRequest {
        HttpRequest::post(QUERIES_PATH, "{}")
    }

    #[test]
    fn zero_rate_never_fails() {
        let c = chaos(0.0, Fault::ErrorStatus);
        for _ in 0..100 {
            assert!(c.handle(&query()).is_success());
        }
        assert_eq!(c.injected(), 0);
        assert_eq!(c.served(), 100);
    }

    #[test]
    fn full_rate_always_fails() {
        let c = chaos(1.0, Fault::ErrorStatus);
        for _ in 0..20 {
            assert_eq!(c.handle(&query()).status, 503);
        }
        assert_eq!(c.served(), 0);
    }

    #[test]
    fn partial_rate_roughly_matches() {
        let c = chaos(0.3, Fault::ErrorStatus);
        for _ in 0..1000 {
            c.handle(&query());
        }
        let rate = c.injected() as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.06, "rate {rate}");
    }

    #[test]
    fn garbage_body_is_200_but_unparsable() {
        let c = chaos(1.0, Fault::GarbageBody);
        let resp = c.handle(&query());
        assert!(resp.is_success());
        assert!(crate::api::RecommendationList::from_json(&resp.body).is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_rate_panics() {
        let _ = chaos(1.5, Fault::ErrorStatus);
    }

    #[test]
    #[should_panic]
    fn invalid_latency_range_panics() {
        let _ = chaos(
            0.5,
            Fault::Latency {
                min: Duration::from_millis(10),
                max: Duration::from_millis(5),
            },
        );
    }

    #[test]
    fn latency_fault_delays_but_serves() {
        let c = chaos(
            1.0,
            Fault::Latency {
                min: Duration::from_millis(20),
                max: Duration::from_millis(30),
            },
        );
        let t = Instant::now();
        let resp = c.handle(&query());
        assert!(resp.is_success());
        assert!(t.elapsed() >= Duration::from_millis(20));
        assert_eq!(c.injected(), 1);
        assert_eq!(c.served(), 1, "latency still serves the request");
    }

    #[test]
    fn hang_blocks_until_released() {
        let c = Arc::new(chaos(1.0, Fault::Hang));
        let c2 = c.clone();
        let handle = std::thread::spawn(move || {
            let t = Instant::now();
            let resp = c2.handle(&query());
            (resp.status, t.elapsed())
        });
        // Give the thread time to enter the hang.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished(), "call should be hung");
        c.release_hangs();
        let (status, held) = handle.join().unwrap();
        assert_eq!(status, 503);
        assert!(held >= Duration::from_millis(50));
    }

    #[test]
    fn flap_alternates_deterministically() {
        let c = ChaosLrs::with_schedule(
            Arc::new(StubLrs::new()),
            ChaosSchedule::constant(
                Fault::Flap {
                    down_for: Duration::from_millis(40),
                    up_for: Duration::from_millis(40),
                },
                1.0,
            ),
            7,
        );
        // Phase 0 (down): 503s.
        assert_eq!(c.handle(&query()).status, 503);
        // Phase 1 (up): healthy.
        std::thread::sleep(Duration::from_millis(45));
        assert!(c.handle(&query()).is_success());
        // Phase 2 (down again).
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(c.handle(&query()).status, 503);
    }

    #[test]
    fn windowed_entries_only_fire_in_window() {
        let c = ChaosLrs::with_schedule(
            Arc::new(StubLrs::new()),
            ChaosSchedule::none().with(ChaosEntry::window(
                Fault::ErrorStatus,
                1.0,
                Duration::from_millis(30),
                Duration::from_millis(60),
            )),
            7,
        );
        assert!(c.handle(&query()).is_success(), "before the window");
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(c.handle(&query()).status, 503, "inside the window");
        std::thread::sleep(Duration::from_millis(35));
        assert!(c.handle(&query()).is_success(), "after the window");
    }

    #[test]
    fn storage_fault_without_store_dir_is_inert() {
        let c = chaos(1.0, Fault::TornWrite);
        let resp = c.handle(&query());
        assert!(resp.is_success(), "request must still be served");
        assert_eq!(c.injected(), 0, "no store dir, nothing to damage");
        assert_eq!(c.served(), 1);
    }

    #[test]
    fn torn_write_fault_damages_the_store_but_serves_the_request() {
        use crate::api::EVENTS_PATH;
        use crate::durable::{DurableConfig, DurableLrs};
        use pprox_store::{SealingKey, SecureRng, TempDir};

        let dir = TempDir::new("chaos-store");
        let sealing = SealingKey::generate(&mut SecureRng::from_seed(5));
        let config = DurableConfig {
            snapshot_every: 0,
            ..DurableConfig::default()
        };
        let lrs = Arc::new(DurableLrs::open(dir.path(), &sealing, config).unwrap());
        // Tear the WAL tail after every request.
        let c =
            ChaosLrs::new(lrs.clone(), 1.0, Fault::TornWrite, 9).with_store_dir(&lrs.store_dir());
        for i in 0..3 {
            let body = format!(r#"{{"user":"u{i}","item":"film"}}"#);
            assert!(c.handle(&HttpRequest::post(EVENTS_PATH, body)).is_success());
        }
        assert!(c.injected() >= 1, "at least one tear must have applied");
        drop(c);
        drop(lrs);
        let revived = DurableLrs::open(dir.path(), &sealing, config).unwrap();
        let stats = revived.recovery();
        assert!(stats.torn_bytes > 0, "the final tear survives to recovery");
        assert!(stats.replayed < 3, "the torn record is lost");
    }

    #[test]
    fn schedule_entries_take_priority_in_order() {
        // First entry always fires ⇒ second never reached.
        let c = ChaosLrs::with_schedule(
            Arc::new(StubLrs::new()),
            ChaosSchedule::none()
                .with(ChaosEntry::always(Fault::ErrorStatus, 1.0))
                .with(ChaosEntry::always(Fault::GarbageBody, 1.0)),
            7,
        );
        for _ in 0..5 {
            assert_eq!(c.handle(&query()).status, 503);
        }
    }
}
