//! Correlated Cross-Occurrence (CCO) model training.
//!
//! The Universal Recommender's algorithm (§7 of the paper): aggregate
//! interaction indicators, compute co-occurrence statistics between items,
//! and keep, per item, the most *anomalously* co-occurring items as
//! indicators, scored by Dunning's log-likelihood ratio (LLR) — the same
//! statistic Apache Mahout's `logLikelihoodRatio` uses. In the paper this
//! batch job runs periodically on Apache Spark; here it is an in-process
//! batch over the document store's event log.
//!
//! Interactions are downsampled per user (`max_prefs_per_user`) exactly as
//! Mahout/UR do, which bounds the quadratic pair-counting cost.

use std::collections::HashMap;

/// `x * ln(x)` with the `0 ln 0 = 0` convention.
fn x_log_x(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Shannon-style entropy helper used by the Mahout LLR formulation:
/// `xLogX(sum) - Σ xLogX(x_i)`.
fn entropy(elements: &[f64]) -> f64 {
    let sum: f64 = elements.iter().sum();
    x_log_x(sum) - elements.iter().map(|&x| x_log_x(x)).sum::<f64>()
}

/// Dunning's log-likelihood ratio over a 2×2 contingency table.
///
/// * `k11` — users who interacted with both items.
/// * `k12` — users with item A but not B.
/// * `k21` — users with item B but not A.
/// * `k22` — users with neither.
///
/// Higher values mean the co-occurrence is more statistically surprising.
///
/// # Examples
///
/// ```
/// use pprox_lrs::cco::log_likelihood_ratio;
///
/// // Strong association scores high …
/// let strong = log_likelihood_ratio(100, 5, 5, 1000);
/// // … independence scores ~0.
/// let indep = log_likelihood_ratio(10, 90, 90, 810);
/// assert!(strong > 100.0);
/// assert!(indep < 1e-6);
/// ```
pub fn log_likelihood_ratio(k11: u64, k12: u64, k21: u64, k22: u64) -> f64 {
    let (k11, k12, k21, k22) = (k11 as f64, k12 as f64, k21 as f64, k22 as f64);
    let row_entropy = entropy(&[k11 + k12, k21 + k22]);
    let column_entropy = entropy(&[k11 + k21, k12 + k22]);
    let matrix_entropy = entropy(&[k11, k12, k21, k22]);
    if row_entropy + column_entropy < matrix_entropy {
        // Rounding artifact; the true value is 0.
        return 0.0;
    }
    2.0 * (row_entropy + column_entropy - matrix_entropy)
}

/// Configuration of the CCO trainer.
#[derive(Debug, Clone)]
pub struct CcoConfig {
    /// Maximum interactions considered per user (Mahout-style
    /// downsampling; bounds the quadratic pair cost).
    pub max_prefs_per_user: usize,
    /// Maximum indicators retained per item.
    pub max_indicators_per_item: usize,
    /// Minimum LLR for an indicator to be kept.
    pub min_llr: f64,
}

impl Default for CcoConfig {
    fn default() -> Self {
        CcoConfig {
            max_prefs_per_user: 500,
            max_indicators_per_item: 50,
            min_llr: 1.0,
        }
    }
}

/// One indicator: "users who interacted with `item` also anomalously often
/// interacted with the target item".
#[derive(Debug, Clone, PartialEq)]
pub struct Indicator {
    /// The co-occurring item.
    pub item: String,
    /// LLR strength of the association.
    pub llr: f64,
}

/// A trained CCO model: per item, its strongest indicators.
#[derive(Debug, Clone, Default)]
pub struct CcoModel {
    indicators: HashMap<String, Vec<Indicator>>,
    /// Number of distinct users seen at training time.
    pub num_users: u64,
    /// Number of distinct items seen at training time.
    pub num_items: u64,
    /// Number of interactions used (after downsampling).
    pub num_interactions: u64,
}

impl CcoModel {
    /// Indicators for `item`, strongest first (empty slice if unknown).
    pub fn indicators(&self, item: &str) -> &[Indicator] {
        self.indicators.get(item).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of items that have at least one indicator.
    pub fn indexed_items(&self) -> usize {
        self.indicators.len()
    }

    /// Iterates over `(item, indicators)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Indicator])> {
        self.indicators
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Batch CCO trainer (the Spark-job substitute).
#[derive(Debug, Clone, Default)]
pub struct CcoTrainer {
    config: CcoConfig,
}

impl CcoTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: CcoConfig) -> Self {
        CcoTrainer { config }
    }

    /// Trains a model from `(user, item)` interactions.
    ///
    /// Duplicate `(user, item)` pairs collapse to one (CCO works on the
    /// binary interaction matrix).
    pub fn train<'a>(
        &self,
        interactions: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> CcoModel {
        // 1. Gather per-user interaction sets (deduplicated, downsampled).
        let mut by_user: HashMap<&str, Vec<&str>> = HashMap::new();
        for (user, item) in interactions {
            let items = by_user.entry(user).or_default();
            if items.len() < self.config.max_prefs_per_user && !items.contains(&item) {
                items.push(item);
            }
        }
        let num_users = by_user.len() as u64;

        // 2. Per-item user counts and pairwise co-occurrence counts.
        let mut item_count: HashMap<&str, u64> = HashMap::new();
        let mut cooc: HashMap<(&str, &str), u64> = HashMap::new();
        let mut num_interactions = 0u64;
        for items in by_user.values() {
            num_interactions += items.len() as u64;
            for (idx, &a) in items.iter().enumerate() {
                *item_count.entry(a).or_insert(0) += 1;
                for &b in &items[idx + 1..] {
                    let key = if a <= b { (a, b) } else { (b, a) };
                    *cooc.entry(key).or_insert(0) += 1;
                }
            }
        }
        let num_items = item_count.len() as u64;

        // 3. LLR for every co-occurring pair; keep both directions.
        let mut indicators: HashMap<String, Vec<Indicator>> = HashMap::new();
        for (&(a, b), &k11) in &cooc {
            let count_a = item_count[a];
            let count_b = item_count[b];
            let k12 = count_a - k11;
            let k21 = count_b - k11;
            let k22 = num_users.saturating_sub(count_a + count_b - k11);
            let llr = log_likelihood_ratio(k11, k12, k21, k22);
            if llr < self.config.min_llr {
                continue;
            }
            indicators.entry(a.to_owned()).or_default().push(Indicator {
                item: b.to_owned(),
                llr,
            });
            indicators.entry(b.to_owned()).or_default().push(Indicator {
                item: a.to_owned(),
                llr,
            });
        }

        // 4. Keep only the strongest indicators per item. The item-name
        // tie-break makes the order a total one, so the trained model is
        // byte-identical regardless of hash-map iteration order — the
        // property the incremental trainer's differential test leans on.
        for list in indicators.values_mut() {
            list.sort_by(|x, y| {
                y.llr
                    .partial_cmp(&x.llr)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| x.item.cmp(&y.item))
            });
            list.truncate(self.config.max_indicators_per_item);
        }

        CcoModel {
            indicators,
            num_users,
            num_items,
            num_interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llr_zero_when_independent() {
        // Exactly proportional table → LLR 0.
        assert!(log_likelihood_ratio(10, 10, 10, 10).abs() < 1e-9);
        assert!(log_likelihood_ratio(1, 9, 9, 81).abs() < 1e-9);
    }

    #[test]
    fn llr_positive_for_association() {
        assert!(log_likelihood_ratio(50, 2, 3, 500) > 50.0);
    }

    #[test]
    fn llr_symmetric_in_items() {
        // Swapping A and B swaps k12/k21, leaving LLR unchanged.
        let a = log_likelihood_ratio(7, 3, 11, 200);
        let b = log_likelihood_ratio(7, 11, 3, 200);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn llr_known_value() {
        // Cross-checked against Mahout's logLikelihoodRatio(1,0,0,1) = 2*ln(2)*... :
        // table [[1,0],[0,1]] → LLR = 2 * (2 ln 2) ≈ 2.7726
        let v = log_likelihood_ratio(1, 0, 0, 1);
        assert!((v - 4.0 * std::f64::consts::LN_2).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn llr_handles_zero_cells() {
        assert_eq!(log_likelihood_ratio(0, 0, 0, 0), 0.0);
        assert!(log_likelihood_ratio(5, 0, 0, 0) >= 0.0);
    }

    fn strong_pair_dataset() -> Vec<(String, String)> {
        // Users 0..20 all take (a,b); users 20..40 take unrelated singles.
        let mut data = Vec::new();
        for u in 0..20 {
            data.push((format!("u{u}"), "a".to_owned()));
            data.push((format!("u{u}"), "b".to_owned()));
        }
        for u in 20..40 {
            data.push((format!("u{u}"), format!("solo-{u}")));
        }
        data
    }

    #[test]
    fn trainer_finds_strong_association() {
        let data = strong_pair_dataset();
        let model = CcoTrainer::default().train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        let inds = model.indicators("a");
        assert_eq!(inds.len(), 1);
        assert_eq!(inds[0].item, "b");
        assert!(inds[0].llr > 10.0);
        // Symmetric direction exists too.
        assert_eq!(model.indicators("b")[0].item, "a");
    }

    #[test]
    fn trainer_counts() {
        let data = strong_pair_dataset();
        let model = CcoTrainer::default().train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        assert_eq!(model.num_users, 40);
        assert_eq!(model.num_items, 22);
        assert_eq!(model.num_interactions, 60);
    }

    #[test]
    fn duplicates_collapse() {
        let data = vec![("u1", "a"), ("u1", "a"), ("u1", "b")];
        let model = CcoTrainer::default().train(data);
        assert_eq!(model.num_interactions, 2);
    }

    #[test]
    fn min_llr_filters_weak_pairs() {
        // One co-click, consistent with independence (E[k11] ≈ 8·8/65 ≈ 1).
        let mut data: Vec<(String, String)> =
            vec![("u0".into(), "a".into()), ("u0".into(), "b".into())];
        for u in 1..8 {
            data.push((format!("u{u}"), "a".into()));
            data.push((format!("x{u}"), "b".into()));
        }
        for u in 0..50 {
            data.push((format!("y{u}"), format!("bg-{u}")));
        }
        let strict = CcoTrainer::new(CcoConfig {
            min_llr: 5.0,
            ..CcoConfig::default()
        })
        .train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        assert!(strict.indicators("a").is_empty());
    }

    #[test]
    fn max_indicators_truncates() {
        // Item "hub" co-occurs with 10 others; cap at 3.
        let mut data = Vec::new();
        for (strength, other) in [(9, "i1"), (8, "i2"), (7, "i3"), (6, "i4"), (5, "i5")] {
            for u in 0..strength {
                data.push((format!("u-{other}-{u}"), "hub".to_owned()));
                data.push((format!("u-{other}-{u}"), other.to_owned()));
            }
        }
        // Background users: without them "hub" is in every basket and all
        // its pairs carry zero information (LLR = 0).
        for u in 0..50 {
            data.push((format!("bg{u}"), format!("bg-item-{u}")));
        }
        let model = CcoTrainer::new(CcoConfig {
            max_indicators_per_item: 3,
            min_llr: 0.1,
            ..CcoConfig::default()
        })
        .train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        let inds = model.indicators("hub");
        assert_eq!(inds.len(), 3);
        // Sorted by descending LLR.
        assert!(inds[0].llr >= inds[1].llr && inds[1].llr >= inds[2].llr);
    }

    #[test]
    fn downsampling_caps_user_history() {
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(("u".to_owned(), format!("i{i}")));
        }
        let model = CcoTrainer::new(CcoConfig {
            max_prefs_per_user: 10,
            ..CcoConfig::default()
        })
        .train(data.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        assert_eq!(model.num_interactions, 10);
    }

    #[test]
    fn empty_input_gives_empty_model() {
        let model = CcoTrainer::default().train(std::iter::empty::<(&str, &str)>());
        assert_eq!(model.indexed_items(), 0);
        assert_eq!(model.num_users, 0);
        assert!(model.indicators("x").is_empty());
    }
}
