//! REST front-end over the engine (the Harness front-end module).
//!
//! §7: "Harness frontend modules provide a REST API allowing to query the
//! model and return JSON-encoded recommendations. These frontend modules
//! handle the most significant part of the load. All modules can scale
//! horizontally by adding new instances." A [`Frontend`] is one such
//! instance; many front-ends share one [`Engine`].

use crate::api::{
    FeedbackEvent, HttpRequest, HttpResponse, Method, RecommendationQuery, RestHandler,
    EVENTS_PATH, QUERIES_PATH,
};
use crate::engine::Engine;
use crate::MAX_RECOMMENDATIONS;
use std::sync::atomic::{AtomicU64, Ordering};

/// One front-end instance serving the LRS REST API.
#[derive(Debug)]
pub struct Frontend {
    engine: Engine,
    /// Instance label, e.g. `"lrs-fe-0"` (used by deployment/balancing).
    pub name: String,
    served: AtomicU64,
}

impl Frontend {
    /// Creates a front-end over a shared engine.
    pub fn new(name: impl Into<String>, engine: Engine) -> Self {
        Frontend {
            engine,
            name: name.into(),
            served: AtomicU64::new(0),
        }
    }

    /// Requests served by this instance (for balance checks).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    fn handle_post_event(&self, request: &HttpRequest) -> HttpResponse {
        match FeedbackEvent::from_json(&request.body) {
            Some(event) => {
                self.engine.post(&event.user, &event.item, event.payload);
                HttpResponse::ok(r#"{"status":"ok"}"#)
            }
            None => HttpResponse::error(400, "malformed event"),
        }
    }

    fn handle_query(&self, request: &HttpRequest) -> HttpResponse {
        match RecommendationQuery::from_json(&request.body) {
            Some(query) => {
                let n = query.num.min(MAX_RECOMMENDATIONS);
                let list = self.engine.get_filtered(&query.user, n, &query.exclude);
                HttpResponse::ok(list.to_json())
            }
            None => HttpResponse::error(400, "malformed query"),
        }
    }
}

impl RestHandler for Frontend {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.served.fetch_add(1, Ordering::Relaxed);
        match (request.method, request.path.as_str()) {
            (Method::Post, EVENTS_PATH) => self.handle_post_event(request),
            (Method::Post, QUERIES_PATH) => self.handle_query(request),
            _ => HttpResponse::error(404, "unknown endpoint"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RecommendationList;

    fn seeded() -> Frontend {
        let engine = Engine::new();
        for u in 0..5 {
            engine.post(&format!("u{u}"), "a", None);
            engine.post(&format!("u{u}"), "b", None);
        }
        // Background users give the (a,b) pair statistical contrast.
        for u in 0..10 {
            engine.post(&format!("bg{u}"), &format!("solo-{u}"), None);
        }
        engine.train();
        Frontend::new("fe-0", engine)
    }

    #[test]
    fn post_event_roundtrip() {
        let fe = seeded();
        let resp = fe.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u9","item":"a"}"#,
        ));
        assert!(resp.is_success());
        assert_eq!(resp.body, r#"{"status":"ok"}"#);
    }

    #[test]
    fn query_returns_recommendations() {
        let fe = seeded();
        fe.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u9","item":"a"}"#,
        ));
        let resp = fe.handle(&HttpRequest::post(QUERIES_PATH, r#"{"user":"u9","num":5}"#));
        assert!(resp.is_success());
        let list = RecommendationList::from_json(&resp.body).unwrap();
        assert_eq!(list.item_ids(), vec!["b"]);
    }

    #[test]
    fn num_capped_at_maximum() {
        let fe = seeded();
        let resp = fe.handle(&HttpRequest::post(
            QUERIES_PATH,
            r#"{"user":"u0","num":10000}"#,
        ));
        let list = RecommendationList::from_json(&resp.body).unwrap();
        assert!(list.items.len() <= MAX_RECOMMENDATIONS);
    }

    #[test]
    fn malformed_bodies_rejected() {
        let fe = seeded();
        assert_eq!(fe.handle(&HttpRequest::post(EVENTS_PATH, "{}")).status, 400);
        assert_eq!(
            fe.handle(&HttpRequest::post(QUERIES_PATH, "nope")).status,
            400
        );
    }

    #[test]
    fn unknown_endpoint_404() {
        let fe = seeded();
        assert_eq!(fe.handle(&HttpRequest::post("/nope", "{}")).status, 404);
        let get = HttpRequest {
            method: Method::Get,
            path: EVENTS_PATH.to_owned(),
            headers: vec![],
            body: String::new(),
        };
        assert_eq!(fe.handle(&get).status, 404);
    }

    #[test]
    fn served_counter_increments() {
        let fe = seeded();
        assert_eq!(fe.served(), 0);
        fe.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u","item":"i"}"#,
        ));
        fe.handle(&HttpRequest::post("/nope", ""));
        assert_eq!(fe.served(), 2);
    }

    #[test]
    fn multiple_frontends_share_engine() {
        let engine = Engine::new();
        let fe1 = Frontend::new("fe-1", engine.clone());
        let fe2 = Frontend::new("fe-2", engine.clone());
        fe1.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u","item":"i"}"#,
        ));
        assert_eq!(engine.stats().events, 1);
        // fe2 sees the same store.
        fe2.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u","item":"j"}"#,
        ));
        assert_eq!(engine.stats().events, 2);
    }
}
