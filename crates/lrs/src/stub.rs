//! Static stub LRS (nginx substitute).
//!
//! §7.1: "When testing PProx in isolation from Harness, we use a stub
//! service with the nginx high-performance HTTP server to serve a static
//! payload of the same size as Harness recommendations lists." The
//! micro-benchmarks (Table 2, Figures 6–8) run against this stub so that
//! measured latency isolates the proxy's own cost.

use crate::api::{
    HttpRequest, HttpResponse, Method, RecommendationList, RestHandler, ScoredItem, EVENTS_PATH,
    QUERIES_PATH,
};
use crate::MAX_RECOMMENDATIONS;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stateless LRS returning a constant, full-size recommendation list.
#[derive(Debug)]
pub struct StubLrs {
    payload: String,
    served: AtomicU64,
}

impl Default for StubLrs {
    fn default() -> Self {
        Self::new()
    }
}

impl StubLrs {
    /// Creates a stub whose payload has exactly [`MAX_RECOMMENDATIONS`]
    /// entries (the paper's fixed list size of 20).
    pub fn new() -> Self {
        let items = (0..MAX_RECOMMENDATIONS)
            .map(|i| ScoredItem {
                item: format!("stub-item-{i:04}"),
                score: (MAX_RECOMMENDATIONS - i) as f64,
            })
            .collect();
        let payload = RecommendationList { items }.to_json();
        StubLrs {
            payload,
            served: AtomicU64::new(0),
        }
    }

    /// The constant payload served for queries.
    pub fn payload(&self) -> &str {
        &self.payload
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl RestHandler for StubLrs {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.served.fetch_add(1, Ordering::Relaxed);
        match (request.method, request.path.as_str()) {
            (Method::Post, EVENTS_PATH) => HttpResponse::ok(r#"{"status":"ok"}"#),
            (Method::Post, QUERIES_PATH) => HttpResponse::ok(self.payload.clone()),
            _ => HttpResponse::error(404, "unknown endpoint"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_constant_full_size_list() {
        let stub = StubLrs::new();
        let resp = stub.handle(&HttpRequest::post(QUERIES_PATH, r#"{"user":"any"}"#));
        assert!(resp.is_success());
        let list = RecommendationList::from_json(&resp.body).unwrap();
        assert_eq!(list.items.len(), MAX_RECOMMENDATIONS);
    }

    #[test]
    fn payload_is_identical_across_requests() {
        let stub = StubLrs::new();
        let a = stub.handle(&HttpRequest::post(QUERIES_PATH, r#"{"user":"u1"}"#));
        let b = stub.handle(&HttpRequest::post(QUERIES_PATH, r#"{"user":"u2"}"#));
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn accepts_events() {
        let stub = StubLrs::new();
        let resp = stub.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"u","item":"i"}"#,
        ));
        assert!(resp.is_success());
    }

    #[test]
    fn rejects_unknown_paths() {
        let stub = StubLrs::new();
        assert_eq!(stub.handle(&HttpRequest::post("/x", "")).status, 404);
    }

    #[test]
    fn counts_requests() {
        let stub = StubLrs::new();
        stub.handle(&HttpRequest::post(EVENTS_PATH, "{}"));
        stub.handle(&HttpRequest::post(QUERIES_PATH, "{}"));
        assert_eq!(stub.served(), 2);
    }
}
