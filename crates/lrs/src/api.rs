//! REST API surface of the legacy recommendation system.
//!
//! The LRS exposes the two-call API of §2.1:
//!
//! * `post(u, i[, p])` — insert feedback that user `u` accessed item `i`
//!   (optional payload `p`, e.g. a rating), as `POST /events`.
//! * `get(u)` — fetch recommendations for `u`, as `POST /queries` (the
//!   Harness/Universal-Recommender convention: queries are POSTed JSON).
//!
//! PProx treats the LRS as a black box behind this API; the same
//! [`RestHandler`] trait is implemented by the full engine front-end
//! ([`crate::frontend::Frontend`]) and by the nginx-like static stub
//! ([`crate::stub::StubLrs`]) used in micro-benchmarks.

use pprox_json::Value;

/// HTTP-like request methods used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve without side effects.
    Get,
    /// Submit a body.
    Post,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// A minimal HTTP request: method, path, headers and a UTF-8 JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request path, e.g. `/events`.
    pub path: String,
    /// Header name/value pairs (used by the proxy layers for routing
    /// metadata).
    pub headers: Vec<(String, String)>,
    /// JSON body text.
    pub body: String,
}

impl HttpRequest {
    /// Builds a POST with a JSON body.
    pub fn post(path: impl Into<String>, body: impl Into<String>) -> Self {
        HttpRequest {
            method: Method::Post,
            path: path.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// First value of header `name` (case-sensitive, as produced in-system).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Adds a header, returning `self` for chaining.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// A minimal HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// JSON body text.
    pub body: String,
}

impl HttpResponse {
    /// 200 response with a JSON body.
    pub fn ok(body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            body: body.into(),
        }
    }

    /// Error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse {
            status,
            body: Value::object([("error", Value::from(message))]).to_json(),
        }
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Anything that serves the LRS REST API.
///
/// Implementations must be thread-safe: the paper's deployment serves many
/// concurrent front-end requests.
pub trait RestHandler: Send + Sync {
    /// Handles one request, returning the response.
    fn handle(&self, request: &HttpRequest) -> HttpResponse;
}

impl<T: RestHandler + ?Sized> RestHandler for std::sync::Arc<T> {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        (**self).handle(request)
    }
}

/// Path of the feedback-insertion endpoint.
pub const EVENTS_PATH: &str = "/events";

/// Path of the recommendation-query endpoint.
pub const QUERIES_PATH: &str = "/queries";

/// Typed form of a `post(u, i[, p])` call.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackEvent {
    /// User identifier (possibly pseudonymized).
    pub user: String,
    /// Item identifier (possibly pseudonymized).
    pub item: String,
    /// Optional payload, e.g. a rating.
    pub payload: Option<f64>,
}

impl FeedbackEvent {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut v = Value::object([
            ("user", Value::from(self.user.as_str())),
            ("item", Value::from(self.item.as_str())),
        ]);
        if let Some(p) = self.payload {
            v.insert("payload", Value::from(p));
        }
        v.to_json()
    }

    /// Parses the wire JSON.
    ///
    /// Returns `None` when required fields are missing or mistyped.
    pub fn from_json(body: &str) -> Option<Self> {
        let v = Value::parse(body).ok()?;
        Some(FeedbackEvent {
            user: v.get("user")?.as_str()?.to_owned(),
            item: v.get("item")?.as_str()?.to_owned(),
            payload: v.get("payload").and_then(|p| p.as_f64()),
        })
    }
}

/// Typed form of a `get(u)` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecommendationQuery {
    /// User identifier (possibly pseudonymized).
    pub user: String,
    /// Number of recommendations requested.
    pub num: usize,
    /// Business rule: item ids (possibly pseudonymized) to exclude from
    /// results — the Universal Recommender's blacklist rule.
    pub exclude: Vec<String>,
}

impl RecommendationQuery {
    /// A plain query with no business rules.
    pub fn new(user: impl Into<String>, num: usize) -> Self {
        RecommendationQuery {
            user: user.into(),
            num,
            exclude: Vec::new(),
        }
    }

    /// Serializes to the wire JSON (the `exclude` field is omitted when
    /// empty, keeping legacy bodies byte-identical).
    pub fn to_json(&self) -> String {
        let mut v = Value::object([
            ("user", Value::from(self.user.as_str())),
            ("num", Value::from(self.num as u64)),
        ]);
        if !self.exclude.is_empty() {
            v.insert(
                "exclude",
                self.exclude
                    .iter()
                    .map(|e| Value::from(e.as_str()))
                    .collect(),
            );
        }
        v.to_json()
    }

    /// Parses the wire JSON (missing `num` defaults to 20, the paper's
    /// maximum list size; missing `exclude` defaults to none).
    pub fn from_json(body: &str) -> Option<Self> {
        let v = Value::parse(body).ok()?;
        let exclude = match v.get("exclude") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(|e| e.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(RecommendationQuery {
            user: v.get("user")?.as_str()?.to_owned(),
            num: v
                .get("num")
                .and_then(|n| n.as_u64())
                .map(|n| n as usize)
                .unwrap_or(crate::MAX_RECOMMENDATIONS),
            exclude,
        })
    }
}

/// One scored recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredItem {
    /// Item identifier.
    pub item: String,
    /// Model score (higher is better).
    pub score: f64,
}

/// A recommendation list, the response to a query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecommendationList {
    /// Items in descending score order.
    pub items: Vec<ScoredItem>,
}

impl RecommendationList {
    /// Serializes to the wire JSON (`{"items":[{"id":..,"score":..},..]}`).
    pub fn to_json(&self) -> String {
        let items: Value = self
            .items
            .iter()
            .map(|s| {
                Value::object([
                    ("id", Value::from(s.item.as_str())),
                    ("score", Value::from(s.score)),
                ])
            })
            .collect();
        Value::object([("items", items)]).to_json()
    }

    /// Parses the wire JSON.
    pub fn from_json(body: &str) -> Option<Self> {
        let v = Value::parse(body).ok()?;
        let arr = v.get("items")?.as_array()?;
        let mut items = Vec::with_capacity(arr.len());
        for entry in arr {
            items.push(ScoredItem {
                item: entry.get("id")?.as_str()?.to_owned(),
                score: entry.get("score")?.as_f64()?,
            });
        }
        Some(RecommendationList { items })
    }

    /// Item ids only, in order.
    pub fn item_ids(&self) -> Vec<&str> {
        self.items.iter().map(|s| s.item.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_roundtrip() {
        let e = FeedbackEvent {
            user: "u1".into(),
            item: "i1".into(),
            payload: Some(4.5),
        };
        assert_eq!(FeedbackEvent::from_json(&e.to_json()), Some(e));
    }

    #[test]
    fn feedback_without_payload() {
        let e = FeedbackEvent {
            user: "u1".into(),
            item: "i1".into(),
            payload: None,
        };
        let json = e.to_json();
        assert!(!json.contains("payload"));
        assert_eq!(FeedbackEvent::from_json(&json), Some(e));
    }

    #[test]
    fn feedback_missing_fields_rejected() {
        assert!(FeedbackEvent::from_json(r#"{"user":"u"}"#).is_none());
        assert!(FeedbackEvent::from_json(r#"{"item":"i"}"#).is_none());
        assert!(FeedbackEvent::from_json("not json").is_none());
        assert!(FeedbackEvent::from_json(r#"{"user":1,"item":"i"}"#).is_none());
    }

    #[test]
    fn query_roundtrip_and_default_num() {
        let q = RecommendationQuery::new("u2", 10);
        assert_eq!(RecommendationQuery::from_json(&q.to_json()), Some(q));
        let default = RecommendationQuery::from_json(r#"{"user":"u"}"#).unwrap();
        assert_eq!(default.num, crate::MAX_RECOMMENDATIONS);
        assert!(default.exclude.is_empty());
    }

    #[test]
    fn query_with_exclusions_roundtrips() {
        let q = RecommendationQuery {
            user: "u".into(),
            num: 5,
            exclude: vec!["a".into(), "b".into()],
        };
        let json = q.to_json();
        assert!(json.contains("exclude"));
        assert_eq!(RecommendationQuery::from_json(&json), Some(q));
        // Mistyped exclude entries are rejected.
        assert!(RecommendationQuery::from_json(r#"{"user":"u","exclude":[1]}"#).is_none());
    }

    #[test]
    fn recommendation_list_roundtrip() {
        let list = RecommendationList {
            items: vec![
                ScoredItem {
                    item: "a".into(),
                    score: 2.5,
                },
                ScoredItem {
                    item: "b".into(),
                    score: 1.0,
                },
            ],
        };
        let parsed = RecommendationList::from_json(&list.to_json()).unwrap();
        assert_eq!(parsed, list);
        assert_eq!(parsed.item_ids(), vec!["a", "b"]);
    }

    #[test]
    fn http_request_headers() {
        let r = HttpRequest::post("/events", "{}")
            .with_header("x-route", "ua-1")
            .with_header("x-other", "v");
        assert_eq!(r.header("x-route"), Some("ua-1"));
        assert_eq!(r.header("missing"), None);
        assert_eq!(r.method.to_string(), "POST");
    }

    #[test]
    fn http_response_helpers() {
        assert!(HttpResponse::ok("{}").is_success());
        let e = HttpResponse::error(400, "bad");
        assert!(!e.is_success());
        assert!(e.body.contains("bad"));
    }
}
