//! Horizontally scaled LRS deployments (Table 3 configurations).
//!
//! The macro-benchmarks deploy Harness with 3–12 front-end instances plus
//! 4 support nodes (three Elasticsearch, one MongoDB + Spark), labelled
//! b1–b4 in the paper's Table 3. [`HarnessConfig`] captures those node
//! counts and the resulting capacity; [`HarnessCluster`] is the runnable
//! counterpart: `n` [`Frontend`]s sharing one [`Engine`], with round-robin
//! dispatch standing in for kube-proxy load balancing.

use crate::api::{HttpRequest, HttpResponse, RestHandler};
use crate::engine::Engine;
use crate::frontend::Frontend;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of support nodes in every macro configuration (3× Elasticsearch,
/// 1× MongoDB + Spark).
pub const SUPPORT_NODES: usize = 4;

/// Front-end instances added per 250 RPS capacity step (Table 3).
pub const FRONTENDS_PER_STEP: usize = 3;

/// Sustainable throughput added by each front-end step, in requests/s.
pub const RPS_PER_STEP: f64 = 250.0;

/// A Harness deployment size, as in Table 3 (b1–b4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Number of front-end instances (3, 6, 9 or 12 in the paper).
    pub frontends: usize,
}

impl HarnessConfig {
    /// The paper's baseline configuration ids b1–b4.
    pub fn baseline(step: usize) -> Self {
        assert!((1..=4).contains(&step), "paper configurations are b1..b4");
        HarnessConfig {
            frontends: FRONTENDS_PER_STEP * step,
        }
    }

    /// Total nodes: front-ends + support (the "7: 3+4" notation of Table 3).
    pub fn node_count(&self) -> usize {
        self.frontends + SUPPORT_NODES
    }

    /// Maximum sustainable throughput before saturation, in requests/s.
    pub fn max_rps(&self) -> f64 {
        (self.frontends as f64 / FRONTENDS_PER_STEP as f64) * RPS_PER_STEP
    }

    /// Table 3 label ("b1".."b4") when this is a paper configuration.
    pub fn label(&self) -> String {
        format!("b{}", self.frontends / FRONTENDS_PER_STEP)
    }
}

/// A running LRS cluster: shared engine, `n` front-ends, round-robin
/// dispatch.
///
/// # Examples
///
/// ```
/// use pprox_lrs::cluster::HarnessCluster;
/// use pprox_lrs::api::{HttpRequest, RestHandler, EVENTS_PATH};
///
/// let cluster = HarnessCluster::new(3);
/// let resp = cluster.handle(&HttpRequest::post(EVENTS_PATH, r#"{"user":"u","item":"i"}"#));
/// assert!(resp.is_success());
/// ```
#[derive(Debug)]
pub struct HarnessCluster {
    engine: Engine,
    frontends: Vec<Frontend>,
    next: AtomicUsize,
}

impl HarnessCluster {
    /// Creates a cluster with `frontends` front-end instances.
    ///
    /// # Panics
    ///
    /// Panics if `frontends` is zero.
    pub fn new(frontends: usize) -> Self {
        assert!(frontends > 0, "need at least one front-end");
        let engine = Engine::new();
        let frontends = (0..frontends)
            .map(|i| Frontend::new(format!("lrs-fe-{i}"), engine.clone()))
            .collect();
        HarnessCluster {
            engine,
            frontends,
            next: AtomicUsize::new(0),
        }
    }

    /// The shared engine (for training and inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of front-end instances.
    pub fn frontend_count(&self) -> usize {
        self.frontends.len()
    }

    /// Per-front-end served counts (to verify balancing).
    pub fn served_per_frontend(&self) -> Vec<u64> {
        self.frontends.iter().map(|f| f.served()).collect()
    }
}

impl RestHandler for HarnessCluster {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.frontends.len();
        self.frontends[i].handle(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{RecommendationList, EVENTS_PATH, QUERIES_PATH};

    #[test]
    fn table3_node_counts_and_rps() {
        // Table 3: b1=7 nodes/250 RPS … b4=16 nodes/1000 RPS.
        let expect = [
            (1, 7, 250.0),
            (2, 10, 500.0),
            (3, 13, 750.0),
            (4, 16, 1000.0),
        ];
        for (step, nodes, rps) in expect {
            let c = HarnessConfig::baseline(step);
            assert_eq!(c.node_count(), nodes);
            assert_eq!(c.max_rps(), rps);
            assert_eq!(c.label(), format!("b{step}"));
        }
    }

    #[test]
    #[should_panic(expected = "b1..b4")]
    fn invalid_baseline_step_panics() {
        let _ = HarnessConfig::baseline(5);
    }

    #[test]
    fn round_robin_balances() {
        let cluster = HarnessCluster::new(3);
        for _ in 0..9 {
            cluster.handle(&HttpRequest::post(
                EVENTS_PATH,
                r#"{"user":"u","item":"i"}"#,
            ));
        }
        assert_eq!(cluster.served_per_frontend(), vec![3, 3, 3]);
    }

    #[test]
    fn end_to_end_through_cluster() {
        let cluster = HarnessCluster::new(2);
        for u in 0..5 {
            for item in ["x", "y"] {
                let body = format!(r#"{{"user":"u{u}","item":"{item}"}}"#);
                assert!(cluster
                    .handle(&HttpRequest::post(EVENTS_PATH, body))
                    .is_success());
            }
        }
        for u in 0..10 {
            let body = format!(r#"{{"user":"bg{u}","item":"solo-{u}"}}"#);
            cluster.handle(&HttpRequest::post(EVENTS_PATH, body));
        }
        cluster.engine().train();
        cluster.handle(&HttpRequest::post(
            EVENTS_PATH,
            r#"{"user":"fresh","item":"x"}"#,
        ));
        let resp = cluster.handle(&HttpRequest::post(
            QUERIES_PATH,
            r#"{"user":"fresh","num":5}"#,
        ));
        let list = RecommendationList::from_json(&resp.body).unwrap();
        assert_eq!(list.item_ids(), vec!["y"]);
    }

    #[test]
    #[should_panic(expected = "at least one front-end")]
    fn zero_frontends_panics() {
        let _ = HarnessCluster::new(0);
    }
}
