//! Legacy Recommendation System (LRS): a Harness / Universal Recommender
//! stand-in.
//!
//! PProx interposes on an *unmodified* recommendation service. The paper
//! evaluates against [Harness](https://actionml.com/harness) running the
//! Universal Recommender — collaborative filtering via Correlated
//! Cross-Occurrence (CCO) — backed by MongoDB, Elasticsearch and periodic
//! Apache Spark training jobs (§7). This crate rebuilds that stack
//! in-process so the reproduction can exercise the real algorithm:
//!
//! | Paper component | Module here |
//! |---|---|
//! | REST API (`post(u,i[,p])`, `get(u)`) | [`api`] |
//! | MongoDB event/meta store | [`docstore`] |
//! | Spark CCO training job | [`cco`] (batch) + [`trainer`] (periodic) |
//! | Elasticsearch model index | [`index`] |
//! | Universal Recommender engine | [`engine`] |
//! | Harness front-end modules | [`frontend`] |
//! | nginx static stub (micro-benchmarks) | [`stub`] |
//! | failure injection (resilience tests) | [`chaos`] |
//! | Table 3 deployments (b1–b4) | [`cluster`] |
//! | durable sealed state (crash recovery) | [`durable`] |
//! | consistent-hash sharding + incremental CCO | [`shard`] |
//!
//! The LRS is deliberately identifier-agnostic: it never interprets user or
//! item ids, which is what makes PProx's deterministic pseudonymization
//! transparent to it — and is why recommendations through the proxy are
//! byte-identical to direct ones (verified in `tests/transparency.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod cco;
pub mod chaos;
pub mod cluster;
pub mod docstore;
pub mod durable;
pub mod engine;
pub mod frontend;
pub mod index;
pub mod shard;
pub mod stub;
pub mod trainer;

pub use api::{HttpRequest, HttpResponse, RestHandler};
pub use durable::{DurableConfig, DurableLrs, RecoveryStats};
pub use engine::Engine;

/// Maximum recommendation list size; responses are padded to this length by
/// the proxy (§4.3: "The list of items returned by the LRS has a maximal
/// size (20 in our implementation)").
pub const MAX_RECOMMENDATIONS: usize = 20;
