//! A crash-recoverable LRS front-end: the engine plus a [`SealedStore`].
//!
//! [`DurableLrs`] wraps an [`Engine`] behind the same REST surface as
//! [`crate::frontend::Frontend`], adding write-ahead durability: every
//! accepted feedback event is appended to the sealed WAL *before* it is
//! applied to the in-memory engine, under one mutex, so WAL order equals
//! docstore order and a replayed store rebuilds byte-identical state.
//! Periodic snapshots compact the event history into encrypted blocks
//! and truncate the WAL.
//!
//! Recovery (`open` on a non-empty directory) is fully self-contained:
//! the DEK unseals from the platform + measurement, snapshot blocks and
//! fresh WAL records replay into a new engine, and one training pass
//! rebuilds the scoring index — after which a fixed query returns
//! exactly the recommendations it returned before the crash (the index's
//! deterministic tie-break makes this byte-exact, verified in the
//! kill-and-replay drills).
//!
//! Everything persisted is what the LRS legitimately sees: pseudonymous
//! ids inside padded ciphertext. `attack::at_rest_audit` scans the
//! directory to prove it.

use crate::api::{
    FeedbackEvent, HttpRequest, HttpResponse, Method, RecommendationQuery, RestHandler,
    EVENTS_PATH, QUERIES_PATH,
};
use crate::engine::Engine;
use crate::MAX_RECOMMENDATIONS;
use parking_lot::Mutex;
use pprox_json::Value;
use pprox_store::{Measurement, SealedStore, SealingKey, StoreConfig, StoreError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Code identity the store DEK is sealed to. Any LRS instance running
/// this measurement on the same platform can recover the store.
pub const LRS_STORE_IDENTITY: &str = "pprox-lrs-store-v1";

/// Events per snapshot block (bounds block size; more events simply span
/// more fixed-size blocks).
const EVENTS_PER_BLOCK: usize = 64;

/// Durability tuning for a [`DurableLrs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Snapshot (and truncate the WAL) after this many appended events;
    /// 0 disables automatic snapshots (call
    /// [`DurableLrs::snapshot_now`] explicitly).
    pub snapshot_every: u64,
    /// Retrain the engine after this many applied events; 0 disables
    /// automatic training.
    pub train_every: u64,
    /// Size classes of the underlying store.
    pub store: StoreConfig,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            snapshot_every: 256,
            train_every: 0,
            store: StoreConfig::default(),
        }
    }
}

/// What booting a [`DurableLrs`] recovered, and how long it took.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Events restored from snapshot blocks.
    pub snapshot_events: usize,
    /// Events replayed from the WAL.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped: usize,
    /// Torn-tail bytes the WAL scan discarded.
    pub torn_bytes: u64,
    /// `true` when the directory held no sealed state yet.
    pub cold_start: bool,
    /// Wall-clock time from unseal to trained index.
    pub duration: Duration,
}

struct DurableInner {
    store: SealedStore,
    /// Every applied event body, in order (the snapshot source).
    events: Vec<String>,
    last_snapshot_seq: u64,
}

/// A durable LRS front-end instance.
pub struct DurableLrs {
    engine: Engine,
    inner: Mutex<DurableInner>,
    config: DurableConfig,
    recovery: RecoveryStats,
    served: AtomicU64,
}

impl std::fmt::Debug for DurableLrs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLrs")
            .field("engine", &self.engine)
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish()
    }
}

impl DurableLrs {
    /// Opens (or creates) the durable store at `dir`, unseals the DEK
    /// against `sealing` + [`LRS_STORE_IDENTITY`], replays snapshot and
    /// WAL into a fresh engine, and trains the index once.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from recovery; see
    /// [`SealedStore::open`] for the cases.
    pub fn open(
        dir: &Path,
        sealing: &SealingKey,
        config: DurableConfig,
    ) -> Result<DurableLrs, StoreError> {
        let started = Instant::now();
        let measurement = Measurement::of_code(LRS_STORE_IDENTITY);
        let (store, recovered) = SealedStore::open(dir, sealing, measurement, config.store)?;

        let engine = Engine::new();
        let mut events = Vec::new();
        let mut snapshot_events = 0;
        for block in &recovered.snapshot_blocks {
            for body in decode_event_block(block)? {
                apply_event(&engine, &body);
                events.push(body);
                snapshot_events += 1;
            }
        }
        let replayed = recovered.events.len();
        for record in &recovered.events {
            let body = String::from_utf8(record.payload.clone())
                .map_err(|_| StoreError::Malformed("WAL event encoding"))?;
            apply_event(&engine, &body);
            events.push(body);
        }
        if !events.is_empty() {
            engine.train();
        }

        let last_snapshot_seq = recovered.applied_seq;
        let recovery = RecoveryStats {
            snapshot_events,
            replayed,
            skipped: recovered.skipped,
            torn_bytes: recovered.torn_bytes,
            cold_start: recovered.cold_start,
            duration: started.elapsed(),
        };
        Ok(DurableLrs {
            engine,
            inner: Mutex::new(DurableInner {
                store,
                events,
                last_snapshot_seq,
            }),
            config,
            recovery,
            served: AtomicU64::new(0),
        })
    }

    /// The shared engine (same instance the REST surface serves from).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// What booting this instance recovered.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Retrains the engine on everything applied so far.
    pub fn train(&self) -> u64 {
        self.engine.train()
    }

    /// Forces a snapshot now (blocks + manifest + WAL truncation).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from block or manifest writes.
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        snapshot_locked(&mut inner)
    }

    /// The store's root directory.
    pub fn store_dir(&self) -> std::path::PathBuf {
        self.inner.lock().store.dir().to_path_buf()
    }

    /// Requests served by this instance.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    fn handle_post_event(&self, request: &HttpRequest) -> HttpResponse {
        let Some(event) = FeedbackEvent::from_json(&request.body) else {
            return HttpResponse::error(400, "malformed event");
        };
        // Canonicalize so WAL bytes equal what replay will apply.
        let body = event.to_json();
        let mut inner = self.inner.lock();
        let seq = match inner.store.append_event(body.as_bytes()) {
            Ok(seq) => seq,
            Err(_) => return HttpResponse::error(503, "event log unavailable"),
        };
        self.engine.post(&event.user, &event.item, event.payload);
        inner.events.push(body);
        if self.config.snapshot_every > 0
            && seq - inner.last_snapshot_seq >= self.config.snapshot_every
        {
            // A failed snapshot is not fatal to the request: the WAL
            // already holds the event.
            let _ = snapshot_locked(&mut inner);
        }
        let applied = inner.events.len() as u64;
        drop(inner);
        if self.config.train_every > 0 && applied.is_multiple_of(self.config.train_every) {
            self.engine.train();
        }
        HttpResponse::ok(r#"{"status":"ok"}"#)
    }

    fn handle_query(&self, request: &HttpRequest) -> HttpResponse {
        match RecommendationQuery::from_json(&request.body) {
            Some(query) => {
                let n = query.num.min(MAX_RECOMMENDATIONS);
                let list = self.engine.get_filtered(&query.user, n, &query.exclude);
                HttpResponse::ok(list.to_json())
            }
            None => HttpResponse::error(400, "malformed query"),
        }
    }
}

impl RestHandler for DurableLrs {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.served.fetch_add(1, Ordering::Relaxed);
        match (request.method, request.path.as_str()) {
            (Method::Post, EVENTS_PATH) => self.handle_post_event(request),
            (Method::Post, QUERIES_PATH) => self.handle_query(request),
            _ => HttpResponse::error(404, "unknown endpoint"),
        }
    }
}

fn snapshot_locked(inner: &mut DurableInner) -> Result<(), StoreError> {
    let applied_seq = inner.store.next_seq() - 1;
    let blocks: Vec<Vec<u8>> = inner
        .events
        .chunks(EVENTS_PER_BLOCK)
        .map(encode_event_block)
        .collect();
    inner.store.snapshot(&blocks, applied_seq)?;
    inner.last_snapshot_seq = applied_seq;
    Ok(())
}

/// A snapshot block is a JSON array of event bodies. Shared with the
/// sharded durable path ([`crate::shard::durable`]), which persists the
/// same canonical event bodies.
pub(crate) fn encode_event_block(events: &[String]) -> Vec<u8> {
    let arr: Value = events.iter().map(|e| Value::from(e.as_str())).collect();
    arr.to_json().into_bytes()
}

pub(crate) fn decode_event_block(block: &[u8]) -> Result<Vec<String>, StoreError> {
    let text = std::str::from_utf8(block).map_err(|_| StoreError::Malformed("snapshot block"))?;
    let value = Value::parse(text).map_err(|_| StoreError::Malformed("snapshot block json"))?;
    let arr = value
        .as_array()
        .ok_or(StoreError::Malformed("snapshot block shape"))?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or(StoreError::Malformed("snapshot block entry"))
        })
        .collect()
}

fn apply_event(engine: &Engine, body: &str) {
    if let Some(event) = FeedbackEvent::from_json(body) {
        engine.post(&event.user, &event.item, event.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_store::{FaultInjector, StorageFault, TempDir};

    fn sealing() -> SealingKey {
        SealingKey::generate(&mut pprox_store::SecureRng::from_seed(31))
    }

    fn post(lrs: &DurableLrs, user: &str, item: &str) {
        let body = FeedbackEvent {
            user: user.into(),
            item: item.into(),
            payload: None,
        }
        .to_json();
        let resp = lrs.handle(&HttpRequest::post(EVENTS_PATH, body));
        assert!(resp.is_success());
    }

    fn query(lrs: &DurableLrs, user: &str) -> HttpResponse {
        lrs.handle(&HttpRequest::post(
            QUERIES_PATH,
            format!(r#"{{"user":"{user}","num":5}}"#),
        ))
    }

    fn seed_two_clusters(lrs: &DurableLrs) {
        for u in 0..6 {
            post(lrs, &format!("sci-{u}"), "alien");
            post(lrs, &format!("sci-{u}"), "dune");
        }
        for u in 0..6 {
            post(lrs, &format!("rom-{u}"), "amelie");
        }
        lrs.train();
    }

    #[test]
    fn kill_and_reopen_yields_identical_recommendations() {
        let dir = TempDir::new("durable");
        let sealing = sealing();
        let lrs = DurableLrs::open(dir.path(), &sealing, DurableConfig::default()).unwrap();
        assert!(lrs.recovery().cold_start);
        seed_two_clusters(&lrs);
        let before = query(&lrs, "sci-0").body;
        drop(lrs); // simulated kill: in-memory engine is gone

        let revived = DurableLrs::open(dir.path(), &sealing, DurableConfig::default()).unwrap();
        assert!(!revived.recovery().cold_start);
        assert_eq!(revived.recovery().replayed, 18);
        assert_eq!(query(&revived, "sci-0").body, before);
    }

    #[test]
    fn snapshot_plus_wal_recovery_is_equivalent() {
        let dir = TempDir::new("durable");
        let sealing = sealing();
        let config = DurableConfig {
            snapshot_every: 5, // force several snapshots mid-stream
            ..DurableConfig::default()
        };
        let lrs = DurableLrs::open(dir.path(), &sealing, config).unwrap();
        seed_two_clusters(&lrs);
        let before = query(&lrs, "sci-3").body;
        drop(lrs);

        let revived = DurableLrs::open(dir.path(), &sealing, config).unwrap();
        let stats = revived.recovery();
        assert!(stats.snapshot_events > 0, "snapshots must have fired");
        assert_eq!(stats.snapshot_events + stats.replayed, 18);
        assert_eq!(query(&revived, "sci-3").body, before);
    }

    #[test]
    fn torn_write_loses_only_the_torn_event() {
        let dir = TempDir::new("durable");
        let sealing = sealing();
        let config = DurableConfig {
            snapshot_every: 0,
            ..DurableConfig::default()
        };
        let lrs = DurableLrs::open(dir.path(), &sealing, config).unwrap();
        seed_two_clusters(&lrs);
        drop(lrs);
        let report = FaultInjector::new(dir.path())
            .inject(StorageFault::TornWrite)
            .unwrap();
        assert!(report.applied);
        let revived = DurableLrs::open(dir.path(), &sealing, config).unwrap();
        assert_eq!(revived.recovery().replayed, 17);
        assert!(revived.recovery().torn_bytes > 0);
        // The system still answers queries from the surviving 17 events.
        assert!(query(&revived, "sci-0").is_success());
    }

    #[test]
    fn malformed_events_are_rejected_not_logged() {
        let dir = TempDir::new("durable");
        let lrs = DurableLrs::open(dir.path(), &sealing(), DurableConfig::default()).unwrap();
        let resp = lrs.handle(&HttpRequest::post(EVENTS_PATH, "not json"));
        assert_eq!(resp.status, 400);
        drop(lrs);
        let revived = DurableLrs::open(dir.path(), &sealing(), DurableConfig::default()).unwrap();
        assert_eq!(revived.recovery().replayed, 0);
    }

    #[test]
    fn rest_surface_matches_frontend() {
        let dir = TempDir::new("durable");
        let lrs = DurableLrs::open(dir.path(), &sealing(), DurableConfig::default()).unwrap();
        assert_eq!(lrs.handle(&HttpRequest::post("/nope", "{}")).status, 404);
        assert_eq!(
            lrs.handle(&HttpRequest::post(QUERIES_PATH, "bad")).status,
            400
        );
        assert_eq!(lrs.served(), 2);
    }
}
