//! The Universal Recommender engine: event store + trainer + query index.
//!
//! Mirrors the Harness architecture of §7: `post` events are persisted to
//! the document store (MongoDB role), [`Engine::train`] runs the batch CCO
//! job (Spark role) and swaps in a fresh scoring index (Elasticsearch
//! role), and `get` queries are answered from the current index plus the
//! user's stored history.
//!
//! The engine is identifier-agnostic: user and item ids are opaque strings,
//! which is precisely why PProx's deterministic pseudonymization is
//! transparent to it — `det_enc(u)` is just another id.

use crate::api::{RecommendationList, ScoredItem};
use crate::cco::{CcoConfig, CcoModel, CcoTrainer};
use crate::docstore::DocStore;
use crate::index::ScoringIndex;
use parking_lot::RwLock;
use pprox_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Collection name for feedback events.
const EVENTS: &str = "events";

/// Snapshot of engine statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total feedback events stored.
    pub events: u64,
    /// Batch trainings performed.
    pub trainings: u64,
    /// Queries served.
    pub queries: u64,
}

/// The recommendation engine (Universal Recommender stand-in).
///
/// Thread-safe and cheap to clone behind [`Arc`]; front-end instances share
/// one engine the way Harness front-ends share the same backing services.
///
/// # Examples
///
/// ```
/// use pprox_lrs::engine::Engine;
///
/// let engine = Engine::new();
/// engine.post("u1", "film-a", None);
/// engine.post("u1", "film-b", None);
/// engine.post("u2", "film-a", None);
/// engine.post("u2", "film-b", None);
/// engine.post("u3", "film-a", None);
/// // Users with unrelated tastes give the (a,b) pair statistical contrast.
/// for u in 0..8 {
///     engine.post(&format!("bg{u}"), &format!("other-{u}"), None);
/// }
/// engine.train();
/// let recs = engine.get("u3", 10);
/// assert_eq!(recs.items[0].item, "film-b");
/// ```
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    store: DocStore,
    index: RwLock<ScoringIndex>,
    model: RwLock<CcoModel>,
    config: CcoConfig,
    trainings: AtomicU64,
    queries: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Engine")
            .field("events", &stats.events)
            .field("trainings", &stats.trainings)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with default CCO configuration.
    pub fn new() -> Self {
        Self::with_config(CcoConfig::default())
    }

    /// Creates an engine with an explicit CCO configuration.
    pub fn with_config(config: CcoConfig) -> Self {
        let store = DocStore::new();
        store.create_index(EVENTS, "user");
        Engine {
            inner: Arc::new(EngineInner {
                store,
                index: RwLock::new(ScoringIndex::default()),
                model: RwLock::new(CcoModel::default()),
                config,
                trainings: AtomicU64::new(0),
                queries: AtomicU64::new(0),
            }),
        }
    }

    /// Records feedback: user `user` interacted with item `item`.
    pub fn post(&self, user: &str, item: &str, payload: Option<f64>) {
        let mut doc = Value::object([("user", Value::from(user)), ("item", Value::from(item))]);
        if let Some(p) = payload {
            doc.insert("payload", Value::from(p));
        }
        self.inner.store.insert(EVENTS, doc);
    }

    /// Runs the batch training job over all stored events and atomically
    /// swaps in the new model and index.
    ///
    /// Returns the number of interactions the model was trained on.
    pub fn train(&self) -> u64 {
        let events = self.inner.store.scan(EVENTS);
        let pairs: Vec<(String, String)> = events
            .iter()
            .filter_map(|(_, d)| {
                Some((
                    d.get("user")?.as_str()?.to_owned(),
                    d.get("item")?.as_str()?.to_owned(),
                ))
            })
            .collect();
        let trainer = CcoTrainer::new(self.inner.config.clone());
        let model = trainer.train(pairs.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        let interactions = model.num_interactions;
        let index = ScoringIndex::build(&model);
        *self.inner.model.write() = model;
        *self.inner.index.write() = index;
        self.inner.trainings.fetch_add(1, Ordering::Relaxed);
        interactions
    }

    /// The user's stored interaction history (item ids, insertion order).
    pub fn history(&self, user: &str) -> Vec<String> {
        self.inner
            .store
            .find_eq(EVENTS, "user", user)
            .into_iter()
            .filter_map(|(_, d)| Some(d.get("item")?.as_str()?.to_owned()))
            .collect()
    }

    /// Returns up to `n` recommendations for `user` from the current model.
    ///
    /// Unknown users receive an empty list (cold start is out of the
    /// paper's scope; its workload trains before querying).
    pub fn get(&self, user: &str, n: usize) -> RecommendationList {
        self.get_filtered(user, n, &[])
    }

    /// Returns up to `n` recommendations for `user`, dropping `exclude`
    /// items (the Universal Recommender blacklist business rule).
    pub fn get_filtered(&self, user: &str, n: usize, exclude: &[String]) -> RecommendationList {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        let history = self.history(user);
        let items: Vec<ScoredItem> = self
            .inner
            .index
            .read()
            .recommend_filtered(&history, n, exclude);
        RecommendationList { items }
    }

    /// Dumps all stored `(user, item)` event pairs.
    ///
    /// This is the adversary's view of the LRS database (§2.3 of the
    /// paper: the adversary "can access any data manipulated by the LRS");
    /// the attack harness uses it for the §6.1 case analysis. With PProx
    /// in front, every pair is pseudonymous.
    pub fn dump_events(&self) -> Vec<(String, String)> {
        self.inner
            .store
            .scan(EVENTS)
            .into_iter()
            .filter_map(|(_, d)| {
                Some((
                    d.get("user")?.as_str()?.to_owned(),
                    d.get("item")?.as_str()?.to_owned(),
                ))
            })
            .collect()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events: self.inner.store.count(EVENTS) as u64,
            trainings: self.inner.trainings.load(Ordering::Relaxed),
            queries: self.inner.queries.load(Ordering::Relaxed),
        }
    }

    /// Model metadata from the last training.
    pub fn model_stats(&self) -> (u64, u64, u64) {
        let m = self.inner.model.read();
        (m.num_users, m.num_items, m.num_interactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_engine() -> Engine {
        let engine = Engine::new();
        // Two taste clusters.
        for u in 0..8 {
            engine.post(&format!("sci-{u}"), "alien", None);
            engine.post(&format!("sci-{u}"), "blade-runner", None);
            engine.post(&format!("sci-{u}"), "dune", None);
        }
        for u in 0..8 {
            engine.post(&format!("rom-{u}"), "amelie", None);
            engine.post(&format!("rom-{u}"), "notebook", None);
        }
        engine.train();
        engine
    }

    #[test]
    fn recommends_cluster_items() {
        let engine = seeded_engine();
        engine.post("newbie", "alien", None);
        let recs = engine.get("newbie", 5);
        let ids = recs.item_ids();
        assert!(ids.contains(&"blade-runner"));
        assert!(ids.contains(&"dune"));
        assert!(!ids.contains(&"amelie"));
        assert!(!ids.contains(&"alien"), "history must be excluded");
    }

    #[test]
    fn unknown_user_gets_empty_list() {
        let engine = seeded_engine();
        assert!(engine.get("stranger", 5).items.is_empty());
    }

    #[test]
    fn untrained_engine_returns_empty() {
        let engine = Engine::new();
        engine.post("u", "i", None);
        assert!(engine.get("u", 5).items.is_empty());
    }

    #[test]
    fn retraining_incorporates_new_events() {
        let engine = seeded_engine();
        engine.post("newbie", "amelie", None);
        let before = engine.get("newbie", 5);
        assert!(before.item_ids().contains(&"notebook"));
        // New taste: sci cluster.
        engine.post("newbie", "alien", None);
        engine.post("newbie", "dune", None);
        engine.train();
        let after = engine.get("newbie", 5);
        assert!(after.item_ids().contains(&"blade-runner"));
    }

    #[test]
    fn history_tracks_insertion_order() {
        let engine = Engine::new();
        engine.post("u", "first", None);
        engine.post("u", "second", None);
        assert_eq!(engine.history("u"), vec!["first", "second"]);
    }

    #[test]
    fn stats_count_operations() {
        let engine = seeded_engine();
        let s0 = engine.stats();
        assert_eq!(s0.events, 40);
        assert_eq!(s0.trainings, 1);
        engine.get("sci-0", 5);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn model_stats_populated() {
        let engine = seeded_engine();
        let (users, items, interactions) = engine.model_stats();
        assert_eq!(users, 16);
        assert_eq!(items, 5);
        assert_eq!(interactions, 40);
    }

    #[test]
    fn payload_is_stored_but_optional() {
        let engine = Engine::new();
        engine.post("u", "i", Some(4.5));
        engine.post("u", "j", None);
        assert_eq!(engine.stats().events, 2);
    }

    #[test]
    fn n_limits_result_size() {
        let engine = seeded_engine();
        engine.post("newbie", "alien", None);
        let recs = engine.get("newbie", 1);
        assert_eq!(recs.items.len(), 1);
    }

    #[test]
    fn clone_shares_state() {
        let engine = Engine::new();
        let clone = engine.clone();
        engine.post("u", "i", None);
        assert_eq!(clone.stats().events, 1);
    }
}
