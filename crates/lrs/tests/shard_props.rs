//! Property-based tests for the consistent-hash shard ring.
//!
//! Three families, per the sharding spec:
//!
//! 1. **Stability** — adding or removing a shard moves only the keys
//!    whose arc changed hands (~K/N of them for an add), never a key
//!    between two surviving siblings.
//! 2. **Balance** — virtual nodes keep per-shard key shares near 1/N.
//! 3. **Determinism** — routing is a pure function of the key: rings
//!    rebuilt in any process agree, including over randomized key sets
//!    replayable with `PPROX_TEST_SEED=<seed> cargo test ...`.

use pprox_lrs::shard::{fnv1a64, HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

fn keys(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<String>> {
    // Shaped like wire pseudonyms: fixed-length base64-ish strings.
    // Deduplicated so move-fraction math counts distinct keys.
    proptest::collection::vec("[A-Za-z0-9+/]{44}", range).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    /// Adding a shard moves keys only *to* the new shard — consistent
    /// hashing's defining property — and the moved fraction stays near
    /// the ideal 1/(N+1) share the new shard should claim.
    #[test]
    fn adding_a_shard_moves_only_keys_to_it(
        keys in keys(200..400),
        shards in 2usize..7,
    ) {
        let before = HashRing::new(shards, DEFAULT_VNODES);
        let mut after = before.clone();
        after.add_shard(shards);
        let mut moved = 0usize;
        for key in &keys {
            let old = before.owner(key);
            let new = after.owner(key);
            if old != new {
                prop_assert_eq!(
                    new, shards,
                    "key moved between surviving siblings {} -> {}", old, new
                );
                moved += 1;
            }
        }
        // Expected share: K/(N+1). Loose statistical envelope — the
        // point is "a bounded slice", not "half the keyspace".
        let expected = keys.len() as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) < 3.0 * expected + 10.0,
            "add moved {} of {} keys (expected ~{:.0})", moved, keys.len(), expected
        );
    }

    /// Removing a shard reassigns exactly its own keys; siblings keep
    /// every key they had.
    #[test]
    fn removing_a_shard_strands_no_sibling_keys(
        keys in keys(100..300),
        shards in 3usize..8,
        victim_raw in 0usize..8,
    ) {
        let victim = victim_raw % shards;
        let before = HashRing::new(shards, DEFAULT_VNODES);
        let mut after = before.clone();
        after.remove_shard(victim);
        for key in &keys {
            let old = before.owner(key);
            let new = after.owner(key);
            if old == victim {
                prop_assert!(new != victim, "key still routed to removed shard");
            } else {
                prop_assert_eq!(new, old, "sibling key re-keyed by an unrelated removal");
            }
        }
    }

    /// Kill-and-readmit (the supervisor drill's ring view): removing a
    /// shard and adding it back restores the exact pre-kill routing.
    #[test]
    fn readmission_restores_routing_exactly(
        keys in keys(50..200),
        shards in 2usize..8,
        victim_raw in 0usize..8,
    ) {
        let victim = victim_raw % shards;
        let pristine = HashRing::new(shards, DEFAULT_VNODES);
        let mut ring = pristine.clone();
        ring.remove_shard(victim);
        ring.add_shard(victim);
        prop_assert_eq!(&ring, &pristine);
        for key in &keys {
            prop_assert_eq!(ring.owner(key), pristine.owner(key));
        }
    }

    /// Routing is deterministic across independently built rings and
    /// insensitive to shard insertion order.
    #[test]
    fn rebuilt_rings_agree(keys in keys(50..150), shards in 1usize..8) {
        let a = HashRing::new(shards, DEFAULT_VNODES);
        let b = HashRing::with_shards((0..shards).rev(), DEFAULT_VNODES);
        prop_assert_eq!(&a, &b);
        for key in &keys {
            prop_assert_eq!(a.owner(key), b.owner(key));
        }
    }
}

/// Effective seed for the randomized-replay test: honors
/// `PPROX_TEST_SEED` and prints the seed in use, so a failing run's
/// banner is enough to replay it exactly.
fn test_seed(default: u64) -> u64 {
    let seed = std::env::var("PPROX_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default);
    eprintln!("shard ring seed: {seed} (override with PPROX_TEST_SEED)");
    seed
}

/// splitmix64 — tiny deterministic generator for the replayable key set
/// (no dependence on proptest's internal RNG, so the seed alone decides
/// the keys).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn seeded_key_population_routes_identically_across_replays() {
    let seed = test_seed(0x5ead_0000_0001);
    let mut state = seed;
    let keys: Vec<String> = (0..2_000)
        .map(|_| {
            format!(
                "{:016x}{:016x}",
                splitmix64(&mut state),
                splitmix64(&mut state)
            )
        })
        .collect();
    let ring = HashRing::new(8, DEFAULT_VNODES);
    // Replay: a second ring and a second pass over regenerated keys.
    let mut state2 = seed;
    let replayed: Vec<String> = (0..2_000)
        .map(|_| {
            format!(
                "{:016x}{:016x}",
                splitmix64(&mut state2),
                splitmix64(&mut state2)
            )
        })
        .collect();
    assert_eq!(keys, replayed, "seeded key stream must replay exactly");
    let again = HashRing::new(8, DEFAULT_VNODES);
    for key in &keys {
        assert_eq!(ring.owner(key), again.owner(key));
    }
}

#[test]
fn virtual_nodes_balance_an_eight_shard_ring() {
    let seed = test_seed(0xba1a_0ce5);
    let mut state = seed;
    let ring = HashRing::new(8, DEFAULT_VNODES);
    let mut counts = [0usize; 8];
    let total = 40_000;
    for _ in 0..total {
        let key = format!("{:016x}", splitmix64(&mut state));
        counts[ring.owner(&key)] += 1;
    }
    let ideal = total as f64 / 8.0;
    for (shard, &c) in counts.iter().enumerate() {
        let skew = c as f64 / ideal;
        assert!(
            (0.7..1.3).contains(&skew),
            "shard {shard} holds {c} of {total} keys (skew {skew:.2})"
        );
    }
}

#[test]
fn fnv_is_the_published_function() {
    // Anchors the wire contract: rings in other processes (or other
    // languages) reproduce routing iff they implement standard FNV-1a
    // (plus the ring's fixed splitmix64-finalizer mix on top).
    assert_eq!(fnv1a64(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
}
