//! Property-based tests for the LRS substrate.

use pprox_lrs::api::{FeedbackEvent, RecommendationQuery};
use pprox_lrs::cco::{log_likelihood_ratio, CcoConfig, CcoTrainer};
use pprox_lrs::docstore::DocStore;
use pprox_lrs::index::ScoringIndex;
use proptest::prelude::*;

fn id() -> impl Strategy<Value = String> {
    "[a-z0-9\\-]{1,20}"
}

proptest! {
    /// LLR is non-negative, symmetric in the off-diagonal cells, and zero
    /// on proportional (independent) tables.
    #[test]
    fn llr_basic_properties(k11 in 0u64..500, k12 in 0u64..500, k21 in 0u64..500, k22 in 0u64..500) {
        let v = log_likelihood_ratio(k11, k12, k21, k22);
        prop_assert!(v >= 0.0, "LLR must be non-negative: {v}");
        prop_assert!(v.is_finite());
        let swapped = log_likelihood_ratio(k11, k21, k12, k22);
        prop_assert!((v - swapped).abs() < 1e-6, "transpose symmetry");
    }

    #[test]
    fn llr_zero_on_proportional_tables(a in 1u64..50, b in 1u64..50, scale in 1u64..20) {
        // Rows proportional → independence → LLR ≈ 0.
        let v = log_likelihood_ratio(a, b, a * scale, b * scale);
        prop_assert!(v.abs() < 1e-6, "{v}");
    }

    /// Training is deterministic and input-order independent.
    #[test]
    fn training_is_order_independent(
        mut pairs in proptest::collection::vec((id(), id()), 1..80),
    ) {
        let trainer = CcoTrainer::new(CcoConfig { min_llr: 0.0, ..CcoConfig::default() });
        let forward = trainer.train(pairs.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        pairs.reverse();
        let backward = trainer.train(pairs.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        prop_assert_eq!(forward.num_users, backward.num_users);
        prop_assert_eq!(forward.num_items, backward.num_items);
        prop_assert_eq!(forward.num_interactions, backward.num_interactions);
        // Indicator sets match per item (scores identical, order may tie).
        for (item, inds) in forward.iter() {
            let other = backward.indicators(item);
            prop_assert_eq!(inds.len(), other.len(), "item {}", item);
        }
    }

    /// Recommendations never include history or excluded items and
    /// respect the limit.
    #[test]
    fn recommendations_respect_filters(
        pairs in proptest::collection::vec((id(), id()), 5..100),
        n in 0usize..30,
    ) {
        let trainer = CcoTrainer::new(CcoConfig { min_llr: 0.0, ..CcoConfig::default() });
        let model = trainer.train(pairs.iter().map(|(u, i)| (u.as_str(), i.as_str())));
        let index = ScoringIndex::build(&model);
        let history: Vec<String> = pairs.iter().take(3).map(|(_, i)| i.clone()).collect();
        let exclude: Vec<String> = pairs.iter().skip(3).take(2).map(|(_, i)| i.clone()).collect();
        let recs = index.recommend_filtered(&history, n, &exclude);
        prop_assert!(recs.len() <= n);
        for r in &recs {
            prop_assert!(!history.contains(&r.item));
            prop_assert!(!exclude.contains(&r.item));
        }
        // Scores are sorted descending.
        for w in recs.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Wire-format roundtrips for arbitrary field contents.
    #[test]
    fn api_wire_roundtrips(
        user in id(),
        item in id(),
        payload in proptest::option::of(0.5f64..5.0),
        num in 0usize..100,
        exclude in proptest::collection::vec(id(), 0..5),
    ) {
        let event = FeedbackEvent { user: user.clone(), item, payload };
        prop_assert_eq!(FeedbackEvent::from_json(&event.to_json()).unwrap(), event);
        let query = RecommendationQuery { user, num, exclude };
        prop_assert_eq!(RecommendationQuery::from_json(&query.to_json()).unwrap(), query);
    }

    /// Docstore find-by-index equals full-scan filtering.
    #[test]
    fn docstore_index_matches_scan(
        docs in proptest::collection::vec((id(), id()), 0..60),
        probe in id(),
    ) {
        let store = DocStore::new();
        store.create_index("c", "user");
        for (user, item) in &docs {
            store.insert("c", pprox_json::Value::object([
                ("user", pprox_json::Value::from(user.as_str())),
                ("item", pprox_json::Value::from(item.as_str())),
            ]));
        }
        let indexed = store.find_eq("c", "user", &probe);
        let scanned: Vec<_> = store
            .scan("c")
            .into_iter()
            .filter(|(_, d)| d.get("user").and_then(|u| u.as_str()) == Some(probe.as_str()))
            .collect();
        prop_assert_eq!(indexed.len(), scanned.len());
        let expected = docs.iter().filter(|(u, _)| *u == probe).count();
        prop_assert_eq!(indexed.len(), expected);
    }
}
