//! Differential test: the incremental CCO trainer against the batch
//! trainer it replaces.
//!
//! The sharding spec's exactness contract: after `sync()`, a shard
//! engine fed an event stream one event at a time returns **byte
//! identical** top-k responses to the batch engine trained over the
//! same stream — for in-order, out-of-order (permuted), and duplicated
//! streams alike. Counts are maintained exactly online, `sync()`
//! re-derives every indicator list from them with the same LLR function
//! and the same total-order comparators the batch path uses, and
//! scoring accumulates in history order on both sides, so equal inputs
//! give bit-equal f64 sums.

use pprox_lrs::cco::CcoConfig;
use pprox_lrs::engine::Engine;
use pprox_lrs::shard::ShardEngine;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded synthetic event stream with taste clusters (so LLR has
/// real associations to find) plus background noise.
fn event_stream(seed: u64, users: usize, events: usize) -> Vec<(String, String)> {
    let mut state = seed;
    (0..events)
        .map(|_| {
            let u = (splitmix64(&mut state) as usize) % users;
            // Two genres with a shared catalog slice: users of one
            // parity favor one genre, with 25% crossover noise.
            let genre = if splitmix64(&mut state).is_multiple_of(4) {
                1 - (u % 2)
            } else {
                u % 2
            };
            let item = (splitmix64(&mut state) as usize) % 12;
            (format!("user-{u:03}"), format!("g{genre}-item-{item:02}"))
        })
        .collect()
}

/// Deterministic permutation of the stream (Fisher–Yates under
/// splitmix64) — "out of order" arrival for both engines.
fn permuted(mut events: Vec<(String, String)>, seed: u64) -> Vec<(String, String)> {
    let mut state = seed;
    for i in (1..events.len()).rev() {
        let j = (splitmix64(&mut state) as usize) % (i + 1);
        events.swap(i, j);
    }
    events
}

/// Feeds the same stream to both engines and asserts byte-identical
/// REST-level responses for every user in it.
fn assert_differential(events: &[(String, String)], tag: &str) {
    let config = CcoConfig::default();
    let batch = Engine::with_config(config.clone());
    let shard = ShardEngine::with_config(config.clone());
    for (user, item) in events {
        batch.post(user, item, Some(1.0));
        shard.post(user, item, Some(1.0));
    }
    batch.train();
    shard.sync();

    let mut users: Vec<&String> = events.iter().map(|(u, _)| u).collect();
    users.sort();
    users.dedup();
    assert!(!users.is_empty());
    let mut nonempty = 0usize;
    for user in users {
        for n in [1usize, 5, 10] {
            let b = batch.get_filtered(user, n, &[]).to_json();
            let s = shard.get_filtered(user, n, &[]).to_json();
            assert_eq!(b, s, "{tag}: user {user} top-{n} diverged");
            if b.contains("\"id\"") {
                nonempty += 1;
            }
        }
        // Excludes flow through both filters identically.
        let exclude = vec!["g0-item-00".to_string(), "g1-item-03".to_string()];
        let b = batch.get_filtered(user, 10, &exclude).to_json();
        let s = shard.get_filtered(user, 10, &exclude).to_json();
        assert_eq!(b, s, "{tag}: user {user} excluded top-10 diverged");
    }
    assert!(
        nonempty > 0,
        "{tag}: differential would be vacuous — no user got any recommendation"
    );
}

#[test]
fn incremental_matches_batch_in_order() {
    let events = event_stream(0xd1ff_0001, 40, 600);
    assert_differential(&events, "in-order");
}

#[test]
fn incremental_matches_batch_out_of_order() {
    let events = permuted(event_stream(0xd1ff_0002, 40, 600), 0x0dd5);
    assert_differential(&events, "permuted");
}

#[test]
fn incremental_matches_batch_with_duplicates() {
    let mut events = event_stream(0xd1ff_0003, 30, 400);
    // Duplicate a third of the stream (re-posts of the same event), then
    // interleave the copies out of order.
    let dupes: Vec<_> = events.iter().step_by(3).cloned().collect();
    events.extend(dupes);
    let events = permuted(events, 0xd0_0d5e);
    assert_differential(&events, "duplicates");
}

#[test]
fn incremental_matches_batch_under_tight_caps() {
    // Small caps force the downsample and indicator-eviction paths.
    let config = CcoConfig {
        max_prefs_per_user: 6,
        max_indicators_per_item: 3,
        min_llr: 0.5,
    };
    let events = event_stream(0xd1ff_0004, 24, 500);
    let batch = Engine::with_config(config.clone());
    let shard = ShardEngine::with_config(config.clone());
    for (user, item) in &events {
        batch.post(user, item, None);
        shard.post(user, item, None);
    }
    batch.train();
    shard.sync();
    for u in 0..24 {
        let user = format!("user-{u:03}");
        let b = batch.get_filtered(&user, 10, &[]).to_json();
        let s = shard.get_filtered(&user, 10, &[]).to_json();
        assert_eq!(b, s, "tight caps: user {user} diverged");
    }
}

#[test]
fn resync_after_more_events_stays_exact() {
    // Interleave sync() mid-stream: staleness between syncs must not
    // leak into the post-sync state.
    let events = event_stream(0xd1ff_0005, 32, 600);
    let config = CcoConfig::default();
    let batch = Engine::with_config(config.clone());
    let shard = ShardEngine::with_config(config.clone());
    for (i, (user, item)) in events.iter().enumerate() {
        batch.post(user, item, None);
        shard.post(user, item, None);
        if i == events.len() / 2 {
            shard.sync(); // mid-stream sync, then keep streaming
        }
    }
    batch.train();
    shard.sync();
    for u in 0..32 {
        let user = format!("user-{u:03}");
        let b = batch.get_filtered(&user, 8, &[]).to_json();
        let s = shard.get_filtered(&user, 8, &[]).to_json();
        assert_eq!(b, s, "resync: user {user} diverged");
    }
}
