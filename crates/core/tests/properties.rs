//! Property-based tests on the proxy's core data structures.

use pprox_core::autoscale::{AutoscaleConfig, Autoscaler};
use pprox_core::message::{ClientEnvelope, LayerEnvelope, Op};
use pprox_core::routing::RoutingTable;
use pprox_core::shuffler::{FlushReason, ShuffleBuffer, ShuffleConfig};
use pprox_core::telemetry::histogram::SUB_BUCKETS;
use pprox_core::telemetry::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;
use std::collections::HashSet;

/// A script of shuffle-buffer operations.
#[derive(Debug, Clone)]
enum ShuffleOp {
    Push(u64),
    AdvanceAndPoll(u64),
}

fn shuffle_ops() -> impl Strategy<Value = Vec<ShuffleOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..10_000).prop_map(ShuffleOp::Push),
            (1u64..2_000_000).prop_map(ShuffleOp::AdvanceAndPoll),
        ],
        1..200,
    )
}

proptest! {
    /// No item is ever lost or duplicated by the shuffle buffer, under
    /// arbitrary interleavings of pushes and timer polls.
    #[test]
    fn shuffler_conserves_items(
        ops in shuffle_ops(),
        size in 1usize..20,
        timeout_us in 1_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut buffer = ShuffleBuffer::new(
            ShuffleConfig { size, timeout_us },
            seed,
        );
        let mut now = 0u64;
        let mut pushed: Vec<u64> = Vec::new();
        let mut released: Vec<u64> = Vec::new();
        let mut next_item = 0u64;
        for op in ops {
            match op {
                ShuffleOp::Push(dt) => {
                    now += dt;
                    let item = next_item;
                    next_item += 1;
                    pushed.push(item);
                    if let Some(flush) = buffer.push(now, item) {
                        released.extend(flush.items);
                    }
                }
                ShuffleOp::AdvanceAndPoll(dt) => {
                    now += dt;
                    if let Some(flush) = buffer.poll_timeout(now) {
                        released.extend(flush.items);
                    }
                }
            }
        }
        if let Some(flush) = buffer.drain() {
            released.extend(flush.items);
        }
        let mut sorted = released.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, pushed, "conservation violated");
        // No duplicates.
        let set: HashSet<u64> = released.iter().copied().collect();
        prop_assert_eq!(set.len(), released.len());
    }

    /// Full-buffer flushes always release exactly S items.
    #[test]
    fn shuffler_full_flushes_have_exact_size(
        size in 1usize..30,
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut buffer = ShuffleBuffer::new(
            ShuffleConfig { size, timeout_us: u64::MAX / 2 },
            seed,
        );
        for i in 0..n as u64 {
            if let Some(flush) = buffer.push(i, i) {
                prop_assert_eq!(flush.items.len(), size);
            }
        }
        prop_assert!(buffer.len() < size);
    }

    /// Every flush releases at least one item, never more than S, and
    /// full-reason flushes release exactly S — under arbitrary
    /// interleavings of pushes and timer polls.
    #[test]
    fn shuffler_flushes_are_nonempty_and_bounded(
        ops in shuffle_ops(),
        size in 1usize..20,
        timeout_us in 1_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut buffer = ShuffleBuffer::new(ShuffleConfig { size, timeout_us }, seed);
        let mut now = 0u64;
        let mut item = 0u64;
        let check = |flush: pprox_core::shuffler::Flush<u64>| {
            prop_assert!(!flush.items.is_empty(), "empty flush ({:?})", flush.reason);
            prop_assert!(flush.items.len() <= size, "oversized flush");
            if flush.reason == FlushReason::Full {
                prop_assert_eq!(flush.items.len(), size);
            }
            Ok(())
        };
        for op in ops {
            match op {
                ShuffleOp::Push(dt) => {
                    now += dt;
                    item += 1;
                    if let Some(flush) = buffer.push(now, item) {
                        check(flush)?;
                    }
                }
                ShuffleOp::AdvanceAndPoll(dt) => {
                    now += dt;
                    if let Some(flush) = buffer.poll_timeout(now) {
                        check(flush)?;
                    }
                }
            }
        }
        if let Some(flush) = buffer.drain() {
            check(flush)?;
        }
    }

    /// Dwell is bounded: after any timer poll, no held item is older
    /// than the flush timeout, and no released item ever dwelt past it
    /// by more than the gap since the previous poll. The §4.3
    /// privacy/latency trade-off depends on the timeout capping dwell.
    #[test]
    fn shuffler_dwell_is_bounded_by_timeout(
        ops in shuffle_ops(),
        size in 2usize..20,
        timeout_us in 1_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut buffer = ShuffleBuffer::new(ShuffleConfig { size, timeout_us }, seed);
        let mut now = 0u64;
        // Shadow model of the buffer: (item, arrival) in push order.
        let mut held: Vec<(u64, u64)> = Vec::new();
        let mut item = 0u64;
        let on_flush = |flush: pprox_core::shuffler::Flush<u64>,
                            held: &mut Vec<(u64, u64)>,
                            now_us: u64,
                            slack: u64| {
            for released in &flush.items {
                let pos = held.iter().position(|(i, _)| i == released)
                    .expect("released an item the model does not hold");
                let (_, arrived) = held.remove(pos);
                // The timer is observed only at poll points, so dwell
                // can overshoot the timeout by at most the time since
                // the previous poll (when the buffer was last checked).
                prop_assert!(
                    now_us - arrived <= timeout_us + slack,
                    "item dwelt {} µs past a {} µs timeout (slack {})",
                    now_us - arrived, timeout_us, slack
                );
            }
            Ok(())
        };
        let mut last_poll_at = 0u64;
        for op in ops {
            match op {
                ShuffleOp::Push(dt) => {
                    now += dt;
                    item += 1;
                    held.push((item, now));
                    if let Some(flush) = buffer.push(now, item) {
                        on_flush(flush, &mut held, now, now - last_poll_at)?;
                    }
                }
                ShuffleOp::AdvanceAndPoll(dt) => {
                    now += dt;
                    if let Some(flush) = buffer.poll_timeout(now) {
                        on_flush(flush, &mut held, now, now - last_poll_at)?;
                    }
                    last_poll_at = now;
                    // The timer poll just ran: whatever is still held
                    // must be younger than the timeout.
                    if let Some(&(_, oldest)) = held.first() {
                        prop_assert!(
                            now < oldest + timeout_us,
                            "poll left an item {} µs overdue",
                            now - (oldest + timeout_us)
                        );
                    }
                }
            }
        }
        prop_assert_eq!(held.len(), buffer.len(), "model diverged from buffer");
    }

    /// The release permutation is positional, not content-dependent:
    /// two same-seed buffers fed the same arrival slots release from
    /// the same positions regardless of which items occupy them. The
    /// adversary-facing property: batch order carries no information
    /// about arrival order beyond the seed.
    #[test]
    fn shuffler_permutation_is_independent_of_item_order(
        size in 2usize..16,
        batches in 1usize..8,
        seed in any::<u64>(),
        reversed in any::<bool>(),
    ) {
        let config = ShuffleConfig { size, timeout_us: u64::MAX / 2 };
        let mut a = ShuffleBuffer::new(config, seed);
        let mut b = ShuffleBuffer::new(config, seed);
        for batch in 0..batches as u64 {
            let base = batch * size as u64;
            let items_a: Vec<u64> = (0..size as u64).map(|i| base + i).collect();
            let mut items_b = items_a.clone();
            if reversed {
                items_b.reverse();
            }
            let mut out_a = None;
            let mut out_b = None;
            for i in 0..size {
                out_a = a.push(i as u64, items_a[i]).or(out_a);
                out_b = b.push(i as u64, items_b[i]).or(out_b);
            }
            let out_a = out_a.expect("batch A must flush").items;
            let out_b = out_b.expect("batch B must flush").items;
            // Derive A's positional permutation π (slot fed → release
            // rank) and check B applied the identical π to its slots.
            for (rank, &released) in out_a.iter().enumerate() {
                let slot = items_a.iter().position(|&x| x == released).unwrap();
                prop_assert_eq!(
                    out_b[rank], items_b[slot],
                    "release rank {} drew from a different slot", rank
                );
            }
        }
    }

    /// Routing table: every registered id resolves exactly once, ids are
    /// unique, and the table drains to empty.
    #[test]
    fn routing_table_is_a_bijection(values in proptest::collection::vec(any::<u32>(), 0..100)) {
        let mut table: RoutingTable<u32> = RoutingTable::new();
        let ids: Vec<_> = values.iter().map(|&v| table.register(v)).collect();
        let unique: HashSet<_> = ids.iter().copied().collect();
        prop_assert_eq!(unique.len(), ids.len());
        for (id, &v) in ids.iter().zip(values.iter()) {
            prop_assert_eq!(table.take(*id), Some(v));
            prop_assert_eq!(table.take(*id), None);
        }
        prop_assert!(table.is_empty());
    }

    /// Envelope framing roundtrips for arbitrary field contents within
    /// the frame budget.
    #[test]
    fn envelopes_roundtrip(
        user in proptest::collection::vec(any::<u8>(), 0..300),
        aux in proptest::collection::vec(any::<u8>(), 0..300),
        is_post in any::<bool>(),
    ) {
        let op = if is_post { Op::Post } else { Op::Get };
        let env = ClientEnvelope { op, user: user.clone(), aux: aux.clone() };
        let frame = env.to_frame().unwrap();
        prop_assert_eq!(ClientEnvelope::from_frame(&frame).unwrap(), env);

        let layer = LayerEnvelope { op, user_pseudonym: user, aux };
        let frame = layer.to_frame().unwrap();
        prop_assert_eq!(LayerEnvelope::from_frame(&frame).unwrap(), layer);
    }

    /// All frames are constant-size regardless of content.
    #[test]
    fn frames_constant_size(
        user in proptest::collection::vec(any::<u8>(), 0..300),
        aux in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let env = ClientEnvelope { op: Op::Get, user, aux };
        prop_assert_eq!(
            env.to_frame().unwrap().len(),
            pprox_core::message::REQUEST_FRAME_LEN
        );
    }

    /// Histogram quantiles are monotone in `q`, stay within the observed
    /// range, and respect the log-linear resolution bound against the
    /// true (sorted) quantile.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        mut values in proptest::collection::vec(0u64..10_000_000, 1..500),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        values.sort_unstable();
        let max = *values.last().unwrap();
        let mut prev = 0u64;
        for step in 0..=100u32 {
            let q = f64::from(step) / 100.0;
            let got = s.quantile(q);
            prop_assert!(got >= prev, "quantile({q}) = {got} < quantile(prev) = {prev}");
            prop_assert!(got <= max, "quantile({q}) = {got} above observed max {max}");
            prev = got;
            // Resolution bound: the reported value is the upper edge of a
            // bucket containing the true rank-order statistic, so it can
            // exceed the true value by at most one sub-bucket's width.
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank];
            prop_assert!(
                got as f64 >= truth as f64 * (1.0 - 1.0 / SUB_BUCKETS as f64) - 1.0
                    && got as f64 <= truth as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "quantile({q}) = {got} vs true {truth}"
            );
        }
        prop_assert_eq!(s.quantile(1.0), max);
    }

    /// Merging per-worker snapshots is exact: any partition of the same
    /// observations merges into the identical snapshot, so quantiles are
    /// independent of how recording was sharded across workers.
    #[test]
    fn histogram_merge_is_partition_independent(
        values in proptest::collection::vec(0u64..10_000_000, 1..300),
        split in 0usize..300,
    ) {
        let whole = LatencyHistogram::new();
        let left = LatencyHistogram::new();
        let right = LatencyHistogram::new();
        let split = split.min(values.len());
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < split { left.record(v) } else { right.record(v) }
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&left.snapshot());
        merged.merge(&right.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// The autoscaler never exceeds bounds, never returns zero instances,
    /// and its target is monotone in load.
    #[test]
    fn autoscaler_is_bounded_and_monotone(
        loads in proptest::collection::vec(0.0f64..5_000.0, 1..50),
        max in 1usize..32,
    ) {
        let config = AutoscaleConfig {
            max_instances: max,
            ..AutoscaleConfig::paper_default()
        };
        let mut scaler = Autoscaler::new(config, 1);
        for &rps in &loads {
            let d = scaler.observe(rps);
            prop_assert!(d.instances >= 1 && d.instances <= max);
        }
        // Monotonicity of the pure target function.
        let probe = Autoscaler::new(config, 1);
        let mut last = 0usize;
        for rps in [0.0, 100.0, 300.0, 700.0, 2_000.0, 4_900.0] {
            let t = probe.target_for(rps);
            prop_assert!(t >= last);
            last = t;
        }
    }
}
