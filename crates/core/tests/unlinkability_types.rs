//! Unlinkability properties of the typed id/secret boundary (§4.2).
//!
//! Three families of checks ride on the plaintext-id newtypes:
//!
//! 1. **Pseudonym domain separation** — the UA pseudonymizes users under
//!    `kUA` and the IA pseudonymizes items under `kIA`; identical
//!    plaintext strings must never collide across the two domains, or a
//!    curious LRS could join user and item vocabularies.
//! 2. **Fixed-size id budget** — ids are validated against
//!    [`pprox_core::message::MAX_ID_LEN`] at the trust boundary, with
//!    exact behaviour at the boundary and for adversarial padding.
//! 3. **Redacted Debug** — envelopes and id newtypes must never leak
//!    plaintext through `{:?}`, the classic accidental-logging channel.

use pprox_core::message::{ClientEnvelope, EncryptedList, MAX_ID_LEN};
use pprox_core::{PProxConfig, PProxDeployment, PProxError};
use pprox_lrs::api::{
    FeedbackEvent, HttpRequest, HttpResponse, Method, RecommendationQuery, RestHandler,
    EVENTS_PATH, QUERIES_PATH,
};
use pprox_lrs::stub::StubLrs;
use std::sync::{Arc, Mutex};

/// An LRS that records every request body it sees, so tests can inspect
/// exactly what leaves the proxy (the honest-but-curious vantage point).
struct RecordingLrs {
    inner: StubLrs,
    bodies: Mutex<Vec<(Method, String, String)>>,
}

impl RecordingLrs {
    fn new() -> Arc<Self> {
        Arc::new(RecordingLrs {
            inner: StubLrs::new(),
            bodies: Mutex::new(Vec::new()),
        })
    }

    fn events(&self) -> Vec<FeedbackEvent> {
        self.bodies
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, path, _)| path == EVENTS_PATH)
            .map(|(_, _, body)| FeedbackEvent::from_json(body).expect("well-formed event"))
            .collect()
    }

    fn queries(&self) -> Vec<RecommendationQuery> {
        self.bodies
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, path, _)| path == QUERIES_PATH)
            .map(|(_, _, body)| RecommendationQuery::from_json(body).expect("well-formed query"))
            .collect()
    }
}

impl RestHandler for RecordingLrs {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.bodies.lock().unwrap().push((
            request.method,
            request.path.clone(),
            request.body.clone(),
        ));
        self.inner.handle(request)
    }
}

fn deployment(lrs: Arc<RecordingLrs>) -> PProxDeployment {
    PProxDeployment::new(PProxConfig::for_tests(), lrs, 0x600d_5eed).unwrap()
}

// --- 1. Pseudonym domain separation -----------------------------------

#[test]
fn identical_plaintext_never_collides_across_user_and_item_domains() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    // The same plaintext string posted as BOTH the user and the item id.
    d.post_feedback(&mut client, "collision-probe", "collision-probe", Some(1.0))
        .unwrap();

    let events = lrs.events();
    assert_eq!(events.len(), 1);
    let event = &events[0];
    // Both fields are pseudonymized (plaintext absent)…
    assert_ne!(event.user, "collision-probe");
    assert_ne!(event.item, "collision-probe");
    // …and under *independent* deterministic keys they must not collide:
    // equality here would let the LRS join user and item vocabularies.
    assert_ne!(
        event.user, event.item,
        "det_enc(x, kUA) == det_enc(x, kIA): user/item pseudonym domains overlap"
    );
}

#[test]
fn pseudonyms_are_deterministic_within_a_domain() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    d.post_feedback(&mut client, "alice", "m1", None).unwrap();
    d.post_feedback(&mut client, "alice", "m2", None).unwrap();
    d.post_feedback(&mut client, "bob", "m1", None).unwrap();

    let events = lrs.events();
    assert_eq!(events.len(), 3);
    // Same user, same pseudonym (the LRS still accumulates alice's
    // profile under her stable pseudonym — that is the whole point).
    assert_eq!(events[0].user, events[1].user);
    // Different users, different pseudonyms.
    assert_ne!(events[0].user, events[2].user);
    // Same item, same pseudonym across users.
    assert_eq!(events[0].item, events[2].item);
    // Different items differ.
    assert_ne!(events[0].item, events[1].item);
}

#[test]
fn get_queries_reach_lrs_pseudonymized_and_consistent_with_posts() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    d.post_feedback(&mut client, "carol", "m9", None).unwrap();
    d.get_recommendations(&mut client, "carol").unwrap();

    let events = lrs.events();
    let queries = lrs.queries();
    assert_eq!((events.len(), queries.len()), (1, 1));
    assert_ne!(queries[0].user, "carol", "query leaked the plaintext user");
    // post(u) and get(u) must map to the SAME pseudonym or the LRS could
    // never use the profile it built (§4.2: deterministic det_enc).
    assert_eq!(events[0].user, queries[0].user);
}

#[test]
fn exclusion_rules_arrive_in_the_item_pseudonym_domain() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    d.post_feedback(&mut client, "dave", "seen-item", None)
        .unwrap();
    d.get_recommendations_with_rules(&mut client, "dave", &["seen-item"])
        .unwrap();

    let events = lrs.events();
    let queries = lrs.queries();
    assert_eq!(queries[0].exclude.len(), 1);
    assert_ne!(queries[0].exclude[0], "seen-item", "rule leaked plaintext");
    // The excluded id must land in the same domain the item feedback used,
    // or the LRS could not apply the blacklist to its catalogue.
    assert_eq!(queries[0].exclude[0], events[0].item);
}

// --- 2. Fixed-size id budget at the boundary --------------------------

#[test]
fn ids_at_exactly_max_len_are_accepted() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    let user = "u".repeat(MAX_ID_LEN);
    let item = "i".repeat(MAX_ID_LEN);
    d.post_feedback(&mut client, &user, &item, None).unwrap();
    d.get_recommendations(&mut client, &user).unwrap();
}

#[test]
fn ids_one_past_max_len_are_rejected_before_any_bytes_leave_the_client() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    let long_user = "u".repeat(MAX_ID_LEN + 1);
    let err = d
        .post_feedback(&mut client, &long_user, "m1", None)
        .unwrap_err();
    assert!(
        matches!(err, PProxError::IdTooLong { len, max } if len == MAX_ID_LEN + 1 && max == MAX_ID_LEN),
        "unexpected error: {err:?}"
    );

    let long_item = "i".repeat(MAX_ID_LEN + 1);
    let err = d
        .post_feedback(&mut client, "alice", &long_item, None)
        .unwrap_err();
    assert!(matches!(err, PProxError::IdTooLong { .. }), "{err:?}");

    let err = d
        .get_recommendations_with_rules(&mut client, "alice", &[&long_item])
        .unwrap_err();
    assert!(matches!(err, PProxError::IdTooLong { .. }), "{err:?}");

    // Rejection happened client-side: nothing ever reached the LRS.
    assert!(lrs.events().is_empty() && lrs.queries().is_empty());
}

#[test]
fn multibyte_ids_are_measured_in_bytes_not_chars() {
    // 10 snowmen = 30 bytes ≤ 28+2? No: 30 > 28, must be rejected even
    // though the char count (10) is far below the limit.
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();
    let user = "\u{2603}".repeat(10);
    assert_eq!(user.len(), 30);
    let err = d.post_feedback(&mut client, &user, "m1", None).unwrap_err();
    assert!(matches!(err, PProxError::IdTooLong { len: 30, max } if max == MAX_ID_LEN));
}

#[test]
fn truncated_response_frames_are_rejected_not_misparsed() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    let (envelope, ticket) = client.get("erin").unwrap();
    let encrypted = d.handle_get(&envelope).unwrap();

    // Truncating the ciphertext must produce a clean error, never a
    // partially-decoded list: the list block has a fixed frame size.
    let truncated = EncryptedList(encrypted.0[..encrypted.0.len() / 2].to_vec());
    assert!(client.open_response(&ticket, &truncated).is_err());

    // A single missing trailing byte is still a frame violation.
    let short = EncryptedList(encrypted.0[..encrypted.0.len() - 1].to_vec());
    assert!(client.open_response(&ticket, &short).is_err());

    // So is one extra byte (over-length frames are not silently trimmed).
    let mut long = encrypted.clone();
    long.0.push(0);
    assert!(client.open_response(&ticket, &long).is_err());

    // An empty frame never reaches the parser.
    assert!(client
        .open_response(&ticket, &EncryptedList(Vec::new()))
        .is_err());
}

// --- 3. Redacted Debug ------------------------------------------------

#[test]
fn envelope_debug_never_prints_plaintext_or_ciphertext_bytes() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs.clone());
    let mut client = d.client();

    let envelope = client
        .post("debug-probe-user", "debug-probe-item", Some(2.5))
        .unwrap();
    let rendered = format!("{envelope:?}");
    assert!(!rendered.contains("debug-probe-user"), "{rendered}");
    assert!(!rendered.contains("debug-probe-item"), "{rendered}");
    // The redacted form still carries correlation handles: lengths and a
    // short digest, enough to match log lines without exposing content.
    assert!(rendered.contains("user_len"), "{rendered}");
    assert!(rendered.contains("user_digest"), "{rendered}");

    let (get_env, ticket) = client.get("debug-probe-user").unwrap();
    let rendered = format!("{get_env:?}");
    assert!(!rendered.contains("debug-probe-user"), "{rendered}");

    let encrypted = d.handle_get(&get_env).unwrap();
    let rendered = format!("{encrypted:?}");
    assert!(rendered.contains("len"), "{rendered}");
    assert!(rendered.contains("digest"), "{rendered}");
    // The Debug form must be a fixed small size, not proportional dump.
    assert!(rendered.len() < 120, "{rendered}");

    let items = client.open_response(&ticket, &encrypted).unwrap();
    assert!(!items.is_empty());
}

#[test]
fn client_envelope_debug_is_stable_under_payload_presence() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs);
    let mut client = d.client();
    let with = client.post("u", "i", Some(1.0)).unwrap();
    let without = client.post("u", "i", None).unwrap();
    for e in [&with, &without] {
        let r = format!("{e:?}");
        assert!(r.contains("ClientEnvelope"), "{r}");
        assert!(r.contains("aux_len"), "{r}");
    }
}

#[test]
fn id_newtype_debug_prints_byte_count_only() {
    use pprox_core::{PlaintextItemId, PlaintextUserId};
    let u = PlaintextUserId::new("top-secret-user").unwrap();
    let i = PlaintextItemId::new("top-secret-item").unwrap();
    let (ru, ri) = (format!("{u:?}"), format!("{i:?}"));
    assert!(!ru.contains("top-secret"), "{ru}");
    assert!(!ri.contains("top-secret"), "{ri}");
    assert!(ru.contains("15"), "expected byte count in {ru}");
}

#[test]
fn user_client_debug_hides_key_material() {
    let lrs = RecordingLrs::new();
    let d = deployment(lrs);
    let client = d.client();
    let rendered = format!("{client:?}");
    assert!(rendered.contains("UserClient"), "{rendered}");
    // No raw byte arrays: redacted Debug prints flags, not key bytes.
    assert!(!rendered.contains("[1"), "{rendered}");
    assert!(rendered.len() < 160, "{rendered}");
}

// A compile-visible reminder that ClientEnvelope is Clone + Eq but its
// Debug is hand-written (deriving Debug would trip analyzer rule R4).
#[allow(dead_code)]
fn envelope_is_clone_eq(e: &ClientEnvelope) -> bool {
    e.clone() == *e
}
