//! Model-checked interleaving tests for the telemetry lock-free
//! structures, run with `RUSTFLAGS="--cfg loom"` (see `scripts/ci.sh`,
//! `loom` stage).
//!
//! Under that cfg, `telemetry::sync` re-exports the loom shim's
//! instrumented atomics: every atomic operation becomes a scheduling
//! point, and `loom::model` re-runs each body under hundreds of
//! deterministic schedules with bounded preemptions. These tests assert
//! the properties the seqlock and histogram protocols promise:
//!
//! * A [`SpanRing`] reader never observes a *torn* record — fields from
//!   two different writes stitched together — no matter where writers are
//!   preempted mid-publication.
//! * Writer accounting is exact under contention: every push is either
//!   retained or counted dropped.
//! * Histogram concurrent record + merge equals a single-recorder run,
//!   and a mid-flight snapshot never invents observations.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use pprox_core::telemetry::{
    HistogramSnapshot, LatencyHistogram, SpanRecord, SpanRing, Stage, TraceId,
};

/// A record whose fields are all derived from `tag`, so a snapshot can
/// verify coherence: any mixing of two writers' fields is detectable.
fn correlated(tag: u64) -> SpanRecord {
    SpanRecord {
        trace: TraceId(tag),
        stage: Stage::Ua,
        instance: tag as u16,
        start_us: tag * 100,
        duration_us: tag + 7,
        ok: true,
    }
}

fn assert_coherent(r: &SpanRecord) {
    let tag = r.trace.0;
    assert_eq!(
        r.instance, tag as u16,
        "instance stitched from another write"
    );
    assert_eq!(
        r.start_us,
        tag * 100,
        "start_us stitched from another write"
    );
    assert_eq!(
        r.duration_us,
        tag + 7,
        "duration_us stitched from another write"
    );
}

/// Two writers race for the single slot of a capacity-1 ring: the seqlock
/// must serialize them (one wins the CAS, the loser is counted dropped)
/// and the surviving record must be coherent.
#[test]
fn span_ring_two_writers_single_slot() {
    loom::model(|| {
        let ring = Arc::new(SpanRing::new(1));
        let r1 = Arc::clone(&ring);
        let r2 = Arc::clone(&ring);
        let t1 = thread::spawn(move || r1.push(correlated(1)));
        let t2 = thread::spawn(move || r2.push(correlated(2)));
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(ring.pushed(), 2);
        let snap = ring.snapshot();
        // Both tickets map to the single slot: either both writes land
        // serialized (the later overwrites the earlier) or the loser of
        // the version CAS is dropped. Either way exactly one coherent
        // record survives and at most one drop is counted.
        assert_eq!(snap.len(), 1, "exactly one record retained");
        assert!(ring.dropped() <= 1, "at most one CAS loser");
        for r in &snap {
            assert_coherent(r);
        }
    });
}

/// A reader snapshots while a writer republishes the slot: the reader
/// either sees the old record, the new record, or skips the slot — never
/// a blend of the two. This is the interleaving the snapshot-side
/// `fence(Acquire)` + revalidation exists for.
#[test]
fn span_ring_reader_never_sees_torn_write() {
    loom::model(|| {
        let ring = Arc::new(SpanRing::new(1));
        ring.push(correlated(1)); // slot starts published with tag 1
        let w = Arc::clone(&ring);
        let writer = thread::spawn(move || w.push(correlated(2)));
        let snap = ring.snapshot(); // races the republication
        writer.join().unwrap();

        for r in &snap {
            assert_coherent(r);
            assert!(
                r.trace.0 == 1 || r.trace.0 == 2,
                "unknown tag {}",
                r.trace.0
            );
        }
        // After the writer retires, a quiescent snapshot sees its record
        // unless the initial push made the slot appear busy — impossible
        // here since push(1) completed before the spawn.
        let settled = ring.snapshot();
        if ring.dropped() == 0 {
            assert_eq!(settled.len(), 1);
            assert_eq!(settled[0].trace.0, 2);
        }
    });
}

/// Wrap-around under contention: two writers target distinct tickets that
/// map to the same slot of a capacity-1 ring while a third pushes into a
/// fresh ticket. Accounting must stay exact: pushed == retained-tickets
/// seen by snapshot + dropped is not required (overwrites lose records
/// silently by design) but pushed and dropped counters must be coherent.
#[test]
fn span_ring_three_writers_accounting() {
    loom::model(|| {
        let ring = Arc::new(SpanRing::new(2));
        let handles: Vec<_> = (1..=3u64)
            .map(|tag| {
                let r = Arc::clone(&ring);
                thread::spawn(move || r.push(correlated(tag)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.pushed(), 3);
        let snap = ring.snapshot();
        assert!(ring.dropped() <= 2, "at most two losers");
        assert!(snap.len() <= 2, "capacity bound");
        assert!(snap.len() as u64 + ring.dropped() >= 1);
        for r in &snap {
            assert_coherent(r);
        }
    });
}

/// Concurrent recording into a shared histogram plus per-thread locals:
/// after joining, merged locals must equal the shared histogram exactly
/// (same fixed bucket layout), and nothing is lost under any schedule.
#[test]
fn histogram_concurrent_record_and_merge() {
    loom::model(|| {
        let shared = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let local = LatencyHistogram::new();
                    for i in 0..3u64 {
                        let v = t * 1_000 + i * 37;
                        local.record(v);
                        shared.record(v);
                    }
                    local.snapshot()
                })
            })
            .collect();
        let mut merged = HistogramSnapshot::empty();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        assert_eq!(merged, shared.snapshot());
        assert_eq!(shared.count(), 6);
    });
}

/// A snapshot taken mid-recording must never invent observations: its
/// count is bounded by the number of records issued so far in any
/// schedule, and per-cell counts are bounded by the final state.
#[test]
fn histogram_snapshot_never_invents() {
    loom::model(|| {
        let h = Arc::new(LatencyHistogram::new());
        let w = Arc::clone(&h);
        let writer = thread::spawn(move || {
            for v in [5u64, 500, 50_000] {
                w.record(v);
            }
        });
        let mid = h.snapshot(); // races the three records
        writer.join().unwrap();
        let fin = h.snapshot();
        assert!(
            mid.count() <= 3,
            "snapshot invented records: {}",
            mid.count()
        );
        assert!(mid.sum_us() <= fin.sum_us());
        assert!(mid.max_us() <= fin.max_us());
        assert_eq!(fin.count(), 3);
        assert_eq!(fin.sum_us(), 5 + 500 + 50_000);
        assert_eq!(fin.max_us(), 50_000);
    });
}
