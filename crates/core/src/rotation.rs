//! Breach response: key rotation with LRS state re-encryption.
//!
//! The paper's footnote on breach detection (§2.3, footnote 1): once an
//! enclave compromise is detected, "available options include dropping
//! the database content and re-starting the system with new secrets,
//! downloading the LRS state for local re-encryption before re-uploading
//! it and provisioning fresh enclaves and the user-side library with new
//! secrets, or employing an LRS-specific proxy re-encryption technique
//! using (or not) an enclave."
//!
//! This module implements the second and third options:
//!
//! * [`rotate_database`] — the offline path: given old and new layer key
//!   sets, translate every pseudonym in an exported LRS event dump.
//! * [`RotationEnclave`] — the proxy re-encryption path: a dedicated
//!   enclave provisioned with *both* the compromised layer's old key and
//!   its replacement, which translates pseudonyms one at a time without
//!   ever exposing either key to the host.
//!
//! Either way, only the *broken layer's* key rotates: the other layer's
//! pseudonyms are untouched, so the un-compromised layer's secrets never
//! leave their enclaves.

use crate::keys::LayerSecrets;
use crate::message::ID_PLAINTEXT_LEN;
use crate::PProxError;
use pprox_crypto::base64;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::pad;
use pprox_sgx::enclave::{EnclaveApp, SecretBag};

/// Which proxy layer is being rotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotatedLayer {
    /// Rotate `kUA` (user pseudonyms change).
    UserAnonymizer,
    /// Rotate `kIA` (item pseudonyms change).
    ItemAnonymizer,
}

/// Translates one pseudonym from the old key to the new key.
///
/// # Errors
///
/// Fails when the stored id is not a valid pseudonym under the old key —
/// a corrupted database entry (plaintext entries from an
/// item-pseudonymization-off deployment are returned unchanged).
pub fn translate_pseudonym(
    old_key: &SymmetricKey,
    new_key: &SymmetricKey,
    stored_id: &str,
) -> Result<String, PProxError> {
    let Ok(ct) = base64::decode(stored_id) else {
        // Plaintext id (item pseudonymization disabled): nothing to do.
        return Ok(stored_id.to_owned());
    };
    if ct.len() != ID_PLAINTEXT_LEN {
        return Ok(stored_id.to_owned());
    }
    let padded = old_key.det_decrypt(&ct);
    // Sanity: must unpad, otherwise the old key is wrong.
    pad::unpad(&padded, ID_PLAINTEXT_LEN)?;
    Ok(base64::encode(&new_key.det_encrypt(&padded)))
}

/// Offline re-encryption of an exported LRS event dump: rewrites the
/// rotated layer's column of every `(user, item)` pair.
///
/// # Errors
///
/// Fails on the first entry that does not decrypt under the old key.
pub fn rotate_database(
    layer: RotatedLayer,
    old_key: &SymmetricKey,
    new_key: &SymmetricKey,
    events: &[(String, String)],
) -> Result<Vec<(String, String)>, PProxError> {
    events
        .iter()
        .map(|(user, item)| {
            Ok(match layer {
                RotatedLayer::UserAnonymizer => {
                    (translate_pseudonym(old_key, new_key, user)?, item.clone())
                }
                RotatedLayer::ItemAnonymizer => {
                    (user.clone(), translate_pseudonym(old_key, new_key, item)?)
                }
            })
        })
        .collect()
}

/// In-enclave proxy re-encryption state: holds the old (compromised) and
/// new keys of one layer. Loaded as its own enclave so the host performing
/// the migration never sees either key.
pub struct RotationEnclave {
    old_key: SymmetricKey,
    new_key: SymmetricKey,
    translated: u64,
}

impl std::fmt::Debug for RotationEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotationEnclave")
            .field("translated", &self.translated)
            .finish()
    }
}

/// Code identity of the rotation enclave.
pub const ROTATION_CODE_IDENTITY: &str = "pprox-rotation-v1";

impl RotationEnclave {
    /// Creates the rotation state (provisioned after attestation, like
    /// any layer enclave).
    pub fn new(old_secrets: &LayerSecrets, new_key: SymmetricKey) -> Self {
        RotationEnclave {
            old_key: old_secrets.k.clone(),
            new_key,
            translated: 0,
        }
    }

    /// Translates one stored id (ECALL body).
    ///
    /// # Errors
    ///
    /// Same conditions as [`translate_pseudonym`].
    pub fn translate(&mut self, stored_id: &str) -> Result<String, PProxError> {
        self.translated += 1;
        translate_pseudonym(&self.old_key, &self.new_key, stored_id)
    }

    /// Ids translated so far (migration progress).
    pub fn translated(&self) -> u64 {
        self.translated
    }
}

impl EnclaveApp for RotationEnclave {
    fn leak_secrets(&self) -> SecretBag {
        let mut bag = SecretBag::new();
        // A broken rotation enclave leaks both generations of ONE layer's
        // key — still never the other layer's.
        bag.insert("rotation.old_k", self.old_key.as_bytes().to_vec());
        bag.insert("rotation.new_k", self.new_key.as_bytes().to_vec());
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_crypto::rng::SecureRng;

    fn keys() -> (SymmetricKey, SymmetricKey) {
        let mut rng = SecureRng::from_seed(0x707);
        (
            SymmetricKey::generate(&mut rng),
            SymmetricKey::generate(&mut rng),
        )
    }

    fn pseudonym(key: &SymmetricKey, id: &str) -> String {
        let padded = pad::pad(id.as_bytes(), ID_PLAINTEXT_LEN).unwrap();
        base64::encode(&key.det_encrypt(&padded))
    }

    fn depseudonymize(key: &SymmetricKey, stored: &str) -> String {
        let ct = base64::decode(stored).unwrap();
        let padded = key.det_decrypt(&ct);
        String::from_utf8(pad::unpad(&padded, ID_PLAINTEXT_LEN).unwrap()).unwrap()
    }

    #[test]
    fn translate_preserves_identity_under_new_key() {
        let (old, new) = keys();
        let stored = pseudonym(&old, "alice");
        let rotated = translate_pseudonym(&old, &new, &stored).unwrap();
        assert_ne!(rotated, stored, "pseudonym must change");
        assert_eq!(depseudonymize(&new, &rotated), "alice");
    }

    #[test]
    fn translate_is_deterministic() {
        let (old, new) = keys();
        let stored = pseudonym(&old, "bob");
        assert_eq!(
            translate_pseudonym(&old, &new, &stored).unwrap(),
            translate_pseudonym(&old, &new, &stored).unwrap()
        );
    }

    #[test]
    fn plaintext_ids_pass_through() {
        let (old, new) = keys();
        assert_eq!(
            translate_pseudonym(&old, &new, "clear-item").unwrap(),
            "clear-item"
        );
    }

    #[test]
    fn wrong_old_key_detected() {
        let (old, new) = keys();
        let mut rng = SecureRng::from_seed(0x708);
        let other = SymmetricKey::generate(&mut rng);
        let stored = pseudonym(&other, "alice");
        assert!(translate_pseudonym(&old, &new, &stored).is_err());
    }

    #[test]
    fn rotate_database_only_touches_selected_layer() {
        let (old_ua, new_ua) = keys();
        let mut rng = SecureRng::from_seed(0x709);
        let k_ia = SymmetricKey::generate(&mut rng);
        let events: Vec<(String, String)> = (0..10)
            .map(|i| {
                (
                    pseudonym(&old_ua, &format!("user-{i}")),
                    pseudonym(&k_ia, &format!("item-{i}")),
                )
            })
            .collect();
        let rotated =
            rotate_database(RotatedLayer::UserAnonymizer, &old_ua, &new_ua, &events).unwrap();
        for (i, ((new_user, new_item), (_, old_item))) in
            rotated.iter().zip(events.iter()).enumerate()
        {
            assert_eq!(new_item, old_item, "item column untouched");
            assert_eq!(depseudonymize(&new_ua, new_user), format!("user-{i}"));
        }
    }

    #[test]
    fn rotated_profiles_stay_consistent() {
        // The same user appearing in many events must map to ONE new
        // pseudonym (profile continuity survives rotation).
        let (old, new) = keys();
        let stored = pseudonym(&old, "heavy-user");
        let events = vec![
            (stored.clone(), "i1".to_owned()),
            (stored.clone(), "i2".to_owned()),
            (stored, "i3".to_owned()),
        ];
        let rotated = rotate_database(RotatedLayer::UserAnonymizer, &old, &new, &events).unwrap();
        assert_eq!(rotated[0].0, rotated[1].0);
        assert_eq!(rotated[1].0, rotated[2].0);
    }

    #[test]
    fn rotation_enclave_counts_and_leaks_only_one_layer() {
        let mut rng = SecureRng::from_seed(0x70a);
        let (secrets, _) = LayerSecrets::generate(1152, &mut rng);
        let new_key = SymmetricKey::generate(&mut rng);
        let old_key = secrets.k.clone();
        let mut enclave = RotationEnclave::new(&secrets, new_key);
        let stored = pseudonym(&old_key, "u");
        enclave.translate(&stored).unwrap();
        assert_eq!(enclave.translated(), 1);
        let bag = enclave.leak_secrets();
        assert!(bag.get("rotation.old_k").is_some());
        assert!(bag.get("ia.k").is_none() && bag.get("ua.k").is_none());
    }
}
