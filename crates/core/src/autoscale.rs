//! Elastic scaling of the proxy layers (§5).
//!
//! "The two proxy layers need, therefore, to elastically scale up and
//! down based on observed request load, dynamically implementing a
//! compromise between throughput and latency." Two forces pull in
//! opposite directions:
//!
//! * **Throughput** — each UA+IA pair sustains ~250 requests/s before
//!   queueing explodes (Figure 8), so high load needs more instances.
//! * **Latency/privacy** — shuffling needs each instance's buffer to fill
//!   before its timer: over-provisioning starves the buffers and either
//!   adds timer latency (Figure 8's 50-RPS cells) or, with short timers,
//!   shrinks the effective anonymity set below `S`.
//!
//! [`Autoscaler`] implements that policy as a pure function of observed
//! load plus hysteresis, so it is testable and usable by both the live
//! pipeline and the simulator.

/// Autoscaler policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Sustainable requests/s per UA+IA instance pair (≈250 in the
    /// paper's evaluation).
    pub rps_per_pair: f64,
    /// Target utilization at the chosen scale (leave headroom below the
    /// saturation knee).
    pub target_utilization: f64,
    /// Minimum per-instance request rate needed to fill shuffle buffers
    /// of size `S` within the timer: `S / timeout`. Scaling *up* beyond
    /// this starves the buffers.
    pub min_rps_per_instance_for_shuffling: f64,
    /// Upper bound on instances per layer.
    pub max_instances: usize,
    /// Scale down only when the target drops below the current scale by
    /// this fraction (hysteresis against flapping).
    pub scale_down_headroom: f64,
}

impl AutoscaleConfig {
    /// Policy matching the paper's deployment: 250 RPS per pair, 80%
    /// target utilization, `S = 10` with a 500 ms timer (so an instance
    /// needs ≥20 RPS to fill its buffer), up to 16 instances.
    pub fn paper_default() -> Self {
        AutoscaleConfig {
            rps_per_pair: 250.0,
            target_utilization: 0.8,
            min_rps_per_instance_for_shuffling: 10.0 / 0.5,
            max_instances: 16,
            scale_down_headroom: 0.25,
        }
    }
}

/// A scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Instances per layer to run.
    pub instances: usize,
    /// Whether the chosen scale can still fill shuffle buffers by count
    /// (false = the timer will pad out batches; §6.3's low-traffic
    /// caveat applies).
    pub shuffling_healthy: bool,
}

/// Elastic scaling controller for the proxy layers.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    current: usize,
}

impl Autoscaler {
    /// Creates a controller starting at `initial` instances per layer.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `config.max_instances`.
    pub fn new(config: AutoscaleConfig, initial: usize) -> Self {
        assert!(initial >= 1 && initial <= config.max_instances);
        Autoscaler {
            config,
            current: initial,
        }
    }

    /// Current instances per layer.
    pub fn instances(&self) -> usize {
        self.current
    }

    /// The ideal instance count for a given load, before hysteresis.
    pub fn target_for(&self, observed_rps: f64) -> usize {
        let capacity_needed =
            (observed_rps / (self.config.rps_per_pair * self.config.target_utilization)).ceil();
        (capacity_needed.max(1.0) as usize).min(self.config.max_instances)
    }

    /// Observes the current load and returns (and adopts) the decision.
    pub fn observe(&mut self, observed_rps: f64) -> ScaleDecision {
        let target = self.target_for(observed_rps.max(0.0));
        if target > self.current {
            // Scale up immediately: saturation hurts every request.
            self.current = target;
        } else if target < self.current {
            // Scale down only with headroom to avoid flapping.
            let down_threshold = self.current as f64 * (1.0 - self.config.scale_down_headroom);
            if (target as f64) <= down_threshold {
                self.current = target;
            }
        }
        let per_instance = observed_rps / self.current as f64;
        ScaleDecision {
            instances: self.current,
            shuffling_healthy: per_instance >= self.config.min_rps_per_instance_for_shuffling,
        }
    }

    /// Like [`observe`](Self::observe), but additionally aware of
    /// admission-control pressure: `rejection_fraction` is the share of
    /// submissions shed at the ingress gate (see
    /// [`crate::resilience::AdmissionGate::rejection_fraction`]).
    ///
    /// Observed RPS alone under-estimates demand when the gate is
    /// shedding — rejected requests never become load. Whenever more than
    /// 1% of submissions are rejected, this adds one instance beyond the
    /// throughput-derived target (up to `max_instances`) so capacity
    /// chases the *offered* load, not just the admitted load.
    pub fn observe_with_pressure(
        &mut self,
        observed_rps: f64,
        rejection_fraction: f64,
    ) -> ScaleDecision {
        let mut decision = self.observe(observed_rps);
        if rejection_fraction > 0.01 && self.current < self.config.max_instances {
            self.current += 1;
            decision.instances = self.current;
            let per_instance = observed_rps / self.current as f64;
            decision.shuffling_healthy =
                per_instance >= self.config.min_rps_per_instance_for_shuffling;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig::paper_default(), 1)
    }

    #[test]
    fn targets_match_figure8_steps() {
        let s = scaler();
        // 250 RPS/pair at 80% target → 200 effective per pair.
        assert_eq!(s.target_for(50.0), 1);
        assert_eq!(s.target_for(200.0), 1);
        assert_eq!(s.target_for(201.0), 2);
        assert_eq!(s.target_for(500.0), 3);
        assert_eq!(s.target_for(1000.0), 5);
    }

    #[test]
    fn scales_up_immediately() {
        let mut s = scaler();
        let d = s.observe(900.0);
        assert_eq!(d.instances, 5);
    }

    #[test]
    fn scales_down_with_hysteresis() {
        let mut s = scaler();
        s.observe(900.0);
        assert_eq!(s.instances(), 5);
        // Small dip: no change (5 → 4 is within the 25% headroom band).
        s.observe(700.0);
        assert_eq!(s.instances(), 5);
        // Large dip: scale down.
        s.observe(100.0);
        assert_eq!(s.instances(), 1);
    }

    #[test]
    fn respects_max_instances() {
        let mut s = Autoscaler::new(
            AutoscaleConfig {
                max_instances: 4,
                ..AutoscaleConfig::paper_default()
            },
            1,
        );
        assert_eq!(s.observe(100_000.0).instances, 4);
    }

    #[test]
    fn detects_shuffle_starvation() {
        let mut s = scaler();
        s.observe(900.0); // 5 instances
                          // Load collapses to 40 RPS but hysteresis holds 5 instances for a
                          // beat: 8 RPS per instance cannot fill S=10 within 500 ms.
        let d = s.observe(40.0 * 5.0 / 5.0); // still 5 instances this tick
                                             // After the big dip the scaler drops to 1 and shuffling recovers.
        let d2 = s.observe(40.0);
        let _ = d;
        assert_eq!(d2.instances, 1);
        assert!(d2.shuffling_healthy, "40 RPS on one instance fills S=10");
    }

    #[test]
    fn starved_when_overprovisioned() {
        // Figure 8's m9-at-50-RPS cell: a *statically* provisioned 4-pair
        // deployment (scale-down disabled) at 50 RPS = 12.5 RPS per
        // instance < 20 needed → unhealthy shuffling (timer-bound).
        let mut s = Autoscaler::new(
            AutoscaleConfig {
                scale_down_headroom: 1.0, // never scale down
                ..AutoscaleConfig::paper_default()
            },
            4,
        );
        let d = s.observe(50.0);
        assert_eq!(d.instances, 4);
        assert!(!d.shuffling_healthy);
    }

    #[test]
    fn rejection_pressure_scales_beyond_observed_rps() {
        let mut s = scaler();
        // 150 RPS admitted would normally fit one pair, but 10% of
        // submissions are being shed: add capacity for the unseen demand.
        let d = s.observe_with_pressure(150.0, 0.10);
        assert_eq!(d.instances, 2);
        // No pressure → identical to plain observe.
        let mut s2 = scaler();
        let d2 = s2.observe_with_pressure(150.0, 0.0);
        assert_eq!(d2.instances, 1);
        // Pressure never exceeds max_instances.
        let mut s3 = Autoscaler::new(
            AutoscaleConfig {
                max_instances: 2,
                ..AutoscaleConfig::paper_default()
            },
            2,
        );
        assert_eq!(s3.observe_with_pressure(100.0, 0.5).instances, 2);
    }

    #[test]
    fn zero_load_stays_alive() {
        let mut s = scaler();
        let d = s.observe(0.0);
        assert_eq!(d.instances, 1);
        assert!(!d.shuffling_healthy);
    }

    #[test]
    #[should_panic]
    fn invalid_initial_panics() {
        let _ = Autoscaler::new(AutoscaleConfig::paper_default(), 0);
    }
}
