//! Elastic scaling of the proxy layers (§5).
//!
//! "The two proxy layers need, therefore, to elastically scale up and
//! down based on observed request load, dynamically implementing a
//! compromise between throughput and latency." Two forces pull in
//! opposite directions:
//!
//! * **Throughput** — each UA+IA pair sustains ~250 requests/s before
//!   queueing explodes (Figure 8), so high load needs more instances.
//! * **Latency/privacy** — shuffling needs each instance's buffer to fill
//!   before its timer: over-provisioning starves the buffers and either
//!   adds timer latency (Figure 8's 50-RPS cells) or, with short timers,
//!   shrinks the effective anonymity set below `S`.
//!
//! [`Autoscaler`] implements that policy as a pure function of observed
//! load plus hysteresis, so it is testable and usable by both the live
//! pipeline and the simulator.

/// Autoscaler policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Sustainable requests/s per UA+IA instance pair (≈250 in the
    /// paper's evaluation).
    pub rps_per_pair: f64,
    /// Target utilization at the chosen scale (leave headroom below the
    /// saturation knee).
    pub target_utilization: f64,
    /// Minimum per-instance request rate needed to fill shuffle buffers
    /// of size `S` within the timer: `S / timeout`. Scaling *up* beyond
    /// this starves the buffers.
    pub min_rps_per_instance_for_shuffling: f64,
    /// Upper bound on instances per layer.
    pub max_instances: usize,
    /// Scale down only when the target drops below the current scale by
    /// this fraction (hysteresis against flapping).
    pub scale_down_headroom: f64,
    /// Tail-latency SLO for the worst *processing* stage (UA, IA or the
    /// LRS call), microseconds at p99. Fed from
    /// [`crate::telemetry::StageSet::worst_processing_p99_us`]; when the
    /// observed p99 breaches it, capacity is added even if mean throughput
    /// looks fine — queueing inflates the tail long before the mean moves.
    pub stage_p99_slo_us: u64,
}

impl AutoscaleConfig {
    /// Policy matching the paper's deployment: 250 RPS per pair, 80%
    /// target utilization, `S = 10` with a 500 ms timer (so an instance
    /// needs ≥20 RPS to fill its buffer), up to 16 instances.
    pub fn paper_default() -> Self {
        AutoscaleConfig {
            rps_per_pair: 250.0,
            target_utilization: 0.8,
            min_rps_per_instance_for_shuffling: 10.0 / 0.5,
            max_instances: 16,
            scale_down_headroom: 0.25,
            // The paper's proxy adds ~10 ms overhead per request (§7.3);
            // a 50 ms p99 on any single processing stage means queueing.
            stage_p99_slo_us: 50_000,
        }
    }
}

/// A scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Instances per layer to run.
    pub instances: usize,
    /// Whether the chosen scale can still fill shuffle buffers by count
    /// (false = the timer will pad out batches; §6.3's low-traffic
    /// caveat applies).
    pub shuffling_healthy: bool,
}

/// Elastic scaling controller for the proxy layers.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    current: usize,
}

impl Autoscaler {
    /// Creates a controller starting at `initial` instances per layer.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `config.max_instances`.
    pub fn new(config: AutoscaleConfig, initial: usize) -> Self {
        assert!(initial >= 1 && initial <= config.max_instances);
        Autoscaler {
            config,
            current: initial,
        }
    }

    /// Current instances per layer.
    pub fn instances(&self) -> usize {
        self.current
    }

    /// The ideal instance count for a given load, before hysteresis.
    pub fn target_for(&self, observed_rps: f64) -> usize {
        let capacity_needed =
            (observed_rps / (self.config.rps_per_pair * self.config.target_utilization)).ceil();
        (capacity_needed.max(1.0) as usize).min(self.config.max_instances)
    }

    /// Observes the current load and returns (and adopts) the decision.
    pub fn observe(&mut self, observed_rps: f64) -> ScaleDecision {
        let target = self.target_for(observed_rps.max(0.0));
        if target > self.current {
            // Scale up immediately: saturation hurts every request.
            self.current = target;
        } else if target < self.current {
            // Scale down only with headroom to avoid flapping.
            let down_threshold = self.current as f64 * (1.0 - self.config.scale_down_headroom);
            if (target as f64) <= down_threshold {
                self.current = target;
            }
        }
        let per_instance = observed_rps / self.current as f64;
        ScaleDecision {
            instances: self.current,
            shuffling_healthy: per_instance >= self.config.min_rps_per_instance_for_shuffling,
        }
    }

    /// Like [`observe`](Self::observe), but additionally aware of two
    /// pressure signals that throughput alone misses:
    ///
    /// * `rejection_fraction` — the share of submissions shed at the
    ///   ingress gate (see
    ///   [`crate::resilience::AdmissionGate::rejection_fraction`]).
    ///   Rejected requests never become observed load, so observed RPS
    ///   under-estimates demand while the gate is shedding.
    /// * `stage_p99_us` — the p99 latency of the worst processing stage
    ///   from the telemetry histograms
    ///   ([`crate::telemetry::StageSet::worst_processing_p99_us`]); `None`
    ///   when no stage has observations yet. A queue building in front of
    ///   one stage inflates its tail long before the mean (which a few
    ///   fast requests keep low) reports trouble.
    ///
    /// Either signal firing — more than 1% rejections, or a p99 above
    /// `stage_p99_slo_us` — adds one instance beyond the
    /// throughput-derived target (up to `max_instances`), so capacity
    /// chases offered load and tail health, not just admitted throughput.
    pub fn observe_with_pressure(
        &mut self,
        observed_rps: f64,
        rejection_fraction: f64,
        stage_p99_us: Option<u64>,
    ) -> ScaleDecision {
        let mut decision = self.observe(observed_rps);
        let tail_breached = stage_p99_us.is_some_and(|p99| p99 > self.config.stage_p99_slo_us);
        if (rejection_fraction > 0.01 || tail_breached) && self.current < self.config.max_instances
        {
            self.current += 1;
            decision.instances = self.current;
            let per_instance = observed_rps / self.current as f64;
            decision.shuffling_healthy =
                per_instance >= self.config.min_rps_per_instance_for_shuffling;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig::paper_default(), 1)
    }

    #[test]
    fn targets_match_figure8_steps() {
        let s = scaler();
        // 250 RPS/pair at 80% target → 200 effective per pair.
        assert_eq!(s.target_for(50.0), 1);
        assert_eq!(s.target_for(200.0), 1);
        assert_eq!(s.target_for(201.0), 2);
        assert_eq!(s.target_for(500.0), 3);
        assert_eq!(s.target_for(1000.0), 5);
    }

    #[test]
    fn scales_up_immediately() {
        let mut s = scaler();
        let d = s.observe(900.0);
        assert_eq!(d.instances, 5);
    }

    #[test]
    fn scales_down_with_hysteresis() {
        let mut s = scaler();
        s.observe(900.0);
        assert_eq!(s.instances(), 5);
        // Small dip: no change (5 → 4 is within the 25% headroom band).
        s.observe(700.0);
        assert_eq!(s.instances(), 5);
        // Large dip: scale down.
        s.observe(100.0);
        assert_eq!(s.instances(), 1);
    }

    #[test]
    fn respects_max_instances() {
        let mut s = Autoscaler::new(
            AutoscaleConfig {
                max_instances: 4,
                ..AutoscaleConfig::paper_default()
            },
            1,
        );
        assert_eq!(s.observe(100_000.0).instances, 4);
    }

    #[test]
    fn detects_shuffle_starvation() {
        let mut s = scaler();
        s.observe(900.0); // 5 instances
                          // Load collapses to 40 RPS but hysteresis holds 5 instances for a
                          // beat: 8 RPS per instance cannot fill S=10 within 500 ms.
        let d = s.observe(40.0 * 5.0 / 5.0); // still 5 instances this tick
                                             // After the big dip the scaler drops to 1 and shuffling recovers.
        let d2 = s.observe(40.0);
        let _ = d;
        assert_eq!(d2.instances, 1);
        assert!(d2.shuffling_healthy, "40 RPS on one instance fills S=10");
    }

    #[test]
    fn starved_when_overprovisioned() {
        // Figure 8's m9-at-50-RPS cell: a *statically* provisioned 4-pair
        // deployment (scale-down disabled) at 50 RPS = 12.5 RPS per
        // instance < 20 needed → unhealthy shuffling (timer-bound).
        let mut s = Autoscaler::new(
            AutoscaleConfig {
                scale_down_headroom: 1.0, // never scale down
                ..AutoscaleConfig::paper_default()
            },
            4,
        );
        let d = s.observe(50.0);
        assert_eq!(d.instances, 4);
        assert!(!d.shuffling_healthy);
    }

    #[test]
    fn rejection_pressure_scales_beyond_observed_rps() {
        let mut s = scaler();
        // 150 RPS admitted would normally fit one pair, but 10% of
        // submissions are being shed: add capacity for the unseen demand.
        let d = s.observe_with_pressure(150.0, 0.10, None);
        assert_eq!(d.instances, 2);
        // No pressure → identical to plain observe.
        let mut s2 = scaler();
        let d2 = s2.observe_with_pressure(150.0, 0.0, None);
        assert_eq!(d2.instances, 1);
        // Pressure never exceeds max_instances.
        let mut s3 = Autoscaler::new(
            AutoscaleConfig {
                max_instances: 2,
                ..AutoscaleConfig::paper_default()
            },
            2,
        );
        assert_eq!(s3.observe_with_pressure(100.0, 0.5, None).instances, 2);
    }

    #[test]
    fn tail_inflation_scales_out_where_the_mean_is_blind() {
        use crate::telemetry::LatencyHistogram;
        // A workload whose mean hides the queue: 980 requests at 1 ms and
        // 20 stragglers (2%) at 400 ms. Mean ≈ 9 ms (healthy-looking);
        // p99 is 400 ms — far past the 50 ms stage SLO.
        let h = LatencyHistogram::new();
        for _ in 0..980 {
            h.record(1_000);
        }
        for _ in 0..20 {
            h.record(400_000);
        }
        let snap = h.snapshot();
        assert!(
            snap.mean_us() < 10_000.0,
            "mean {} looks fine",
            snap.mean_us()
        );
        let p99 = snap.p99();
        assert!(p99 >= 390_000, "p99 {p99} must expose the stragglers");

        // The mean-driven signal (what `observe` effectively consumed
        // before): 100 RPS with no rejections → stays at 1 instance.
        let mut mean_driven = scaler();
        assert_eq!(
            mean_driven
                .observe_with_pressure(100.0, 0.0, None)
                .instances,
            1,
            "without the tail signal the scaler is blind to the queue"
        );
        // The p99-driven signal scales out on the same throughput.
        let mut tail_driven = scaler();
        let d = tail_driven.observe_with_pressure(100.0, 0.0, Some(p99));
        assert_eq!(d.instances, 2, "p99 breach must add capacity");
        // A healthy tail adds nothing.
        let mut healthy = scaler();
        assert_eq!(
            healthy
                .observe_with_pressure(100.0, 0.0, Some(4_000))
                .instances,
            1
        );
    }

    #[test]
    fn zero_load_stays_alive() {
        let mut s = scaler();
        let d = s.observe(0.0);
        assert_eq!(d.instances, 1);
        assert!(!d.shuffling_healthy);
    }

    #[test]
    #[should_panic]
    fn invalid_initial_panics() {
        let _ = Autoscaler::new(AutoscaleConfig::paper_default(), 0);
    }
}
