//! PProx: a privacy-preserving proxy service for
//! Recommendation-as-a-Service.
//!
//! This crate is the paper's primary contribution (Rosinosky et al.,
//! Middleware '21): a two-layer proxy interposed between users and an
//! unmodified legacy recommendation system (LRS) that guarantees
//! **User–Interest unlinkability** — no component of the RaaS provider,
//! nor an adversary observing all of its network traffic and breaking one
//! enclave layer, can link a user to the items they access or receive as
//! recommendations.
//!
//! Architecture (§3–§5 of the paper):
//!
//! * [`client`] — the user-side library: encrypts ids under the layer
//!   public keys and opens responses. Holds no secrets.
//! * [`ua`] — the User Anonymizer layer: sees user ids, never item ids;
//!   replaces users with deterministic pseudonyms.
//! * [`ia`] — the Item Anonymizer layer: sees item ids, never user ids;
//!   pseudonymizes items and encrypts response lists under per-request
//!   temporary keys.
//! * [`keys`] — layer key material and attestation-gated provisioning.
//! * [`message`] — constant-size wire envelopes.
//! * [`gateway`] — §4.2's transparent REST redirection: envelopes riding
//!   the LRS's own paths with PProx routing headers.
//! * [`metrics`] — per-layer operational counters feeding the autoscaler.
//! * [`telemetry`] — privacy-safe tracing and latency histograms (the
//!   fluentd role), with trace IDs re-randomized at shuffle boundaries.
//! * [`shuffler`] — the §4.3 request/response shuffle buffers.
//! * [`routing`] — table T of in-flight requests.
//! * [`config`] — deployment parameters, incl. the paper's Table 2 rows.
//! * [`autoscale`] — the §5 elastic-scaling policy (throughput vs
//!   shuffle-buffer health).
//! * [`rotation`] — breach response: key rotation with in-enclave LRS
//!   re-encryption (the paper's footnote 1 options).
//! * [`proxy`] — a synchronous in-process deployment (functional path).
//! * [`pipeline`] — the event-driven, multi-threaded deployment mirroring
//!   the paper's server/data-processing split, with live shuffling.
//!
//! # Examples
//!
//! ```
//! use pprox_core::config::PProxConfig;
//! use pprox_core::proxy::PProxDeployment;
//! use pprox_lrs::stub::StubLrs;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), pprox_core::PProxError> {
//! let deployment = PProxDeployment::new(
//!     PProxConfig::for_tests(),
//!     Arc::new(StubLrs::new()),
//!     42,
//! )?;
//! let mut client = deployment.client();
//! deployment.post_feedback(&mut client, "alice", "item-1", Some(5.0))?;
//! let recs = deployment.get_recommendations(&mut client, "alice")?;
//! assert!(!recs.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod autoscale;
pub mod client;
pub mod config;
pub mod gateway;
pub mod ia;
pub mod ids;
pub mod keys;
pub mod message;
pub mod metrics;
pub mod pipeline;
pub mod proxy;
pub mod resilience;
pub mod rotation;
pub mod routing;
pub mod shuffler;
pub mod telemetry;
pub mod ua;

pub use client::UserClient;
pub use config::PProxConfig;
pub use ids::{PlaintextItemId, PlaintextUserId};
pub use proxy::PProxDeployment;

use pprox_crypto::base64::DecodeBase64Error;
use pprox_crypto::pad::PadError;
use pprox_crypto::CryptoError;
use pprox_json::ParseJsonError;
use pprox_sgx::epc::EpcError;
use pprox_sgx::{AttestationError, EnclaveError};

/// Errors produced by the PProx protocol and deployments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PProxError {
    /// A cryptographic operation failed (wrong key, corrupted data).
    Crypto(CryptoError),
    /// Constant-size framing was violated.
    Pad(PadError),
    /// A JSON body failed to parse.
    Json(ParseJsonError),
    /// A base64 field failed to decode.
    Base64(DecodeBase64Error),
    /// Remote attestation rejected an enclave.
    Attestation(AttestationError),
    /// Enclave lifecycle violation (not provisioned, double provision…).
    Enclave(EnclaveError),
    /// The IA layer's EPC budget for pending response keys is exhausted.
    Epc(EpcError),
    /// A message had the right size but invalid structure.
    MalformedMessage,
    /// A response arrived for an unknown or already-answered request.
    UnknownToken,
    /// A user or item identifier exceeds the fixed-size id budget.
    IdTooLong {
        /// Offending length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// The LRS returned a non-success status.
    Lrs {
        /// HTTP status returned.
        status: u16,
    },
    /// The request exceeded its end-to-end deadline budget (includes
    /// hung/slow LRS calls that outlived every retry attempt).
    Deadline,
    /// A dependency is temporarily unusable: the circuit breaker is open,
    /// the pipeline is shutting down, or a crashed enclave could not be
    /// replaced in time. Safe to retry after a backoff.
    Unavailable,
    /// Admission control rejected the request: the pipeline already holds
    /// its maximum number of in-flight requests. Shed load upstream or
    /// scale out.
    Overloaded,
}

impl std::fmt::Display for PProxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PProxError::Crypto(e) => write!(f, "crypto error: {e}"),
            PProxError::Pad(e) => write!(f, "framing error: {e}"),
            PProxError::Json(e) => write!(f, "json error: {e}"),
            PProxError::Base64(e) => write!(f, "base64 error: {e}"),
            PProxError::Attestation(e) => write!(f, "attestation error: {e}"),
            PProxError::Enclave(e) => write!(f, "enclave error: {e}"),
            PProxError::Epc(e) => write!(f, "epc error: {e}"),
            PProxError::MalformedMessage => write!(f, "malformed message"),
            PProxError::UnknownToken => write!(f, "unknown or spent request token"),
            PProxError::IdTooLong { len, max } => {
                write!(f, "identifier of {len} bytes exceeds maximum of {max}")
            }
            PProxError::Lrs { status } => write!(f, "LRS returned status {status}"),
            PProxError::Deadline => write!(f, "request exceeded its deadline"),
            PProxError::Unavailable => write!(f, "service temporarily unavailable"),
            PProxError::Overloaded => write!(f, "pipeline overloaded; request rejected"),
        }
    }
}

impl std::error::Error for PProxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PProxError::Crypto(e) => Some(e),
            PProxError::Pad(e) => Some(e),
            PProxError::Json(e) => Some(e),
            PProxError::Base64(e) => Some(e),
            PProxError::Attestation(e) => Some(e),
            PProxError::Enclave(e) => Some(e),
            PProxError::Epc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for PProxError {
    fn from(e: CryptoError) -> Self {
        PProxError::Crypto(e)
    }
}

impl From<PadError> for PProxError {
    fn from(e: PadError) -> Self {
        PProxError::Pad(e)
    }
}

impl From<ParseJsonError> for PProxError {
    fn from(e: ParseJsonError) -> Self {
        PProxError::Json(e)
    }
}

impl From<DecodeBase64Error> for PProxError {
    fn from(e: DecodeBase64Error) -> Self {
        PProxError::Base64(e)
    }
}

impl From<AttestationError> for PProxError {
    fn from(e: AttestationError) -> Self {
        PProxError::Attestation(e)
    }
}

impl From<EnclaveError> for PProxError {
    fn from(e: EnclaveError) -> Self {
        PProxError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = PProxError::Crypto(CryptoError::DecryptionFailed);
        assert_eq!(e.to_string(), "crypto error: decryption failed");
        assert!(e.source().is_some());
        assert!(PProxError::MalformedMessage.source().is_none());
        assert_eq!(
            PProxError::Lrs { status: 404 }.to_string(),
            "LRS returned status 404"
        );
        assert_eq!(
            PProxError::IdTooLong { len: 40, max: 28 }.to_string(),
            "identifier of 40 bytes exceeds maximum of 28"
        );
        assert_eq!(
            PProxError::Deadline.to_string(),
            "request exceeded its deadline"
        );
        assert_eq!(
            PProxError::Unavailable.to_string(),
            "service temporarily unavailable"
        );
        assert_eq!(
            PProxError::Overloaded.to_string(),
            "pipeline overloaded; request rejected"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PProxError>();
    }
}
