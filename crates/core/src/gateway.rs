//! Transparent REST call redirection (§4.2).
//!
//! "The LRS offers a REST API and the user-side library intercepts
//! unmodified calls to this API. The user-side library and the two proxy
//! service layers modify the headers, to implement redirections, and
//! payloads, to enable encryption."
//!
//! This module is the wire format of that interception: PProx envelopes
//! ride as ordinary HTTP requests against the *same paths* as the LRS API
//! (`/events`, `/queries`), with the encrypted frame as a base64 body and
//! two PProx headers:
//!
//! * `x-pprox-hop` — which hop the message is on (`client-ua` or
//!   `ua-ia`), so a layer knows which decoder to apply;
//! * `x-pprox-conn` — the logical connection id used by the reverse path
//!   (the socket/file-descriptor identity of table T in §5).
//!
//! To everything that only inspects method + path, a proxied deployment
//! is indistinguishable from a direct one — that is the "transparent"
//! part.

use crate::message::{ClientEnvelope, EncryptedList, LayerEnvelope, Op};
use crate::routing::ConnId;
use crate::PProxError;
use pprox_crypto::base64;
use pprox_lrs::api::{HttpRequest, HttpResponse, EVENTS_PATH, QUERIES_PATH};

/// Header naming the hop an envelope is on.
pub const HOP_HEADER: &str = "x-pprox-hop";

/// Header carrying the logical connection id for the reverse path.
pub const CONN_HEADER: &str = "x-pprox-conn";

/// Hop values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Client → UA.
    ClientToUa,
    /// UA → IA.
    UaToIa,
}

impl Hop {
    fn as_str(self) -> &'static str {
        match self {
            Hop::ClientToUa => "client-ua",
            Hop::UaToIa => "ua-ia",
        }
    }

    fn parse(s: &str) -> Option<Hop> {
        match s {
            "client-ua" => Some(Hop::ClientToUa),
            "ua-ia" => Some(Hop::UaToIa),
            _ => None,
        }
    }
}

fn path_for(op: Op) -> &'static str {
    match op {
        Op::Post => EVENTS_PATH,
        Op::Get => QUERIES_PATH,
    }
}

/// Wraps a client envelope as the HTTP request sent to the UA layer. The
/// path matches the LRS API path for the operation, so the application's
/// HTTP plumbing needs no change.
///
/// # Errors
///
/// Framing errors if the envelope exceeds its constant frame budget.
pub fn client_request(envelope: &ClientEnvelope, conn: ConnId) -> Result<HttpRequest, PProxError> {
    let frame = envelope.to_frame()?;
    Ok(
        HttpRequest::post(path_for(envelope.op), base64::encode(&frame))
            .with_header(HOP_HEADER, Hop::ClientToUa.as_str())
            .with_header(CONN_HEADER, conn.0.to_string()),
    )
}

/// Wraps a UA-processed envelope as the HTTP request forwarded to the IA
/// layer.
///
/// # Errors
///
/// Framing errors as for [`client_request`].
pub fn layer_request(envelope: &LayerEnvelope, conn: ConnId) -> Result<HttpRequest, PProxError> {
    let frame = envelope.to_frame()?;
    Ok(
        HttpRequest::post(path_for(envelope.op), base64::encode(&frame))
            .with_header(HOP_HEADER, Hop::UaToIa.as_str())
            .with_header(CONN_HEADER, conn.0.to_string()),
    )
}

/// What a proxy layer recovers from an incoming HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A client request, for the UA layer.
    FromClient {
        /// Decoded envelope.
        envelope: ClientEnvelope,
        /// Reverse-path connection id.
        conn: ConnId,
    },
    /// A UA-processed request, for the IA layer.
    FromUa {
        /// Decoded envelope.
        envelope: LayerEnvelope,
        /// Reverse-path connection id.
        conn: ConnId,
    },
}

/// Decodes an incoming HTTP request at a proxy layer.
///
/// # Errors
///
/// [`PProxError::MalformedMessage`] on missing/invalid PProx headers, an
/// unexpected path, or an undecodable frame.
pub fn decode_incoming(request: &HttpRequest) -> Result<Incoming, PProxError> {
    let op = match request.path.as_str() {
        EVENTS_PATH => Op::Post,
        QUERIES_PATH => Op::Get,
        _ => return Err(PProxError::MalformedMessage),
    };
    let hop = request
        .header(HOP_HEADER)
        .and_then(Hop::parse)
        .ok_or(PProxError::MalformedMessage)?;
    let conn = ConnId(
        request
            .header(CONN_HEADER)
            .and_then(|v| v.parse().ok())
            .ok_or(PProxError::MalformedMessage)?,
    );
    let frame = base64::decode(&request.body)?;
    match hop {
        Hop::ClientToUa => {
            let envelope = ClientEnvelope::from_frame(&frame)?;
            if envelope.op != op {
                return Err(PProxError::MalformedMessage);
            }
            Ok(Incoming::FromClient { envelope, conn })
        }
        Hop::UaToIa => {
            let envelope = LayerEnvelope::from_frame(&frame)?;
            if envelope.op != op {
                return Err(PProxError::MalformedMessage);
            }
            Ok(Incoming::FromUa { envelope, conn })
        }
    }
}

/// Wraps an encrypted response list as the HTTP response travelling the
/// reverse path (IA → UA → client).
///
/// # Errors
///
/// Framing errors if the blob exceeds the constant response frame.
pub fn response_for(list: &EncryptedList) -> Result<HttpResponse, PProxError> {
    Ok(HttpResponse::ok(base64::encode(&list.to_frame()?)))
}

/// Decodes a reverse-path HTTP response back into the encrypted list.
///
/// # Errors
///
/// [`PProxError::Lrs`] for non-success statuses; decoding errors for
/// malformed bodies.
pub fn decode_response(response: &HttpResponse) -> Result<EncryptedList, PProxError> {
    if !response.is_success() {
        return Err(PProxError::Lrs {
            status: response.status,
        });
    }
    let frame = base64::decode(&response.body)?;
    EncryptedList::from_frame(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_env() -> ClientEnvelope {
        ClientEnvelope {
            op: Op::Get,
            user: vec![1; 144],
            aux: vec![2; 144],
        }
    }

    #[test]
    fn client_request_roundtrip() {
        let env = client_env();
        let req = client_request(&env, ConnId(42)).unwrap();
        assert_eq!(req.path, QUERIES_PATH);
        match decode_incoming(&req).unwrap() {
            Incoming::FromClient { envelope, conn } => {
                assert_eq!(envelope, env);
                assert_eq!(conn, ConnId(42));
            }
            other => panic!("wrong hop: {other:?}"),
        }
    }

    #[test]
    fn layer_request_roundtrip() {
        let env = LayerEnvelope {
            op: Op::Post,
            user_pseudonym: vec![9; 32],
            aux: vec![7; 144],
        };
        let req = layer_request(&env, ConnId(7)).unwrap();
        assert_eq!(req.path, EVENTS_PATH);
        match decode_incoming(&req).unwrap() {
            Incoming::FromUa { envelope, conn } => {
                assert_eq!(envelope, env);
                assert_eq!(conn, ConnId(7));
            }
            other => panic!("wrong hop: {other:?}"),
        }
    }

    #[test]
    fn paths_match_the_lrs_api() {
        // Transparency: the proxied request uses the same REST paths the
        // LRS itself exposes.
        let post = ClientEnvelope {
            op: Op::Post,
            ..client_env()
        };
        assert_eq!(client_request(&post, ConnId(1)).unwrap().path, EVENTS_PATH);
        assert_eq!(
            client_request(&client_env(), ConnId(1)).unwrap().path,
            QUERIES_PATH
        );
    }

    #[test]
    fn missing_headers_rejected() {
        let env = client_env();
        let mut req = client_request(&env, ConnId(1)).unwrap();
        req.headers.clear();
        assert!(matches!(
            decode_incoming(&req),
            Err(PProxError::MalformedMessage)
        ));
    }

    #[test]
    fn unknown_path_rejected() {
        let env = client_env();
        let mut req = client_request(&env, ConnId(1)).unwrap();
        req.path = "/admin".to_owned();
        assert!(decode_incoming(&req).is_err());
    }

    #[test]
    fn op_path_mismatch_rejected() {
        // A get envelope riding on the events path is inconsistent.
        let env = client_env();
        let mut req = client_request(&env, ConnId(1)).unwrap();
        req.path = EVENTS_PATH.to_owned();
        assert!(decode_incoming(&req).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let list = EncryptedList(vec![0xab; 700]);
        let resp = response_for(&list).unwrap();
        assert!(resp.is_success());
        assert_eq!(decode_response(&resp).unwrap(), list);
    }

    #[test]
    fn error_response_propagates_status() {
        let resp = HttpResponse::error(503, "down");
        assert!(matches!(
            decode_response(&resp),
            Err(PProxError::Lrs { status: 503 })
        ));
    }

    #[test]
    fn corrupt_body_rejected() {
        let resp = HttpResponse::ok("!!!not-base64!!!");
        assert!(decode_response(&resp).is_err());
    }
}
