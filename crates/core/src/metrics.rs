//! Operational telemetry (the paper's fluentd/monitoring role, §7.2).
//!
//! The paper's deployment "collect\[s\] logs in a systematic fashion using
//! fluentd"; elastic scaling (§5) additionally needs live load
//! observations. [`LayerMetrics`] is the lock-free per-layer counter set
//! the proxy updates on its hot path, and [`MetricsRegistry`] aggregates
//! layers into the snapshot an operator (or the
//! [`crate::autoscale::Autoscaler`]) consumes.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free counters for one proxy layer instance.
#[derive(Debug, Default)]
pub struct LayerMetrics {
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
    /// Sum of per-request processing latency, microseconds.
    busy_us: AtomicU64,
    shuffle_flushes: AtomicU64,
    shuffle_timeouts: AtomicU64,
    retries: AtomicU64,
    deadline_misses: AtomicU64,
    rejected: AtomicU64,
}

impl LayerMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one processed request with its processing time.
    pub fn record_request(&self, processing_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.busy_us.fetch_add(processing_us, Ordering::Relaxed);
    }

    /// Records one forwarded response.
    pub fn record_response(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shuffle flush; `by_timer` marks under-filled batches.
    pub fn record_flush(&self, by_timer: bool) {
        self.shuffle_flushes.fetch_add(1, Ordering::Relaxed);
        if by_timer {
            self.shuffle_timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one retried LRS attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that exhausted its deadline budget.
    pub fn record_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by admission control or the circuit
    /// breaker.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests processed so far — a single atomic load, for callers
    /// (like [`MetricsRegistry::total_requests`]) that poll one counter
    /// on a tight loop and do not need the full nine-field snapshot.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy_us: self.busy_us.load(Ordering::Relaxed),
            shuffle_flushes: self.shuffle_flushes.load(Ordering::Relaxed),
            shuffle_timeouts: self.shuffle_timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counter values for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerSnapshot {
    /// Requests processed.
    pub requests: u64,
    /// Responses forwarded.
    pub responses: u64,
    /// Failures.
    pub errors: u64,
    /// Total processing time, microseconds.
    pub busy_us: u64,
    /// Shuffle flushes performed.
    pub shuffle_flushes: u64,
    /// Flushes forced by the timer (under-filled batches).
    pub shuffle_timeouts: u64,
    /// Retried LRS attempts.
    pub retries: u64,
    /// Requests that exhausted their deadline budget.
    pub deadline_misses: u64,
    /// Requests shed by admission control or the circuit breaker.
    pub rejected: u64,
}

impl LayerSnapshot {
    /// Mean processing latency in microseconds (0 when idle).
    pub fn mean_processing_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.busy_us as f64 / self.requests as f64
        }
    }

    /// Fraction of flushes that were timer-forced — the §5 health signal
    /// that shuffle buffers are starving.
    pub fn timeout_flush_fraction(&self) -> f64 {
        if self.shuffle_flushes == 0 {
            0.0
        } else {
            self.shuffle_timeouts as f64 / self.shuffle_flushes as f64
        }
    }
}

/// A registered layer: its name and shared counter handle.
type LayerEntry = (String, Arc<LayerMetrics>);

/// Registry of named layer metrics plus a load estimator.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    layers: Arc<Mutex<Vec<LayerEntry>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a layer instance, returning its counter handle.
    ///
    /// Layer names must be unique — a duplicate would make
    /// [`snapshot`](Self::snapshot) ambiguous and let one instance's
    /// counters shadow another's in downstream exports. Rather than
    /// silently accepting the collision, a duplicate name is auto-suffixed
    /// (`"ua-0"`, `"ua-0#2"`, `"ua-0#3"`, …); check the snapshot if the
    /// effective name matters.
    pub fn register(&self, name: impl Into<String>) -> Arc<LayerMetrics> {
        let base = name.into();
        let metrics = Arc::new(LayerMetrics::new());
        let mut layers = self.layers.lock();
        let unique = if layers.iter().any(|(n, _)| *n == base) {
            let mut k = 2;
            while layers.iter().any(|(n, _)| *n == format!("{base}#{k}")) {
                k += 1;
            }
            format!("{base}#{k}")
        } else {
            base
        };
        layers.push((unique, metrics.clone()));
        metrics
    }

    /// Snapshot of all layers, in registration order.
    pub fn snapshot(&self) -> Vec<(String, LayerSnapshot)> {
        self.layers
            .lock()
            .iter()
            .map(|(name, m)| (name.clone(), m.snapshot()))
            .collect()
    }

    /// Total requests across all layers (feed for the autoscaler: divide
    /// by the observation window to get RPS).
    pub fn total_requests(&self) -> u64 {
        // One atomic load per layer; the nine-field snapshot() here would
        // cost 9x the loads just to discard eight of them.
        self.layers.lock().iter().map(|(_, m)| m.requests()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = LayerMetrics::new();
        m.record_request(100);
        m.record_request(300);
        m.record_response();
        m.record_error();
        m.record_flush(false);
        m.record_flush(true);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.responses, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.mean_processing_us(), 200.0);
        assert_eq!(s.timeout_flush_fraction(), 0.5);
    }

    #[test]
    fn resilience_counters_accumulate() {
        let m = LayerMetrics::new();
        m.record_retry();
        m.record_retry();
        m.record_deadline_miss();
        m.record_rejected();
        let s = m.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn idle_snapshot_is_zero() {
        let s = LayerMetrics::new().snapshot();
        assert_eq!(s.mean_processing_us(), 0.0);
        assert_eq!(s.timeout_flush_fraction(), 0.0);
    }

    #[test]
    fn registry_aggregates_layers() {
        let registry = MetricsRegistry::new();
        let ua = registry.register("ua-0");
        let ia = registry.register("ia-0");
        ua.record_request(10);
        ua.record_request(10);
        ia.record_request(10);
        assert_eq!(registry.total_requests(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "ua-0");
        assert_eq!(snap[0].1.requests, 2);
    }

    #[test]
    fn duplicate_layer_names_are_auto_suffixed() {
        let registry = MetricsRegistry::new();
        let a = registry.register("ua-0");
        let b = registry.register("ua-0");
        let c = registry.register("ua-0");
        a.record_request(1);
        b.record_request(1);
        b.record_request(1);
        c.record_request(1);
        let names: Vec<String> = registry.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["ua-0", "ua-0#2", "ua-0#3"]);
        // Distinct handles: nobody shadows anybody.
        let snap = registry.snapshot();
        assert_eq!(snap[0].1.requests, 1);
        assert_eq!(snap[1].1.requests, 2);
        assert_eq!(snap[2].1.requests, 1);
        assert_eq!(registry.total_requests(), 4);
    }

    #[test]
    fn direct_requests_load_matches_snapshot() {
        let m = LayerMetrics::new();
        for i in 0..7 {
            m.record_request(i);
        }
        assert_eq!(m.requests(), 7);
        assert_eq!(m.requests(), m.snapshot().requests);
    }

    #[test]
    fn timeout_flush_fraction_is_exact_under_concurrent_flushes() {
        // Four threads race timer-forced and count-forced flushes; the
        // relaxed counters must not lose any, so the fraction comes out
        // exactly at the mix ratio once every thread joins.
        let m = Arc::new(LayerMetrics::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = m.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    // Threads 0,1 flush by timer on even i; 2,3 on i % 4.
                    let by_timer = if t < 2 { i % 2 == 0 } else { i % 4 == 0 };
                    h.record_flush(by_timer);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.shuffle_flushes, 4000);
        // 2 threads * 500 + 2 threads * 250 timer flushes.
        assert_eq!(s.shuffle_timeouts, 1500);
        assert!((s.timeout_flush_fraction() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let registry = MetricsRegistry::new();
        let handle = registry.register("ua-0");
        let mut joins = Vec::new();
        for _ in 0..4 {
            let h = handle.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    h.record_request(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(registry.total_requests(), 4000);
    }
}
