//! Cryptographic material of the two proxy layers and its provisioning.
//!
//! §4.1: the UA layer holds private key `skUA` and permanent symmetric key
//! `kUA`; the IA layer holds `skIA` and `kIA`. The RaaS *client
//! application* — not the RaaS provider — generates these keys, attests
//! each enclave, and provisions the layer secrets, so the provider never
//! sees them. [`KeyProvisioner`] implements that client-side role against
//! the simulated SGX platform.

use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use pprox_sgx::enclave::{EnclaveApp, SecretBag};
use pprox_sgx::{Enclave, Measurement, Platform};

use crate::ia::IaState;
use crate::ua::UaState;
use crate::PProxError;

/// Code identity of UA enclaves (determines their measurement).
pub const UA_CODE_IDENTITY: &str = "pprox-ua-layer-v1";

/// Code identity of IA enclaves.
pub const IA_CODE_IDENTITY: &str = "pprox-ia-layer-v1";

/// Secrets of one proxy layer: the asymmetric decryption key and the
/// deterministic pseudonymization key.
#[derive(Clone)]
pub struct LayerSecrets {
    /// Private half of the layer's key pair (`skUA` / `skIA`).
    pub sk: RsaPrivateKey,
    /// Permanent symmetric key (`kUA` / `kIA`).
    pub k: SymmetricKey,
}

impl std::fmt::Debug for LayerSecrets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LayerSecrets(redacted)")
    }
}

impl LayerSecrets {
    /// Generates a fresh layer key set.
    pub fn generate(modulus_bits: usize, rng: &mut SecureRng) -> (Self, RsaPublicKey) {
        let pair = RsaKeyPair::generate(modulus_bits, rng);
        let k = SymmetricKey::generate(rng);
        (
            LayerSecrets {
                sk: pair.private,
                k,
            },
            pair.public,
        )
    }

    /// Builds the cipher state the hot path needs — the deterministic
    /// keystream prefix of `k` — so a freshly provisioned enclave serves
    /// its first request at steady-state cost. Layer states call this in
    /// their constructors; the RSA Montgomery contexts are already cached
    /// inside `sk` at key generation.
    pub fn warm(&self) {
        self.k.warm();
    }

    /// Secrets as an adversary would extract them from a broken enclave.
    pub fn leak_into(&self, bag: &mut SecretBag, prefix: &str) {
        // The private exponent is not serialized; leaking the symmetric key
        // plus a marker for the private key captures the §6.1 case analysis
        // (what matters is *which* layer's keys the adversary holds).
        bag.insert(format!("{prefix}.k"), self.k.as_bytes().to_vec());
        bag.insert(
            format!("{prefix}.sk.fingerprint"),
            self.sk.public_key().fingerprint().to_vec(),
        );
    }
}

/// Public keys the user-side library embeds (globally known information —
/// §3's "ease of deployment" requirement: no per-user secrets).
#[derive(Debug, Clone)]
pub struct ClientKeys {
    /// UA layer public key (`pkUA`).
    pub pk_ua: RsaPublicKey,
    /// IA layer public key (`pkIA`).
    pub pk_ia: RsaPublicKey,
}

/// The RaaS client application's provisioning role: generates layer keys,
/// attests enclaves, installs secrets.
pub struct KeyProvisioner {
    ua_secrets: LayerSecrets,
    ia_secrets: LayerSecrets,
    client_keys: ClientKeys,
}

impl std::fmt::Debug for KeyProvisioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeyProvisioner(holds layer secrets)")
    }
}

impl KeyProvisioner {
    /// Generates fresh secrets for both layers.
    ///
    /// `modulus_bits` of 2048 matches the paper; tests use 768 for speed.
    pub fn generate(modulus_bits: usize, rng: &mut SecureRng) -> Self {
        let (ua_secrets, pk_ua) = LayerSecrets::generate(modulus_bits, rng);
        let (ia_secrets, pk_ia) = LayerSecrets::generate(modulus_bits, rng);
        KeyProvisioner {
            ua_secrets,
            ia_secrets,
            client_keys: ClientKeys { pk_ua, pk_ia },
        }
    }

    /// Public keys for embedding in the user-side library.
    pub fn client_keys(&self) -> ClientKeys {
        self.client_keys.clone()
    }

    /// Attests a freshly loaded UA enclave and provisions `skUA`/`kUA`.
    ///
    /// # Errors
    ///
    /// Fails when attestation rejects the quote (wrong code measurement —
    /// e.g. an enclave loaded from tampered code) or the enclave was
    /// already provisioned.
    pub fn provision_ua(
        &self,
        platform: &Platform,
        enclave: &Enclave<UaState>,
    ) -> Result<(), PProxError> {
        let quote = enclave.quote(self.client_keys.pk_ua.fingerprint().to_vec());
        let token = platform
            .attestation()
            .verify(&quote, Measurement::of_code(UA_CODE_IDENTITY))?;
        enclave.provision(token, UaState::new(self.ua_secrets.clone()))?;
        Ok(())
    }

    /// Attests a freshly loaded IA enclave and provisions `skIA`/`kIA`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`provision_ua`](Self::provision_ua).
    pub fn provision_ia(
        &self,
        platform: &Platform,
        enclave: &Enclave<IaState>,
    ) -> Result<(), PProxError> {
        let quote = enclave.quote(self.client_keys.pk_ia.fingerprint().to_vec());
        let token = platform
            .attestation()
            .verify(&quote, Measurement::of_code(IA_CODE_IDENTITY))?;
        enclave.provision(token, IaState::new(self.ia_secrets.clone()))?;
        Ok(())
    }
}

/// Convenience trait implementation so layer states can report what an
/// enclave breach leaks.
impl EnclaveApp for UaState {
    fn leak_secrets(&self) -> SecretBag {
        let mut bag = SecretBag::new();
        self.secrets().leak_into(&mut bag, "ua");
        bag
    }
}

impl EnclaveApp for IaState {
    fn leak_secrets(&self) -> SecretBag {
        let mut bag = SecretBag::new();
        self.secrets().leak_into(&mut bag, "ia");
        // Pending per-request response keys are in enclave memory too.
        for (token, key) in self.pending_keys() {
            bag.insert(format!("ia.k_u.{token}"), key);
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_distinct_layer_keys() {
        let mut rng = SecureRng::from_seed(1);
        let prov = KeyProvisioner::generate(768, &mut rng);
        let keys = prov.client_keys();
        assert_ne!(keys.pk_ua.fingerprint(), keys.pk_ia.fingerprint());
    }

    #[test]
    fn provisioning_happy_path() {
        let mut rng = SecureRng::from_seed(2);
        let prov = KeyProvisioner::generate(768, &mut rng);
        let platform = Platform::new(&mut rng);
        let ua = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
        let ia = platform.load_enclave::<IaState>(IA_CODE_IDENTITY);
        prov.provision_ua(&platform, &ua).unwrap();
        prov.provision_ia(&platform, &ia).unwrap();
        assert!(ua.call(|_| ()).is_ok());
        assert!(ia.call(|_| ()).is_ok());
    }

    #[test]
    fn wrong_code_identity_fails_attestation() {
        let mut rng = SecureRng::from_seed(3);
        let prov = KeyProvisioner::generate(768, &mut rng);
        let platform = Platform::new(&mut rng);
        // An enclave loaded from *tampered* code has the wrong measurement.
        let evil = platform.load_enclave::<UaState>("pprox-ua-layer-evil");
        let err = prov.provision_ua(&platform, &evil).unwrap_err();
        assert!(matches!(err, PProxError::Attestation(_)), "{err:?}");
    }

    #[test]
    fn double_provisioning_fails() {
        let mut rng = SecureRng::from_seed(4);
        let prov = KeyProvisioner::generate(768, &mut rng);
        let platform = Platform::new(&mut rng);
        let ua = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
        prov.provision_ua(&platform, &ua).unwrap();
        assert!(prov.provision_ua(&platform, &ua).is_err());
    }

    #[test]
    fn debug_output_redacts_secrets() {
        let mut rng = SecureRng::from_seed(5);
        let prov = KeyProvisioner::generate(768, &mut rng);
        assert_eq!(format!("{prov:?}"), "KeyProvisioner(holds layer secrets)");
        let (secrets, _) = LayerSecrets::generate(768, &mut rng);
        assert_eq!(format!("{secrets:?}"), "LayerSecrets(redacted)");
    }

    #[test]
    fn broken_ua_enclave_leaks_only_ua_keys() {
        let mut rng = SecureRng::from_seed(6);
        let prov = KeyProvisioner::generate(768, &mut rng);
        let platform = Platform::new(&mut rng);
        let ua = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
        prov.provision_ua(&platform, &ua).unwrap();
        let bag = platform.break_enclave(ua.id()).unwrap();
        assert!(bag.get("ua.k").is_some());
        assert!(bag.get("ia.k").is_none(), "UA breach must not leak IA keys");
    }
}
