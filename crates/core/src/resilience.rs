//! Fault-tolerance building blocks for the live pipeline.
//!
//! The paper's RaaS setting puts PProx on the critical path of somebody
//! else's product: a hung or failing LRS, a crashed enclave, or a traffic
//! spike must degrade the proxy into *fast, typed errors* — never hangs,
//! never unbounded queues, never silent corruption. This module provides
//! the mechanisms; [`crate::pipeline`] wires them around each stage:
//!
//! * [`Deadline`] — every request carries an end-to-end time budget;
//!   every stage checks it and each LRS attempt is clamped to what is
//!   left of it.
//! * [`RetryBackoff`] — decorrelated-jitter backoff between retries of
//!   retryable LRS failures (5xx and timeouts), capped so the retry
//!   schedule always fits the remaining deadline.
//! * [`CircuitBreaker`] — a closed → open → half-open breaker per LRS
//!   dependency: after a run of failures the proxy stops hammering the
//!   backend and sheds load with [`crate::PProxError::Unavailable`],
//!   probing recovery with a bounded number of half-open requests.
//! * [`AdmissionGate`] — bounded ingress: beyond a configured number of
//!   in-flight requests, submissions are rejected immediately with
//!   [`crate::PProxError::Overloaded`] instead of growing queues without
//!   bound (and without ever blocking the caller).
//! * [`TimeoutPool`] — runs blocking calls (the synchronous
//!   [`pprox_lrs::api::RestHandler`] interface) under a timeout by
//!   executing them on supervised threads; a worker stuck in a hung call
//!   is abandoned and replaced, so one pathological backend call cannot
//!   poison the pool.
//!
//! Everything here is deterministic given its seeds and independent of
//! the PProx message formats, so each mechanism is unit-tested in
//! isolation below.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for the pipeline's resilience layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// End-to-end budget for one request, measured from admission. When
    /// it expires the request resolves with [`crate::PProxError::Deadline`].
    pub deadline: Duration,
    /// Per-attempt timeout for one LRS call (clamped to the remaining
    /// deadline).
    pub lrs_timeout: Duration,
    /// Retries after the first LRS attempt (so `max_retries + 1` attempts
    /// total), spent only on retryable failures: 5xx statuses and
    /// timeouts.
    pub max_retries: u32,
    /// Minimum backoff before a retry (decorrelated jitter's floor).
    pub retry_base: Duration,
    /// Maximum backoff before a retry (decorrelated jitter's cap).
    pub retry_cap: Duration,
    /// Consecutive LRS failures that trip the circuit breaker open.
    pub breaker_failure_threshold: u32,
    /// How long an open breaker sheds load before allowing half-open
    /// probes.
    pub breaker_open_for: Duration,
    /// Concurrent probe requests allowed while half-open; all of them
    /// must succeed to close the breaker again.
    pub breaker_half_open_probes: u32,
    /// Maximum requests admitted and not yet completed. Submissions
    /// beyond this are rejected with [`crate::PProxError::Overloaded`].
    pub max_inflight: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            deadline: Duration::from_secs(2),
            lrs_timeout: Duration::from_millis(500),
            max_retries: 2,
            retry_base: Duration::from_millis(10),
            retry_cap: Duration::from_millis(200),
            breaker_failure_threshold: 5,
            breaker_open_for: Duration::from_millis(250),
            breaker_half_open_probes: 3,
            max_inflight: 1024,
        }
    }
}

/// An absolute per-request deadline.
///
/// Copied into every stage's job so each hop can fail fast once the
/// budget is gone instead of doing work nobody is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires_at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn starting_now(budget: Duration) -> Self {
        Deadline {
            expires_at: Instant::now() + budget,
        }
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.expires_at
    }

    /// Time left, or `None` when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at.checked_duration_since(Instant::now())
    }

    /// `d` clamped to the remaining budget (zero when expired).
    pub fn clamp(&self, d: Duration) -> Duration {
        d.min(self.remaining().unwrap_or(Duration::ZERO))
    }
}

/// Decorrelated-jitter retry backoff (`sleep = min(cap, uniform(base,
/// prev * 3))`), the schedule that de-synchronizes retry storms while
/// still growing toward the cap.
#[derive(Debug, Clone)]
pub struct RetryBackoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl RetryBackoff {
    /// A backoff generator for one request. `seed` decorrelates requests
    /// from each other.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        RetryBackoff {
            base,
            cap,
            prev: base,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, plenty for jitter.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// The next sleep before retrying.
    pub fn next_delay(&mut self) -> Duration {
        let ceiling = (self.prev * 3).min(self.cap).max(self.base);
        let span = ceiling.saturating_sub(self.base);
        let jitter_ns = if span.is_zero() {
            0
        } else {
            self.next_u64() % span.as_nanos().max(1) as u64
        };
        let delay = (self.base + Duration::from_nanos(jitter_ns)).min(self.cap);
        self.prev = delay;
        delay
    }
}

/// Circuit-breaker states, reported by [`CircuitBreaker::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Shedding load: calls are rejected without reaching the dependency.
    Open,
    /// Probing recovery with a bounded number of trial calls.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    probes_inflight: u32,
    probe_successes: u32,
}

/// A per-dependency circuit breaker (closed → open → half-open).
///
/// Thread-safe; the pipeline shares one breaker across all IA workers so
/// they observe the backend's health collectively.
#[derive(Debug)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    open_for: Duration,
    half_open_probes: u32,
    inner: Mutex<BreakerInner>,
    rejected: AtomicU64,
    times_opened: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(failure_threshold: u32, open_for: Duration, half_open_probes: u32) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            open_for,
            half_open_probes: half_open_probes.max(1),
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
                probes_inflight: 0,
                probe_successes: 0,
            }),
            rejected: AtomicU64::new(0),
            times_opened: AtomicU64::new(0),
        }
    }

    /// Breaker configured from the pipeline's [`ResilienceConfig`].
    pub fn from_config(config: &ResilienceConfig) -> Self {
        CircuitBreaker::new(
            config.breaker_failure_threshold,
            config.breaker_open_for,
            config.breaker_half_open_probes,
        )
    }

    /// Asks permission for one call to the protected dependency. `false`
    /// means the caller must shed the request (it never reaches the
    /// dependency); a `true` must be paired with exactly one
    /// [`record_success`](Self::record_success) or
    /// [`record_failure`](Self::record_failure).
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.opened_at.elapsed() >= self.open_for {
                    inner.state = BreakerState::HalfOpen;
                    inner.probes_inflight = 1;
                    inner.probe_successes = 0;
                    true
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probes_inflight < self.half_open_probes {
                    inner.probes_inflight += 1;
                    true
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Reports a successful call.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
                inner.probe_successes += 1;
                if inner.probe_successes >= self.half_open_probes {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                }
            }
            // A success finishing after the breaker re-opened: stale info.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed call (error status, timeout…).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Instant::now();
                    self.times_opened.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                // One failed probe re-opens: the dependency is still sick.
                inner.state = BreakerState::Open;
                inner.opened_at = Instant::now();
                inner.probes_inflight = 0;
                self.times_opened.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (transitions lazily on [`try_acquire`](Self::try_acquire)).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Calls rejected while open / probe-saturated.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// How many times the breaker has tripped open.
    pub fn times_opened(&self) -> u64 {
        self.times_opened.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct GateShared {
    inflight: AtomicUsize,
    limit: usize,
    rejected: AtomicU64,
    admitted: AtomicU64,
}

/// Bounded-ingress admission control.
///
/// [`try_admit`](AdmissionGate::try_admit) never blocks: it either hands
/// out an RAII [`AdmissionPermit`] or reports the gate full. The permit
/// travels with the request through every stage and releases its slot on
/// drop — whether the request completed, errored, or was abandoned.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    shared: Arc<GateShared>,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent requests.
    pub fn new(limit: usize) -> Self {
        AdmissionGate {
            shared: Arc::new(GateShared {
                inflight: AtomicUsize::new(0),
                limit: limit.max(1),
                rejected: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
            }),
        }
    }

    /// Tries to admit one request without blocking.
    pub fn try_admit(&self) -> Option<AdmissionPermit> {
        let prev = self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.shared.limit {
            self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        Some(AdmissionPermit {
            shared: self.shared.clone(),
        })
    }

    /// Requests currently admitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// The admission limit.
    pub fn limit(&self) -> usize {
        self.shared.limit
    }

    /// Requests rejected at the gate so far.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.shared.admitted.load(Ordering::Relaxed)
    }

    /// Fraction of submissions rejected — the overload-pressure signal
    /// fed to the autoscaler (see
    /// [`crate::autoscale::Autoscaler::observe_with_pressure`]).
    pub fn rejection_fraction(&self) -> f64 {
        let rejected = self.rejected() as f64;
        let total = rejected + self.admitted() as f64;
        if total == 0.0 {
            0.0
        } else {
            rejected / total
        }
    }
}

/// RAII in-flight slot handed out by [`AdmissionGate::try_admit`].
#[derive(Debug)]
pub struct AdmissionPermit {
    shared: Arc<GateShared>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

type PoolTask = Box<dyn FnOnce() + Send>;

/// Error from [`TimeoutPool::call`]: the routine outlived its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallTimedOut;

impl std::fmt::Display for CallTimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("blocking call exceeded its timeout")
    }
}

impl std::error::Error for CallTimedOut {}

/// Executes blocking closures under a timeout on a self-healing pool.
///
/// The [`pprox_lrs::api::RestHandler`] interface is synchronous and
/// cannot be cancelled, so a hung backend call would wedge whichever
/// thread performs it. The pool absorbs that: the caller waits on a
/// completion channel with a timeout, and when the timeout fires the
/// stuck worker is *abandoned* (it keeps blocking harmlessly; its late
/// result is discarded) and a replacement worker is spawned so pool
/// capacity is preserved. Side effects of a timed-out call may still
/// happen later — the usual contract of timing out a non-cancellable
/// operation.
pub struct TimeoutPool {
    task_tx: Sender<PoolTask>,
    task_rx: Receiver<PoolTask>,
    replacements: AtomicU64,
    attempt_histogram: Option<Arc<crate::telemetry::LatencyHistogram>>,
}

impl std::fmt::Debug for TimeoutPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeoutPool")
            .field("replacements", &self.replacements.load(Ordering::Relaxed))
            .finish()
    }
}

impl TimeoutPool {
    /// A pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "TimeoutPool needs at least one worker");
        let (task_tx, task_rx) = unbounded::<PoolTask>();
        let pool = TimeoutPool {
            task_tx,
            task_rx,
            replacements: AtomicU64::new(0),
            attempt_histogram: None,
        };
        for _ in 0..workers {
            pool.spawn_worker();
        }
        pool
    }

    /// Attaches a latency histogram recording the wall-clock duration of
    /// every `call` — including timed-out attempts, which record the full
    /// timeout they burned. In the pipeline this is the `lrs_attempt`
    /// telemetry stage (per-attempt view; the `lrs` stage covers the whole
    /// resilient call with retries).
    pub fn set_attempt_histogram(&mut self, histogram: Arc<crate::telemetry::LatencyHistogram>) {
        self.attempt_histogram = Some(histogram);
    }

    fn spawn_worker(&self) {
        let rx = self.task_rx.clone();
        // Detached on purpose: a worker stuck in a hung call must not be
        // joined at shutdown (that would transfer the hang to the caller).
        // Healthy workers exit when the task channel disconnects on drop.
        std::thread::spawn(move || {
            while let Ok(task) = rx.recv() {
                task();
            }
        });
    }

    /// Runs `f` on the pool, waiting at most `timeout` for its result.
    ///
    /// # Errors
    ///
    /// [`CallTimedOut`] when the result did not arrive in time; the
    /// occupied worker is replaced.
    pub fn call<T: Send + 'static>(
        &self,
        timeout: Duration,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Result<T, CallTimedOut> {
        let (done_tx, done_rx) = bounded::<T>(1);
        let task: PoolTask = Box::new(move || {
            let out = f();
            let _ = done_tx.send(out); // receiver may have given up
        });
        if self.task_tx.send(task).is_err() {
            return Err(CallTimedOut);
        }
        let started = Instant::now();
        let outcome = match done_rx.recv_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                self.replacements.fetch_add(1, Ordering::Relaxed);
                self.spawn_worker();
                Err(CallTimedOut)
            }
        };
        if let Some(h) = &self.attempt_histogram {
            h.record(started.elapsed().as_micros() as u64);
        }
        outcome
    }

    /// Workers spawned to replace abandoned ones.
    pub fn replacements(&self) -> u64 {
        self.replacements.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn deadline_budget_counts_down() {
        let d = Deadline::starting_now(Duration::from_millis(80));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() <= Duration::from_millis(80));
        // Clamping a larger duration yields whatever remains of the budget.
        let clamped = d.clamp(Duration::from_millis(500));
        assert!(clamped > Duration::ZERO && clamped <= Duration::from_millis(80));
        assert_eq!(d.clamp(Duration::ZERO), Duration::ZERO);
        std::thread::sleep(Duration::from_millis(100));
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.clamp(Duration::from_millis(10)), Duration::ZERO);
    }

    #[test]
    fn backoff_stays_in_bounds_and_grows() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = RetryBackoff::new(base, cap, 42);
        let mut prev_ceiling = base;
        for _ in 0..50 {
            let d = b.next_delay();
            assert!(d >= base, "{d:?} below base");
            assert!(d <= cap, "{d:?} above cap");
            // Each delay is bounded by 3× the previous delay (decorrelated
            // jitter's defining recurrence).
            assert!(d <= (prev_ceiling * 3).min(cap).max(base));
            prev_ceiling = d;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut b =
                RetryBackoff::new(Duration::from_millis(5), Duration::from_millis(100), seed);
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let b = CircuitBreaker::new(3, Duration::from_millis(30), 2);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
        // While open: shed.
        assert!(!b.try_acquire());
        assert_eq!(b.rejected(), 1);
        // After the open window: half-open probes, bounded concurrency.
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "probe concurrency is bounded");
        // Both probes succeed → closed again.
        b.record_success();
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
        b.record_success();
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20), 1);
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire()); // half-open probe
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
        assert!(!b.try_acquire());
    }

    #[test]
    fn closed_breaker_resets_failure_run_on_success() {
        let b = CircuitBreaker::new(3, Duration::from_millis(10), 1);
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert!(b.try_acquire());
        b.record_success(); // breaks the run
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed, "run restarted from 0");
    }

    #[test]
    fn admission_gate_bounds_inflight_without_blocking() {
        let gate = AdmissionGate::new(2);
        let p1 = gate.try_admit().unwrap();
        let p2 = gate.try_admit().unwrap();
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_admit().is_none(), "third request sheds");
        assert_eq!(gate.rejected(), 1);
        drop(p1);
        assert_eq!(gate.in_flight(), 1);
        let p3 = gate.try_admit().unwrap();
        drop(p2);
        drop(p3);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), 3);
        assert!((gate.rejection_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn admission_gate_is_thread_safe() {
        let gate = AdmissionGate::new(8);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = gate.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Some(p) = g.try_admit() {
                        std::hint::black_box(&p);
                        drop(p);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.in_flight() <= gate.limit());
    }

    #[test]
    fn timeout_pool_runs_and_returns() {
        let pool = TimeoutPool::new(2);
        let out = pool.call(Duration::from_secs(1), || 21 * 2).unwrap();
        assert_eq!(out, 42);
        assert_eq!(pool.replacements(), 0);
    }

    #[test]
    fn timeout_pool_abandons_hung_worker_and_recovers() {
        let pool = TimeoutPool::new(1);
        let release = Arc::new(AtomicBool::new(false));
        let r = release.clone();
        // A call that blocks until released — far past the timeout.
        let res = pool.call(Duration::from_millis(40), move || {
            while !r.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(5));
            }
            0u8
        });
        assert_eq!(res, Err(CallTimedOut));
        assert_eq!(pool.replacements(), 1);
        // The replacement worker keeps the pool serving even though the
        // original worker is still blocked.
        let out = pool.call(Duration::from_secs(1), || 7u8).unwrap();
        assert_eq!(out, 7);
        release.store(true, Ordering::Release); // unhang the stuck thread
    }

    #[test]
    fn timeout_pool_queues_beyond_worker_count() {
        let pool = TimeoutPool::new(2);
        let results: Vec<u32> = (0..16)
            .map(|i| pool.call(Duration::from_secs(2), move || i * i).unwrap())
            .collect();
        assert_eq!(results[15], 225);
    }

    #[test]
    fn config_default_is_sane() {
        let c = ResilienceConfig::default();
        assert!(c.lrs_timeout < c.deadline);
        assert!(c.retry_base <= c.retry_cap);
        assert!(c.retry_cap < c.deadline);
        assert!(c.max_inflight >= 1);
        let b = CircuitBreaker::from_config(&c);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
