//! Deployment configurations, including the paper's Table 2 (m1–m9).
//!
//! Table 2 defines nine micro-benchmark configurations that switch the
//! security features on one by one (encryption, SGX, shuffling, item
//! pseudonymization) and then scale the proxy horizontally. The same
//! structures parameterize the live deployment ([`crate::proxy`]) and the
//! simulated cluster (`pprox-bench` figure harnesses).

use crate::resilience::ResilienceConfig;
use crate::shuffler::ShuffleConfig;
use crate::telemetry::TelemetryConfig;

/// Parameters of a PProx deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct PProxConfig {
    /// Whether requests/responses are encrypted ("Enc." column; m1 off).
    pub encryption: bool,
    /// Whether item ids are pseudonymized toward the LRS (★ in Table 2:
    /// m4 disables it; see §6.3).
    pub item_pseudonymization: bool,
    /// Whether layer logic runs inside (simulated) SGX enclaves — a cost
    /// knob for the simulator; the live deployment always uses the
    /// simulated enclaves.
    pub sgx: bool,
    /// Shuffle buffer parameters ("S" column).
    pub shuffle: ShuffleConfig,
    /// UA-layer instances.
    pub ua_instances: usize,
    /// IA-layer instances.
    pub ia_instances: usize,
    /// RSA modulus size for layer keys (2048 in the paper; tests shrink
    /// it for speed).
    pub modulus_bits: usize,
    /// Fault-tolerance knobs: deadlines, retries, circuit breaking and
    /// admission control (see [`crate::resilience`]).
    pub resilience: ResilienceConfig,
    /// Observability knobs: span-ring retention and the trace-ID policy
    /// at shuffle boundaries (see [`crate::telemetry`]).
    pub telemetry: TelemetryConfig,
}

impl Default for PProxConfig {
    fn default() -> Self {
        PProxConfig {
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle: ShuffleConfig::paper_default(),
            ua_instances: 1,
            ia_instances: 1,
            modulus_bits: pprox_crypto::rsa::DEFAULT_MODULUS_BITS,
            resilience: ResilienceConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl PProxConfig {
    /// A functional-testing configuration: all features on, shuffling off
    /// (synchronous round trips), small keys.
    pub fn for_tests() -> Self {
        PProxConfig {
            shuffle: ShuffleConfig::disabled(),
            modulus_bits: 1152,
            ..PProxConfig::default()
        }
    }

    /// One of the paper's Table 2 micro-benchmark configurations
    /// (`step` in `1..=9` for m1–m9).
    ///
    /// # Panics
    ///
    /// Panics when `step` is outside `1..=9`.
    pub fn micro(step: usize) -> Self {
        assert!((1..=9).contains(&step), "Table 2 defines m1..m9");
        let m = &micro_configs()[step - 1];
        PProxConfig {
            encryption: m.encryption,
            item_pseudonymization: m.item_pseudonymization,
            sgx: m.sgx,
            shuffle: match m.shuffle_size {
                Some(s) => ShuffleConfig {
                    size: s,
                    timeout_us: 500_000,
                },
                None => ShuffleConfig::disabled(),
            },
            ua_instances: m.ua,
            ia_instances: m.ia,
            modulus_bits: pprox_crypto::rsa::DEFAULT_MODULUS_BITS,
            resilience: ResilienceConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroConfig {
    /// Configuration id ("m1".."m9").
    pub name: &'static str,
    /// "Enc." column.
    pub encryption: bool,
    /// ★ in the Enc. column = item pseudonymization disabled (m4).
    pub item_pseudonymization: bool,
    /// "SGX" column.
    pub sgx: bool,
    /// "S" column (`None` = shuffling off).
    pub shuffle_size: Option<usize>,
    /// "UA" column: instances in the UA layer.
    pub ua: usize,
    /// "IA" column: instances in the IA layer.
    pub ia: usize,
    /// "RPS" column: maximal supported requests per second.
    pub max_rps: u32,
}

/// The nine rows of Table 2.
pub fn micro_configs() -> [MicroConfig; 9] {
    [
        MicroConfig {
            name: "m1",
            encryption: false,
            item_pseudonymization: false,
            sgx: false,
            shuffle_size: None,
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m2",
            encryption: true,
            item_pseudonymization: true,
            sgx: false,
            shuffle_size: None,
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m3",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: None,
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m4",
            encryption: true,
            item_pseudonymization: false,
            sgx: true,
            shuffle_size: None,
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m5",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: Some(5),
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m6",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: Some(10),
            ua: 1,
            ia: 1,
            max_rps: 250,
        },
        MicroConfig {
            name: "m7",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: Some(10),
            ua: 2,
            ia: 2,
            max_rps: 500,
        },
        MicroConfig {
            name: "m8",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: Some(10),
            ua: 3,
            ia: 3,
            max_rps: 750,
        },
        MicroConfig {
            name: "m9",
            encryption: true,
            item_pseudonymization: true,
            sgx: true,
            shuffle_size: Some(10),
            ua: 4,
            ia: 4,
            max_rps: 1000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_expected_shape() {
        let configs = micro_configs();
        assert_eq!(configs.len(), 9);
        // m1: nothing enabled.
        assert!(!configs[0].encryption && !configs[0].sgx);
        // m4 is the ★ row: encrypted but item pseudonymization off.
        assert!(configs[3].encryption && !configs[3].item_pseudonymization);
        // m6–m9 scale 1..4 instances at +250 RPS each.
        for (i, cfg) in configs[5..].iter().enumerate() {
            assert_eq!(cfg.ua, i + 1);
            assert_eq!(cfg.ia, i + 1);
            assert_eq!(cfg.max_rps, 250 * (i as u32 + 1));
            assert_eq!(cfg.shuffle_size, Some(10));
        }
    }

    #[test]
    fn micro_constructor_matches_table() {
        let m5 = PProxConfig::micro(5);
        assert_eq!(m5.shuffle.size, 5);
        assert!(m5.encryption && m5.sgx);
        let m1 = PProxConfig::micro(1);
        assert!(!m1.encryption);
        assert!(m1.shuffle.is_disabled());
        let m9 = PProxConfig::micro(9);
        assert_eq!(m9.ua_instances, 4);
    }

    #[test]
    #[should_panic(expected = "m1..m9")]
    fn out_of_range_micro_panics() {
        let _ = PProxConfig::micro(10);
    }

    #[test]
    fn test_config_is_cheap() {
        let c = PProxConfig::for_tests();
        assert_eq!(c.modulus_bits, 1152);
        assert!(c.shuffle.is_disabled());
        assert!(c.encryption);
    }
}
