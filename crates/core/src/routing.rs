//! Routing table T (§4.2, §5).
//!
//! "Each layer maintains a table T storing the association between an
//! inbound socket I … and an outbound socket O … When the epoll() call
//! raises an event for a file descriptor f, the server thread can lookup
//! T to establish the corresponding return path." In this in-process
//! reproduction the sockets are logical connection ids; the table plays
//! the same role on the response path of the pipelined deployment.

use std::collections::HashMap;

/// A logical connection/request id (the file-descriptor analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// The routing table: outbound id → inbound return path.
#[derive(Debug, Default)]
pub struct RoutingTable<P> {
    entries: HashMap<ConnId, P>,
    next_id: u64,
    max_size: usize,
}

impl<P> RoutingTable<P> {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable {
            entries: HashMap::new(),
            next_id: 1,
            max_size: 0,
        }
    }

    /// Registers a pending request, returning the fresh outbound id under
    /// which the response will arrive.
    pub fn register(&mut self, return_path: P) -> ConnId {
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.entries.insert(id, return_path);
        self.max_size = self.max_size.max(self.entries.len());
        id
    }

    /// Resolves (and removes) the return path for a completed request.
    pub fn take(&mut self, id: ConnId) -> Option<P> {
        self.entries.remove(&id)
    }

    /// Looks at a return path without consuming it.
    pub fn peek(&self, id: ConnId) -> Option<&P> {
        self.entries.get(&id)
    }

    /// In-flight request count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no requests are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak simultaneous in-flight requests — the sizing consideration of
    /// §5: "the size of T should be larger than S in order to avoid
    /// dropping incoming requests".
    pub fn max_size(&self) -> usize {
        self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_take_roundtrip() {
        let mut t: RoutingTable<String> = RoutingTable::new();
        let a = t.register("client-1".to_owned());
        let b = t.register("client-2".to_owned());
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.take(a), Some("client-1".to_owned()));
        assert_eq!(t.take(a), None, "entries are single-use");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        let id = t.register(7);
        assert_eq!(t.peek(id), Some(&7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_unique_across_reuse() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        let a = t.register(1);
        t.take(a);
        let b = t.register(2);
        assert_ne!(a, b, "ids never recycled");
    }

    #[test]
    fn max_size_tracks_peak() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        let ids: Vec<ConnId> = (0..5).map(|i| t.register(i)).collect();
        for id in &ids {
            t.take(*id);
        }
        assert!(t.is_empty());
        assert_eq!(t.max_size(), 5);
    }
}
