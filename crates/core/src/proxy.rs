//! An in-process PProx deployment: enclaves, layers, and an LRS behind
//! them.
//!
//! [`PProxDeployment`] wires the full §4.2 lifecycle with *real*
//! cryptography and the simulated SGX platform: user-side library →
//! UA enclave → IA enclave → LRS REST handler, and back. Requests are
//! processed synchronously; this is the deployment used for functional
//! tests, the examples, and the criterion micro-benchmarks of per-request
//! cost. (Shuffling and queueing behaviour under load are exercised by
//! the pipelined deployment in [`crate::pipeline`] and by the simulated
//! cluster in `pprox-bench`.)

use crate::client::{GetTicket, UserClient};
use crate::config::PProxConfig;
use crate::ia::{IaOptions, IaState};
use crate::keys::{KeyProvisioner, IA_CODE_IDENTITY, UA_CODE_IDENTITY};
use crate::message::{ClientEnvelope, EncryptedList, Op};
use crate::ua::UaState;
use crate::PProxError;
use pprox_crypto::rng::SecureRng;
use pprox_lrs::api::{HttpRequest, RecommendationList, RestHandler, EVENTS_PATH, QUERIES_PATH};
use pprox_sgx::{Enclave, Platform};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A complete in-process PProx deployment.
pub struct PProxDeployment {
    platform: Platform,
    provisioner: KeyProvisioner,
    ua_layer: Vec<Arc<Enclave<UaState>>>,
    ia_layer: Vec<Arc<Enclave<IaState>>>,
    lrs: Arc<dyn RestHandler>,
    config: PProxConfig,
    next_ua: AtomicUsize,
    next_ia: AtomicUsize,
    client_seq: AtomicUsize,
}

impl std::fmt::Debug for PProxDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PProxDeployment")
            .field("ua_instances", &self.ua_layer.len())
            .field("ia_instances", &self.ia_layer.len())
            .field("encryption", &self.config.encryption)
            .finish()
    }
}

impl PProxDeployment {
    /// Builds a deployment: generates layer keys, loads and attests
    /// `ua_instances + ia_instances` enclaves, and provisions them.
    ///
    /// # Errors
    ///
    /// Propagates attestation/provisioning failures (none occur with a
    /// well-formed platform).
    pub fn new(
        config: PProxConfig,
        lrs: Arc<dyn RestHandler>,
        seed: u64,
    ) -> Result<Self, PProxError> {
        let mut rng = SecureRng::from_seed(seed);
        let provisioner = KeyProvisioner::generate(config.modulus_bits, &mut rng);
        let platform = Platform::new(&mut rng);
        let mut ua_layer = Vec::with_capacity(config.ua_instances);
        for _ in 0..config.ua_instances.max(1) {
            let enclave = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
            provisioner.provision_ua(&platform, &enclave)?;
            ua_layer.push(enclave);
        }
        let mut ia_layer = Vec::with_capacity(config.ia_instances);
        for _ in 0..config.ia_instances.max(1) {
            let enclave = platform.load_enclave::<IaState>(IA_CODE_IDENTITY);
            provisioner.provision_ia(&platform, &enclave)?;
            ia_layer.push(enclave);
        }
        Ok(PProxDeployment {
            platform,
            provisioner,
            ua_layer,
            ia_layer,
            lrs,
            config,
            next_ua: AtomicUsize::new(0),
            next_ia: AtomicUsize::new(0),
            client_seq: AtomicUsize::new(0),
        })
    }

    /// A fresh user-side library instance wired to this deployment's
    /// public keys.
    pub fn client(&self) -> UserClient {
        let seq = self.client_seq.fetch_add(1, Ordering::Relaxed) as u64;
        if self.config.encryption {
            UserClient::new(self.provisioner.client_keys(), 0x5eed ^ seq)
        } else {
            UserClient::new_passthrough(self.provisioner.client_keys(), 0x5eed ^ seq)
        }
    }

    /// The simulated SGX platform (exposed for the attack harness).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// UA-layer enclaves (exposed for the attack harness).
    pub fn ua_layer(&self) -> &[Arc<Enclave<UaState>>] {
        &self.ua_layer
    }

    /// IA-layer enclaves (exposed for the attack harness).
    pub fn ia_layer(&self) -> &[Arc<Enclave<IaState>>] {
        &self.ia_layer
    }

    /// Deployment configuration.
    pub fn config(&self) -> &PProxConfig {
        &self.config
    }

    fn ia_options(&self) -> IaOptions {
        IaOptions {
            encryption: self.config.encryption,
            item_pseudonymization: self.config.item_pseudonymization,
        }
    }

    fn pick_ua(&self) -> &Arc<Enclave<UaState>> {
        let i = self.next_ua.fetch_add(1, Ordering::Relaxed) % self.ua_layer.len();
        &self.ua_layer[i]
    }

    fn pick_ia(&self) -> &Arc<Enclave<IaState>> {
        let i = self.next_ia.fetch_add(1, Ordering::Relaxed) % self.ia_layer.len();
        &self.ia_layer[i]
    }

    /// Drives a `post` envelope through UA → IA → LRS (Figure 3).
    ///
    /// # Errors
    ///
    /// Crypto/format errors from the layers, or [`PProxError::Lrs`] when
    /// the LRS rejects the pseudonymized event.
    pub fn handle_post(&self, envelope: &ClientEnvelope) -> Result<(), PProxError> {
        debug_assert_eq!(envelope.op, Op::Post);
        let encryption = self.config.encryption;
        let layer_env = self
            .pick_ua()
            .call(|ua| ua.process(envelope, encryption))??;
        let options = self.ia_options();
        let event = self
            .pick_ia()
            .call(|ia| ia.process_post(&layer_env, options))??;
        let response = self
            .lrs
            .handle(&HttpRequest::post(EVENTS_PATH, event.to_json()));
        if !response.is_success() {
            return Err(PProxError::Lrs {
                status: response.status,
            });
        }
        Ok(())
    }

    /// Drives a `get` envelope through UA → IA → LRS and the response
    /// back through IA (Figure 4), returning the encrypted list for the
    /// client to open.
    ///
    /// # Errors
    ///
    /// Crypto/format errors from the layers, or [`PProxError::Lrs`] when
    /// the LRS rejects the query or returns an unparsable body.
    pub fn handle_get(&self, envelope: &ClientEnvelope) -> Result<EncryptedList, PProxError> {
        debug_assert_eq!(envelope.op, Op::Get);
        let encryption = self.config.encryption;
        let layer_env = self
            .pick_ua()
            .call(|ua| ua.process(envelope, encryption))??;
        let options = self.ia_options();
        let ia = self.pick_ia();
        let (query, token) = ia.call(|ia| ia.process_get(&layer_env, options))??;
        let response = self
            .lrs
            .handle(&HttpRequest::post(QUERIES_PATH, query.to_json()));
        if !response.is_success() {
            return Err(PProxError::Lrs {
                status: response.status,
            });
        }
        let list =
            RecommendationList::from_json(&response.body).ok_or(PProxError::MalformedMessage)?;
        let ids: Vec<String> = list.items.into_iter().map(|s| s.item).collect();
        ia.call(|ia| ia.process_get_response(token, &ids, options))?
    }

    /// Convenience: full `get(u)` round trip for one user, returning the
    /// plaintext recommendations as the application sees them.
    ///
    /// # Errors
    ///
    /// Any layer or LRS error from the round trip.
    pub fn get_recommendations(
        &self,
        client: &mut UserClient,
        user: &str,
    ) -> Result<Vec<String>, PProxError> {
        let (envelope, ticket) = client.get(user)?;
        let encrypted = self.handle_get(&envelope)?;
        client.open_response(&ticket, &encrypted)
    }

    /// Convenience: `get(u)` with a blacklist of items the user must not
    /// be recommended (the Universal Recommender business rule, carried
    /// encrypted to the IA layer).
    ///
    /// # Errors
    ///
    /// Any layer or LRS error from the round trip.
    pub fn get_recommendations_with_rules(
        &self,
        client: &mut UserClient,
        user: &str,
        exclude: &[&str],
    ) -> Result<Vec<String>, PProxError> {
        let (envelope, ticket) = client.get_with_rules(user, exclude)?;
        let encrypted = self.handle_get(&envelope)?;
        client.open_response(&ticket, &encrypted)
    }

    /// Convenience: full `post(u, i[, p])` round trip.
    ///
    /// # Errors
    ///
    /// Any layer or LRS error from the round trip.
    pub fn post_feedback(
        &self,
        client: &mut UserClient,
        user: &str,
        item: &str,
        payload: Option<f64>,
    ) -> Result<(), PProxError> {
        let envelope = client.post(user, item, payload)?;
        self.handle_post(&envelope)
    }

    /// Consumes a get ticket and response (re-exported for callers that
    /// split the round trip).
    pub fn open(
        &self,
        client: &UserClient,
        ticket: &GetTicket,
        response: &EncryptedList,
    ) -> Result<Vec<String>, PProxError> {
        client.open_response(ticket, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_lrs::engine::Engine;
    use pprox_lrs::frontend::Frontend;
    use pprox_lrs::stub::StubLrs;
    use pprox_lrs::MAX_RECOMMENDATIONS;

    fn stub_deployment() -> PProxDeployment {
        PProxDeployment::new(PProxConfig::for_tests(), Arc::new(StubLrs::new()), 99).unwrap()
    }

    fn engine_with_data() -> (Engine, Arc<Frontend>) {
        let engine = Engine::new();
        let fe = Arc::new(Frontend::new("fe", engine.clone()));
        (engine, fe)
    }

    #[test]
    fn post_reaches_stub() {
        let d = stub_deployment();
        let mut client = d.client();
        d.post_feedback(&mut client, "alice", "m00001", Some(4.0))
            .unwrap();
    }

    #[test]
    fn get_roundtrip_through_stub() {
        let d = stub_deployment();
        let mut client = d.client();
        let items = d.get_recommendations(&mut client, "alice").unwrap();
        // Stub ids are not pseudonyms; they pass through the IA unchanged
        // and arrive, decrypted by the client, as the full canned list.
        assert_eq!(items.len(), MAX_RECOMMENDATIONS);
        assert!(items[0].starts_with("stub-item-"));
    }

    #[test]
    fn end_to_end_with_real_engine() {
        let (engine, fe) = engine_with_data();
        let d = PProxDeployment::new(PProxConfig::for_tests(), fe, 7).unwrap();
        let mut client = d.client();

        // Two clusters of taste, inserted THROUGH the proxy.
        for u in 0..6 {
            d.post_feedback(&mut client, &format!("sci-{u}"), "alien", None)
                .unwrap();
            d.post_feedback(&mut client, &format!("sci-{u}"), "dune", None)
                .unwrap();
        }
        for u in 0..6 {
            d.post_feedback(&mut client, &format!("rom-{u}"), "amelie", None)
                .unwrap();
            d.post_feedback(&mut client, &format!("rom-{u}"), "notebook", None)
                .unwrap();
        }
        engine.train();

        d.post_feedback(&mut client, "newbie", "alien", None)
            .unwrap();
        let recs = d.get_recommendations(&mut client, "newbie").unwrap();
        assert!(recs.contains(&"dune".to_owned()), "{recs:?}");
        assert!(!recs.contains(&"amelie".to_owned()));
        // Padding was stripped: only real items remain.
        assert!(recs.len() < MAX_RECOMMENDATIONS);
    }

    #[test]
    fn lrs_never_sees_plaintext_ids() {
        let (engine, fe) = engine_with_data();
        let d = PProxDeployment::new(PProxConfig::for_tests(), fe, 8).unwrap();
        let mut client = d.client();
        d.post_feedback(&mut client, "secret-user", "secret-item", None)
            .unwrap();
        // The event was stored — but under pseudonyms: querying the LRS by
        // the plaintext user id finds nothing.
        assert_eq!(engine.stats().events, 1);
        assert!(engine.history("secret-user").is_empty());
    }

    #[test]
    fn round_robin_across_instances() {
        let config = PProxConfig {
            ua_instances: 2,
            ia_instances: 2,
            ..PProxConfig::for_tests()
        };
        let d = PProxDeployment::new(config, Arc::new(StubLrs::new()), 9).unwrap();
        let mut client = d.client();
        for i in 0..4 {
            d.post_feedback(&mut client, &format!("u{i}"), "m", None)
                .unwrap();
        }
        for ua in d.ua_layer() {
            assert_eq!(ua.ecall_count(), 2, "posts split across UA instances");
        }
    }

    #[test]
    fn passthrough_mode_end_to_end() {
        let (engine, fe) = engine_with_data();
        let config = PProxConfig {
            encryption: false,
            item_pseudonymization: false,
            ..PProxConfig::for_tests()
        };
        let d = PProxDeployment::new(config, fe, 10).unwrap();
        let mut client = d.client();
        d.post_feedback(&mut client, "alice", "m1", None).unwrap();
        // In passthrough mode the LRS sees plaintext ids (this is m1).
        assert_eq!(engine.history("alice"), vec!["m1"]);
    }

    #[test]
    fn deployment_debug() {
        let d = stub_deployment();
        let s = format!("{d:?}");
        assert!(s.contains("ua_instances: 1"));
    }
}
