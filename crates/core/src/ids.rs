//! Typed plaintext identifiers: [`PlaintextUserId`] and
//! [`PlaintextItemId`].
//!
//! The unlinkability theorem (§4.2) partitions knowledge by layer: UA code
//! may handle plaintext *user* ids and IA code plaintext *item* ids, never
//! the other way round. While ids travel as bare `&str`/`Vec<u8>`, that
//! partition is invisible to the compiler and to reviewers — any function
//! can accept any id. These newtypes make the partition structural:
//!
//! * constructing one validates the [`MAX_ID_LEN`] budget once, at the
//!   trust boundary, instead of ad-hoc `check_id` calls;
//! * `Debug` prints only the length — a stray `{:?}` in a log line cannot
//!   leak the id;
//! * the buffer is zeroed on drop;
//! * most importantly, the *type names* are what the `pprox-analysis`
//!   layer-separation rules (R1/R2) key on: `PlaintextItemId` appearing in
//!   `ua.rs` is a build failure, as is `PlaintextUserId` in `ia.rs`.

use crate::message::MAX_ID_LEN;
use crate::PProxError;

fn check_len(id: &str) -> Result<(), PProxError> {
    if id.len() > MAX_ID_LEN {
        return Err(PProxError::IdTooLong {
            len: id.len(),
            max: MAX_ID_LEN,
        });
    }
    Ok(())
}

fn zero_string(s: &mut String) {
    // Best-effort zeroize without unsafe: take the buffer, overwrite it,
    // and keep the stores observable through a black box.
    let mut bytes = std::mem::take(s).into_bytes();
    for b in bytes.iter_mut() {
        *b = 0;
    }
    std::hint::black_box(&bytes);
}

macro_rules! plaintext_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash)]
        pub struct $name {
            inner: String,
        }

        impl $name {
            /// Validates and wraps a plaintext identifier.
            ///
            /// # Errors
            ///
            /// [`PProxError::IdTooLong`] when the id exceeds
            /// [`MAX_ID_LEN`] bytes.
            pub fn new(id: &str) -> Result<Self, PProxError> {
                check_len(id)?;
                Ok($name {
                    inner: id.to_owned(),
                })
            }

            /// The plaintext id. Named `expose` (not `as_str`) so every
            /// site where the plaintext actually leaves the wrapper is
            /// grep-able during privacy review.
            pub fn expose(&self) -> &str {
                &self.inner
            }

            /// The plaintext id as bytes (for padding + encryption).
            pub fn expose_bytes(&self) -> &[u8] {
                self.inner.as_bytes()
            }

            /// Byte length of the id (public: frames are constant-size).
            pub fn len(&self) -> usize {
                self.inner.len()
            }

            /// Whether the id is empty.
            pub fn is_empty(&self) -> bool {
                self.inner.is_empty()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({} bytes)"), self.inner.len())
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                zero_string(&mut self.inner);
            }
        }
    };
}

plaintext_id!(
    /// A plaintext **user** identifier.
    ///
    /// May appear in: the user-side library and UA-side code. Must never
    /// appear in IA-side code (`ia.rs`) — enforced by analyzer rule R2.
    PlaintextUserId
);

plaintext_id!(
    /// A plaintext **item** identifier.
    ///
    /// May appear in: the user-side library and IA-side code. Must never
    /// appear in UA-side code (`ua.rs`, shuffle path) — enforced by
    /// analyzer rule R1.
    PlaintextItemId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ids_roundtrip() {
        let u = PlaintextUserId::new("alice").unwrap();
        assert_eq!(u.expose(), "alice");
        assert_eq!(u.expose_bytes(), b"alice");
        assert_eq!(u.len(), 5);
        assert!(!u.is_empty());
        let i = PlaintextItemId::new("m00042").unwrap();
        assert_eq!(i.expose(), "m00042");
    }

    #[test]
    fn max_len_boundary() {
        let at = "x".repeat(MAX_ID_LEN);
        assert!(PlaintextUserId::new(&at).is_ok());
        assert!(PlaintextItemId::new(&at).is_ok());
        let over = "x".repeat(MAX_ID_LEN + 1);
        assert!(matches!(
            PlaintextUserId::new(&over),
            Err(PProxError::IdTooLong { len, max }) if len == MAX_ID_LEN + 1 && max == MAX_ID_LEN
        ));
        assert!(PlaintextItemId::new(&over).is_err());
    }

    #[test]
    fn debug_redacts_content() {
        let u = PlaintextUserId::new("alice").unwrap();
        assert_eq!(format!("{u:?}"), "PlaintextUserId(5 bytes)");
        let i = PlaintextItemId::new("m1").unwrap();
        assert_eq!(format!("{i:?}"), "PlaintextItemId(2 bytes)");
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = PlaintextUserId::new("u").unwrap();
        let b = PlaintextUserId::new("u").unwrap();
        let c = PlaintextUserId::new("v").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<PlaintextUserId> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn empty_id_is_allowed() {
        // An empty id fits the frame; rejecting it is the LRS's business.
        let e = PlaintextItemId::new("").unwrap();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
