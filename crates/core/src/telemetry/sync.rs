//! Atomic primitives for the telemetry layer, switchable to the loom
//! model checker.
//!
//! Telemetry's lock-free structures ([`super::trace::SpanRing`],
//! [`super::histogram::LatencyHistogram`]) import their atomics from here
//! instead of `std::sync::atomic`. A normal build re-exports std; a build
//! with `RUSTFLAGS="--cfg loom"` re-exports the loom shim's instrumented
//! types, whose every operation is a scheduling point — which is what lets
//! `tests/loom.rs` exhaustively permute writer/reader interleavings of the
//! seqlock and histogram protocols.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{fence, AtomicU64, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{fence, AtomicU64, Ordering};
