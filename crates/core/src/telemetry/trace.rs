//! Per-request span tracing with shuffle-boundary trace-ID
//! re-randomization, recorded into a bounded lock-free ring buffer.
//!
//! This is the fluentd role of the paper's deployment (§7.2) made
//! privacy-aware: spans carry **no identifiers** — no user, no item, no
//! arrival sequence number — only a random [`TraceId`], a [`Stage`], an
//! instance index, and timing. Crucially, the trace ID is *re-randomized
//! at every shuffle boundary* ([`TraceIdPolicy::Rerandomize`]): the ID a
//! request carries on the client→UA segment is statistically independent
//! of the ID its post-shuffle processing spans carry, so an adversary
//! holding the full exported span stream can join across the shuffle no
//! better than the network observer §6.2 bounds at `1/S`. The
//! [`TraceIdPolicy::StableAcrossShuffle`] ablation keeps one ID
//! end-to-end — the mistake class TEE recommender deployments are known
//! for — and exists so the `pprox-attack` telemetry audit can demonstrate
//! it is caught.

use crate::telemetry::sync::{fence, AtomicU64, Ordering};
use pprox_crypto::rng::SecureRng;

/// A random, meaning-free span correlation ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A fresh random ID.
    pub fn random(rng: &mut SecureRng) -> TraceId {
        TraceId(rng.next_u64())
    }
}

/// What happens to a request's trace ID when it crosses a shuffle
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceIdPolicy {
    /// Replace the ID with a fresh random one (the only safe setting:
    /// exported traces cannot be joined across layers).
    #[default]
    Rerandomize,
    /// Keep the same ID end-to-end. **Deliberately leaky** — exported
    /// traces link users to LRS calls regardless of shuffling. Exists as
    /// the ablation the telemetry privacy audit must catch; never ship.
    StableAcrossShuffle,
}

impl TraceIdPolicy {
    /// The ID to use after a shuffle boundary.
    pub fn next_trace(&self, current: TraceId, rng: &mut SecureRng) -> TraceId {
        match self {
            TraceIdPolicy::Rerandomize => TraceId::random(rng),
            TraceIdPolicy::StableAcrossShuffle => current,
        }
    }

    /// Exported label.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceIdPolicy::Rerandomize => "rerandomize",
            TraceIdPolicy::StableAcrossShuffle => "stable-across-shuffle",
        }
    }
}

/// A pipeline stage a span or histogram can describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client-side envelope encryption (user-side library).
    ClientEncrypt = 0,
    /// Dwell inside the request-direction shuffle buffer.
    ShuffleRequest = 1,
    /// UA enclave processing (decrypt + pseudonymize).
    Ua = 2,
    /// IA enclave processing (item pseudonymization, response keys).
    Ia = 3,
    /// One LRS attempt on the timeout pool (per try).
    LrsAttempt = 4,
    /// The full resilient LRS call: retries, backoff, breaker included.
    Lrs = 5,
    /// Dwell inside the response-direction shuffle buffer.
    ShuffleResponse = 6,
    /// Whole-request latency, admission to delivery.
    E2e = 7,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::ClientEncrypt,
        Stage::ShuffleRequest,
        Stage::Ua,
        Stage::Ia,
        Stage::LrsAttempt,
        Stage::Lrs,
        Stage::ShuffleResponse,
        Stage::E2e,
    ];

    /// Exported label (Prometheus `stage` label / JSON key).
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::ClientEncrypt => "client_encrypt",
            Stage::ShuffleRequest => "shuffle_request",
            Stage::Ua => "ua",
            Stage::Ia => "ia",
            Stage::LrsAttempt => "lrs_attempt",
            Stage::Lrs => "lrs",
            Stage::ShuffleResponse => "shuffle_response",
            Stage::E2e => "e2e",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| *s as u8 == v)
    }
}

/// One exported telemetry span. Plain data, fully public: this struct IS
/// the off-enclave telemetry format, so anything added here must survive
/// the privacy audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Segment-local correlation ID (see [`TraceIdPolicy`]).
    pub trace: TraceId,
    /// Which stage this span measured.
    pub stage: Stage,
    /// Instance/worker index within the stage.
    pub instance: u16,
    /// Span start, µs since the deployment's telemetry epoch.
    pub start_us: u64,
    /// Span duration, µs.
    pub duration_us: u64,
    /// Whether the stage completed successfully.
    pub ok: bool,
}

/// One ring slot: a version word plus the span fields, all atomics so the
/// whole structure stays `#![forbid(unsafe_code)]`-clean.
///
/// Write protocol (seqlock-flavored): a writer CASes the version from
/// even to odd, stores the fields, then stores version+2 (even again). A
/// writer losing the CAS *drops its span* rather than spinning — bounded,
/// lock-free, and an acceptable loss mode for telemetry (counted in
/// `dropped`). A reader observes the version before and after copying the
/// fields and discards torn reads.
#[derive(Debug)]
struct Slot {
    version: AtomicU64,
    seq: AtomicU64,
    trace: AtomicU64,
    packed: AtomicU64, // stage (8 bits) | instance (16 bits) | ok (1 bit)
    start_us: AtomicU64,
    duration_us: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            packed: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            duration_us: AtomicU64::new(0),
        }
    }
}

fn pack(stage: Stage, instance: u16, ok: bool) -> u64 {
    (stage as u64) | ((instance as u64) << 8) | ((ok as u64) << 24)
}

fn unpack(v: u64) -> Option<(Stage, u16, bool)> {
    let stage = Stage::from_u8((v & 0xff) as u8)?;
    Some((stage, ((v >> 8) & 0xffff) as u16, (v >> 24) & 1 == 1))
}

/// Bounded lock-free ring buffer of [`SpanRecord`]s — the in-memory log
/// shipper. New spans overwrite the oldest once the ring wraps; a
/// snapshot returns the retained window in push order.
#[derive(Debug)]
pub struct SpanRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring retaining up to `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> SpanRing {
        assert!(capacity > 0, "span ring needs capacity");
        SpanRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (including since-overwritten ones).
    pub fn pushed(&self) -> u64 {
        // relaxed-ok: standalone monotone counter read; no data guarded
        self.head.load(Ordering::Relaxed)
    }

    /// Spans dropped because a slot was mid-write (writer contention).
    pub fn dropped(&self) -> u64 {
        // relaxed-ok: standalone monotone counter read; no data guarded
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pushes a span. Lock-free: never blocks, never spins; under slot
    /// contention the span is dropped and counted instead.
    pub fn push(&self, record: SpanRecord) {
        // relaxed-ok: ticket allocation only needs atomicity of the
        // increment; slot ownership is decided by the version CAS below
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let v = slot.version.load(Ordering::Acquire);
        if v & 1 == 1
            || slot
                .version
                // relaxed-ok: CAS failure ordering — on failure we drop the
                // span and read nothing the version word guards
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // relaxed-ok: standalone loss counter; no data guarded
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // relaxed-ok: field stores are ordered by the seqlock protocol —
        // they happen-after the CAS (success=Acquire) and happen-before the
        // Release publication store below; same for the next four stores
        slot.seq.store(ticket, Ordering::Relaxed);
        // relaxed-ok: seqlock field store (see above)
        slot.trace.store(record.trace.0, Ordering::Relaxed);
        slot.packed.store(
            pack(record.stage, record.instance, record.ok),
            // relaxed-ok: seqlock field store (see above)
            Ordering::Relaxed,
        );
        // relaxed-ok: seqlock field store (see above)
        slot.start_us.store(record.start_us, Ordering::Relaxed);
        slot.duration_us
            // relaxed-ok: seqlock field store (see above)
            .store(record.duration_us, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);
    }

    /// The retained spans, oldest first. Skips slots that are empty or
    /// mid-write at read time.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue; // never written, or a write is in progress
            }
            // relaxed-ok: seqlock field loads — they happen-after the
            // Acquire version load above, and the Acquire fence below keeps
            // them from sinking past the revalidating load; same for the
            // next four loads
            let seq = slot.seq.load(Ordering::Relaxed);
            // relaxed-ok: seqlock field load (see above)
            let trace = slot.trace.load(Ordering::Relaxed);
            // relaxed-ok: seqlock field load (see above)
            let packed = slot.packed.load(Ordering::Relaxed);
            // relaxed-ok: seqlock field load (see above)
            let start_us = slot.start_us.load(Ordering::Relaxed);
            // relaxed-ok: seqlock field load (see above)
            let duration_us = slot.duration_us.load(Ordering::Relaxed);
            // Without this fence the relaxed field loads above may be
            // reordered after the revalidating version load, defeating the
            // tear check: the reader could validate against a version
            // observed *before* the fields it actually read.
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Acquire) != v1 {
                continue; // torn read: a writer replaced the slot meanwhile
            }
            let Some((stage, instance, ok)) = unpack(packed) else {
                continue;
            };
            out.push((
                seq,
                SpanRecord {
                    trace: TraceId(trace),
                    stage,
                    instance,
                    start_us,
                    duration_us,
                    ok,
                },
            ));
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, stage: Stage, start: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            stage,
            instance: 3,
            start_us: start,
            duration_us: 17,
            ok: true,
        }
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let ring = SpanRing::new(8);
        let rec = SpanRecord {
            trace: TraceId(0xdead_beef),
            stage: Stage::Lrs,
            instance: u16::MAX,
            start_us: 123_456,
            duration_us: 789,
            ok: false,
        };
        ring.push(rec);
        assert_eq!(ring.snapshot(), vec![rec]);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.push(span(i, Stage::Ua, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let traces: Vec<u64> = snap.iter().map(|r| r.trace.0).collect();
        assert_eq!(traces, vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn concurrent_pushes_account_for_every_span() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(1024));
        let threads = 8;
        let per_thread = 2_000u64;
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ring.push(span(t as u64 * per_thread + i, Stage::Ia, i));
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        // pushed counts every attempt; retained + dropped never exceeds it
        // and the snapshot holds at most capacity coherent records.
        assert_eq!(ring.pushed(), threads as u64 * per_thread);
        let snap = ring.snapshot();
        assert!(snap.len() <= 1024);
        assert!(!snap.is_empty());
        for r in &snap {
            assert_eq!(r.stage, Stage::Ia);
            assert_eq!(r.duration_us, 17);
        }
    }

    #[test]
    fn rerandomize_policy_breaks_id_linkage() {
        let mut rng = SecureRng::from_seed(9);
        let t = TraceId::random(&mut rng);
        let next = TraceIdPolicy::Rerandomize.next_trace(t, &mut rng);
        assert_ne!(t, next);
        let same = TraceIdPolicy::StableAcrossShuffle.next_trace(t, &mut rng);
        assert_eq!(t, same);
    }

    #[test]
    fn stage_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels.len(), Stage::ALL.len());
        for s in Stage::ALL {
            assert_eq!(Stage::from_u8(s as u8), Some(s));
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = SpanRing::new(0);
    }
}
