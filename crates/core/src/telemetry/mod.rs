//! Privacy-safe operational telemetry (per-stage tracing + histograms).
//!
//! The paper's deployment "collects logs in a systematic fashion using
//! fluentd" (§7.2) and its elastic scaling (§5) consumes live load
//! signals. This module is that observability layer, built so the
//! telemetry itself preserves User–Interest unlinkability:
//!
//! * [`histogram`] — lock-free log-linear latency histograms with
//!   mergeable snapshots (p50/p95/p99/p99.9), replacing the single
//!   `busy_us` mean the registry used to offer.
//! * [`trace`] — per-request spans across the full path, with trace IDs
//!   **re-randomized at every shuffle boundary** so the exported stream
//!   cannot be joined across layers, stored in a bounded lock-free ring.
//! * [`export`] — Prometheus text exposition and JSON snapshot rendering
//!   plus their validators (the `telemetry_export` tool's engine).
//!
//! What must never be recorded here: raw user ids, raw item ids, and
//! arrival order (sequence numbers that survive the shuffle). Spans carry
//! only a random trace ID, a stage tag, an instance index, and timing —
//! and the `pprox-attack` telemetry audit holds the exported stream to
//! the §6.2 `1/S` linkage bound in CI.

pub mod export;
pub mod histogram;
pub(crate) mod sync;
pub mod trace;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use trace::{SpanRecord, SpanRing, Stage, TraceId, TraceIdPolicy};

use std::sync::Arc;
// analysis-allow: R6 the hub's epoch is the time *origin* spans are expressed
// against, not a per-request arrival capture; per-request E2e timing goes
// through record_duration (histogram only), never the span ring.
use std::time::Instant;

/// Telemetry deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Span ring retention (spans, not requests; a request emits ~6).
    pub span_capacity: usize,
    /// Trace-ID behavior at shuffle boundaries. Only
    /// [`TraceIdPolicy::Rerandomize`] is safe to ship; the stable variant
    /// exists for the privacy-audit ablation.
    pub trace_policy: TraceIdPolicy,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            span_capacity: 8192,
            trace_policy: TraceIdPolicy::Rerandomize,
        }
    }
}

/// Per-stage latency histograms, one [`LatencyHistogram`] per
/// [`Stage`]. Recording is lock-free; histograms are shared `Arc`s so
/// subsystems (the LRS timeout pool, the shuffle servers) can hold their
/// stage's recorder directly.
#[derive(Debug)]
pub struct StageSet {
    histograms: Vec<Arc<LatencyHistogram>>,
}

impl Default for StageSet {
    fn default() -> Self {
        Self::new()
    }
}

impl StageSet {
    /// Empty histograms for every stage.
    pub fn new() -> StageSet {
        StageSet {
            histograms: Stage::ALL
                .iter()
                .map(|_| Arc::new(LatencyHistogram::new()))
                .collect(),
        }
    }

    /// The shared histogram recording `stage`.
    pub fn histogram(&self, stage: Stage) -> &Arc<LatencyHistogram> {
        &self.histograms[stage as usize]
    }

    /// Records one observation for `stage`.
    pub fn record(&self, stage: Stage, us: u64) {
        self.histograms[stage as usize].record(us);
    }

    /// Snapshot of every stage, in pipeline order.
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.histograms[s as usize].snapshot()))
            .collect()
    }

    /// Merged dwell distribution of both shuffle directions — the
    /// "shuffle" stage the exporter and the autoscaler report.
    pub fn shuffle_snapshot(&self) -> HistogramSnapshot {
        let mut merged = self.histogram(Stage::ShuffleRequest).snapshot();
        merged.merge(&self.histogram(Stage::ShuffleResponse).snapshot());
        merged
    }

    /// Worst p99 across the *processing* stages (UA, IA, LRS) — the tail
    /// signal [`crate::autoscale::Autoscaler::observe_with_pressure`]
    /// consumes. Shuffle dwell is excluded on purpose: at low load the
    /// timer dominates dwell by design (§4.3) and would always breach an
    /// SLO tuned for processing latency.
    pub fn worst_processing_p99_us(&self) -> Option<u64> {
        let p99s: Vec<u64> = [Stage::Ua, Stage::Ia, Stage::Lrs]
            .iter()
            .map(|&s| self.histogram(s).snapshot())
            .filter(|snap| snap.count() > 0)
            .map(|snap| snap.p99())
            .collect();
        p99s.into_iter().max()
    }
}

/// The telemetry hub one deployment owns: per-stage histograms, the span
/// ring, the trace-ID policy, and the shared time epoch spans are
/// expressed against.
#[derive(Debug)]
pub struct Telemetry {
    stages: StageSet,
    spans: SpanRing,
    policy: TraceIdPolicy,
    // analysis-allow: R6 shared epoch, not a per-request timestamp
    epoch: Instant,
}

impl Telemetry {
    /// A hub with the given configuration.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            stages: StageSet::new(),
            spans: SpanRing::new(config.span_capacity),
            policy: config.trace_policy,
            // analysis-allow: R6 hub creation time is the clock origin
            epoch: Instant::now(),
        }
    }

    /// Per-stage histograms.
    pub fn stages(&self) -> &StageSet {
        &self.stages
    }

    /// The span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// The configured trace-ID policy.
    pub fn policy(&self) -> TraceIdPolicy {
        self.policy
    }

    /// Microseconds since this hub was created — the `start_us` clock.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a span into both views: its duration into the stage
    /// histogram and the span itself into the ring.
    pub fn record_span(&self, record: SpanRecord) {
        self.stages.record(record.stage, record.duration_us);
        self.spans.push(record);
    }

    /// Records into the stage histogram only (no span) — used for the
    /// end-to-end distribution, where a per-request span would tie a
    /// request's total latency to its delivery time and hand the adversary
    /// an arrival-time oracle the aggregate histogram does not leak.
    pub fn record_duration(&self, stage: Stage, us: u64) {
        self.stages.record(stage, us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_safe() {
        let c = TelemetryConfig::default();
        assert_eq!(c.trace_policy, TraceIdPolicy::Rerandomize);
        assert!(c.span_capacity >= 1024);
    }

    #[test]
    fn record_span_feeds_histogram_and_ring() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_span(SpanRecord {
            trace: TraceId(1),
            stage: Stage::Ua,
            instance: 0,
            start_us: 10,
            duration_us: 250,
            ok: true,
        });
        assert_eq!(t.stages().histogram(Stage::Ua).count(), 1);
        assert_eq!(t.spans().snapshot().len(), 1);
        assert_eq!(t.stages().histogram(Stage::Ua).snapshot().p50(), 250);
    }

    #[test]
    fn record_duration_skips_the_ring() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_duration(Stage::E2e, 1_000);
        assert_eq!(t.stages().histogram(Stage::E2e).count(), 1);
        assert!(t.spans().snapshot().is_empty());
    }

    #[test]
    fn worst_processing_p99_ignores_shuffle_dwell() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert_eq!(t.stages().worst_processing_p99_us(), None);
        t.stages().record(Stage::ShuffleRequest, 500_000); // timer-bound dwell
        assert_eq!(t.stages().worst_processing_p99_us(), None);
        t.stages().record(Stage::Ua, 300);
        t.stages().record(Stage::Lrs, 9_000);
        let worst = t.stages().worst_processing_p99_us().unwrap();
        assert!((9_000..=9_600).contains(&worst), "worst {worst}");
    }

    #[test]
    fn shuffle_snapshot_merges_both_directions() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.stages().record(Stage::ShuffleRequest, 100);
        t.stages().record(Stage::ShuffleResponse, 200);
        let merged = t.stages().shuffle_snapshot();
        assert_eq!(merged.count(), 2);
    }
}
