//! Log-linear latency histograms (the HdrHistogram idea, fixed layout).
//!
//! A [`LatencyHistogram`] is a flat array of `AtomicU64` cells indexed by
//! a log-linear bucketing of microsecond values: exact counts below
//! [`SUB_BUCKETS`] µs, then [`SUB_BUCKETS`] linear sub-buckets per power
//! of two. Recording is one `fetch_add` — no locks, no allocation — so it
//! lives on the proxy hot path next to the [`crate::metrics`] counters.
//! Snapshots are plain vectors that merge by element-wise addition, which
//! is what lets per-worker recording aggregate into per-stage and
//! per-deployment views without any coordination on the write side.

use crate::telemetry::sync::{AtomicU64, Ordering};

/// Linear sub-buckets per octave: 2^5. Relative quantile error is bounded
/// by one sub-bucket, i.e. ≤ 1/32 ≈ 3.1%.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Number of linear sub-buckets per power of two.
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Largest exponent tracked: values at or above 2^(`MAX_EXPONENT`+1) µs
/// (~18 minutes) clamp into the top bucket.
pub const MAX_EXPONENT: u32 = 39;

/// Total cells in a histogram.
pub const NUM_BUCKETS: usize =
    (MAX_EXPONENT - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + 2 * SUB_BUCKETS;

/// Largest value that lands in a non-clamped bucket.
const MAX_TRACKED: u64 = (1u64 << (MAX_EXPONENT + 1)) - 1;

/// Bucket index for a microsecond value.
fn bucket_index(us: u64) -> usize {
    let v = us.min(MAX_TRACKED);
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        // 2^k <= v < 2^(k+1), k >= SUB_BUCKET_BITS: keep the top
        // SUB_BUCKET_BITS+1 bits, giving SUB_BUCKETS linear cells per
        // octave, laid out contiguously after the exact range.
        let k = 63 - v.leading_zeros();
        let shift = k - SUB_BUCKET_BITS;
        ((k - SUB_BUCKET_BITS) as usize) * SUB_BUCKETS + (v >> shift) as usize
    }
}

/// Inclusive upper bound (µs) of a bucket — the value quantiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let group = (index / SUB_BUCKETS) as u32; // >= 1
        let sub = (index % SUB_BUCKETS) as u64;
        ((SUB_BUCKETS as u64 + sub + 1) << (group - 1)) - 1
    }
}

/// Lock-free log-linear histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    cells: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            cells: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one latency observation. Lock-free; safe from any thread.
    pub fn record(&self, us: u64) {
        // relaxed-ok: independent commutative counters — every cell is a
        // standalone accumulator, no cross-cell invariant is read back
        // under the assumption of ordering; same for the next three ops
        self.cells[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: commutative counter (see above)
        self.count.fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: commutative counter (see above)
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // relaxed-ok: commutative max fold (see above)
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        // relaxed-ok: standalone monotone counter read; no data guarded
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the cells. Concurrent recording keeps the
    /// snapshot *consistent enough*: each cell is exact at its read
    /// instant, so totals may trail in-flight records by a few counts but
    /// never invent observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .cells
            .iter()
            // relaxed-ok: snapshot reads are documented as per-cell exact,
            // not mutually consistent; totals may trail in-flight records
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            // relaxed-ok: per-cell-exact snapshot read (see above)
            sum_us: self.sum_us.load(Ordering::Relaxed),
            // relaxed-ok: per-cell-exact snapshot read (see above)
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Mergeable point-in-time histogram contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Rebuilds a snapshot from externally transported parts (e.g. a
    /// metrics scrape that crossed the wire). `counts` is padded or
    /// truncated to the fixed [`NUM_BUCKETS`] layout and the total is
    /// re-derived from the cells, so a reconstructed snapshot always
    /// merges exactly like a locally captured one.
    pub fn from_parts(mut counts: Vec<u64>, sum_us: u64, max_us: u64) -> Self {
        counts.resize(NUM_BUCKETS, 0);
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum_us,
            max_us,
        }
    }

    /// The raw per-bucket counts in fixed [`NUM_BUCKETS`] layout — the
    /// transport-side counterpart of [`HistogramSnapshot::from_parts`].
    /// Bucketed aggregates only: indices are log-linear latency ranges,
    /// never per-request values.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest observed value, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean observed value, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the observation of rank `ceil(q · count)`,
    /// clamped to the observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Median latency, µs.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile latency, µs.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile latency, µs.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile latency, µs.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Observations at or below `bound_us` — the cumulative count a
    /// Prometheus `le` bucket exports. Conservative: a log-linear bucket
    /// straddling `bound_us` counts only if it lies entirely below it.
    pub fn cumulative_le(&self, bound_us: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_upper(*i) <= bound_us)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Adds `other`'s observations into `self`. Merging snapshots from
    /// per-worker histograms yields exactly the histogram a single shared
    /// recorder would have produced (same fixed bucket layout).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket upper bounds strictly increase with the index.
        let mut prev_upper = None;
        for i in 0..NUM_BUCKETS {
            let upper = bucket_upper(i);
            if let Some(p) = prev_upper {
                assert!(upper > p, "bucket {i} upper {upper} <= prev {p}");
            }
            prev_upper = Some(upper);
            assert_eq!(bucket_index(upper), i, "upper bound maps back");
        }
        for v in [0u64, 1, 31, 32, 63, 64, 100, 1_000, 123_456, 10_000_000] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v);
            if i > 0 {
                assert!(bucket_upper(i - 1) < v);
            }
        }
    }

    #[test]
    fn huge_values_clamp_without_panicking() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(MAX_TRACKED + 1);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max_us(), u64::MAX);
    }

    #[test]
    fn quantiles_match_exact_small_values() {
        // Values below SUB_BUCKETS are exact: quantiles are precise.
        let h = LatencyHistogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 10);
        assert_eq!(s.quantile(1.0), 20);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.mean_us(), 10.5);
    }

    #[test]
    fn quantile_error_is_bounded_by_sub_bucket_resolution() {
        let h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(1_000 + i); // uniform on [1000, 11000)
        }
        let s = h.snapshot();
        let true_p99 = 1_000.0 + 0.99 * 10_000.0;
        let measured = s.p99() as f64;
        assert!(
            (measured - true_p99).abs() / true_p99 < 1.0 / SUB_BUCKETS as f64 + 0.01,
            "p99 {measured} vs true {true_p99}"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record((t * 1_000 + i) % 50_000);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), threads * per_thread);
        assert_eq!(s.count(), h.count());
    }

    #[test]
    fn merged_snapshot_equals_single_recorder() {
        // Concurrent per-thread histograms merged == one shared histogram
        // fed the same values (fixed layout makes merge exact).
        use std::sync::Arc;
        let shared = Arc::new(LatencyHistogram::new());
        let mut merged = HistogramSnapshot::empty();
        let mut parts = Vec::new();
        for t in 0..4u64 {
            let shared = Arc::clone(&shared);
            parts.push(std::thread::spawn(move || {
                let local = LatencyHistogram::new();
                for i in 0..2_000u64 {
                    let v = t * 7 + i * 3;
                    local.record(v);
                    shared.record(v);
                }
                local.snapshot()
            }));
        }
        for p in parts {
            merged.merge(&p.join().unwrap());
        }
        assert_eq!(merged, shared.snapshot());
    }

    #[test]
    fn cumulative_le_is_monotone_and_totals() {
        let h = LatencyHistogram::new();
        for v in [1u64, 5, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for bound in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            let c = s.cumulative_le(bound);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(s.cumulative_le(u64::MAX), s.count());
    }

    #[test]
    fn from_parts_roundtrips_and_normalizes() {
        let h = LatencyHistogram::new();
        for v in [3u64, 40, 400, 4_000, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt =
            HistogramSnapshot::from_parts(s.bucket_counts().to_vec(), s.sum_us(), s.max_us());
        assert_eq!(rebuilt, s);
        // Short and long vectors normalize to the fixed layout.
        let short = HistogramSnapshot::from_parts(vec![2, 0, 1], 4, 2);
        assert_eq!(short.count(), 3);
        assert_eq!(short.bucket_counts().len(), NUM_BUCKETS);
        let long = HistogramSnapshot::from_parts(vec![1; NUM_BUCKETS + 7], 0, 0);
        assert_eq!(long.count(), NUM_BUCKETS as u64);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.cumulative_le(u64::MAX), 0);
    }
}
