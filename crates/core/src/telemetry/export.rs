//! Rendering and validation of the exported telemetry formats.
//!
//! Two artifacts leave the deployment (the `telemetry_export` tool in
//! `pprox-bench` is a thin driver around this module):
//!
//! * **Prometheus text exposition** — per-stage latency histograms as
//!   cumulative `le` buckets plus per-layer counters, scrape-ready.
//! * **JSON snapshot** — the same data as a schema-versioned document
//!   written under `results/`, with per-stage p50/p95/p99/p99.9.
//!
//! Both renderers consume only [`HistogramSnapshot`]s, counter
//! [`LayerSnapshot`]s and span accounting — never raw identifiers — so
//! everything they can possibly emit is already covered by the telemetry
//! privacy audit. The validators are deliberate about shape *and* sanity
//! (cumulative buckets must be monotone, quantiles ordered) so CI catches
//! a broken exporter, not just a missing field.

use super::histogram::HistogramSnapshot;
use super::trace::Stage;
use crate::metrics::LayerSnapshot;
use pprox_json::Value;

/// Schema version of the JSON snapshot document.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Stages the JSON validator requires (the acceptance surface): the two
/// proxy layers, the merged shuffle dwell, and the LRS call.
pub const REQUIRED_STAGES: [&str; 4] = ["ua", "ia", "shuffle", "lrs"];

/// Prometheus `le` boundaries, µs: powers of two from 1 µs to ~67 s.
/// Coarser than the in-memory log-linear cells on purpose — 27 series per
/// stage instead of ~1100 — while `+Inf` keeps totals exact.
pub fn prometheus_bounds_us() -> Vec<u64> {
    (0..27).map(|e| 1u64 << e).collect()
}

/// Everything the renderers need from a deployment, already snapshotted.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Per-stage histogram snapshots, pipeline order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// Merged shuffle dwell (request + response directions).
    pub shuffle: HistogramSnapshot,
    /// Per-layer counter snapshots, registration order.
    pub layers: Vec<(String, LayerSnapshot)>,
    /// Trace-ID policy label (see `TraceIdPolicy::as_str`).
    pub trace_policy: String,
    /// Spans pushed into the ring over the deployment's lifetime.
    pub spans_pushed: u64,
    /// Spans retained and exported from the ring.
    pub spans_exported: u64,
    /// Spans dropped under writer contention.
    pub spans_dropped: u64,
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn histogram_value(snap: &HistogramSnapshot) -> Value {
    Value::object([
        ("count", Value::from(snap.count())),
        ("p50_us", Value::from(snap.p50())),
        ("p95_us", Value::from(snap.p95())),
        ("p99_us", Value::from(snap.p99())),
        ("p999_us", Value::from(snap.p999())),
        ("mean_us", Value::from(round3(snap.mean_us()))),
        ("max_us", Value::from(snap.max_us())),
    ])
}

/// Renders the JSON snapshot document.
pub fn json_snapshot(report: &TelemetryReport) -> Value {
    let mut stages = Value::object::<&str, _>([]);
    for (stage, snap) in &report.stages {
        stages.insert(stage.as_str(), histogram_value(snap));
    }
    stages.insert("shuffle", histogram_value(&report.shuffle));
    let layers: Value = report
        .layers
        .iter()
        .map(|(name, s)| {
            Value::object([
                ("name", Value::from(name.as_str())),
                ("requests", Value::from(s.requests)),
                ("responses", Value::from(s.responses)),
                ("errors", Value::from(s.errors)),
                ("retries", Value::from(s.retries)),
                ("deadline_misses", Value::from(s.deadline_misses)),
                ("rejected", Value::from(s.rejected)),
                ("shuffle_flushes", Value::from(s.shuffle_flushes)),
                ("shuffle_timeouts", Value::from(s.shuffle_timeouts)),
                (
                    "mean_processing_us",
                    Value::from(round3(s.mean_processing_us())),
                ),
            ])
        })
        .collect();
    Value::object([
        ("report", Value::from("telemetry")),
        ("schema_version", Value::from(TELEMETRY_SCHEMA_VERSION)),
        ("trace_policy", Value::from(report.trace_policy.as_str())),
        ("stages", stages),
        ("layers", layers),
        (
            "spans",
            Value::object([
                ("pushed", Value::from(report.spans_pushed)),
                ("exported", Value::from(report.spans_exported)),
                ("dropped", Value::from(report.spans_dropped)),
            ]),
        ),
    ])
}

/// Validates a parsed JSON snapshot. Returns the first violation.
///
/// # Errors
///
/// A human-readable description of the violated constraint.
pub fn validate_json_snapshot(root: &Value) -> Result<(), String> {
    if root.get("report").and_then(Value::as_str) != Some("telemetry") {
        return Err("missing report=telemetry tag".into());
    }
    let version = root
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if version < TELEMETRY_SCHEMA_VERSION {
        return Err(format!("schema_version {version} too old"));
    }
    let policy = root
        .get("trace_policy")
        .and_then(Value::as_str)
        .ok_or("missing trace_policy")?;
    if policy != "rerandomize" {
        return Err(format!(
            "trace_policy must be rerandomize in exported telemetry, got {policy}"
        ));
    }
    let stages = root.get("stages").ok_or("missing stages object")?;
    for name in REQUIRED_STAGES {
        let s = stages.get(name).ok_or(format!("missing stage {name}"))?;
        let field = |f: &str| -> Result<f64, String> {
            s.get(f)
                .and_then(Value::as_f64)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or(format!("{name}.{f} missing or not a finite number"))
        };
        let count = field("count")?;
        if count < 1.0 {
            return Err(format!("stage {name} has no observations"));
        }
        let (p50, p95, p99) = (field("p50_us")?, field("p95_us")?, field("p99_us")?);
        let p999 = field("p999_us")?;
        field("mean_us")?;
        field("max_us")?;
        if !(p50 <= p95 && p95 <= p99 && p99 <= p999) {
            return Err(format!(
                "{name} quantiles not monotone: p50={p50} p95={p95} p99={p99} p999={p999}"
            ));
        }
    }
    let layers = root
        .get("layers")
        .and_then(Value::as_array)
        .ok_or("missing layers array")?;
    if layers.is_empty() {
        return Err("layers array is empty".into());
    }
    for layer in layers {
        layer
            .get("name")
            .and_then(Value::as_str)
            .ok_or("layer without name")?;
        layer
            .get("requests")
            .and_then(Value::as_u64)
            .ok_or("layer without requests")?;
    }
    let spans = root.get("spans").ok_or("missing spans object")?;
    for f in ["pushed", "exported", "dropped"] {
        spans
            .get(f)
            .and_then(Value::as_u64)
            .ok_or(format!("spans.{f} missing"))?;
    }
    Ok(())
}

/// Renders the Prometheus text exposition.
pub fn prometheus_text(report: &TelemetryReport) -> String {
    let mut out = String::new();
    let bounds = prometheus_bounds_us();
    out.push_str(
        "# HELP pprox_stage_latency_us Per-stage latency, microseconds.\n\
         # TYPE pprox_stage_latency_us histogram\n",
    );
    let mut emit_stage = |label: &str, snap: &HistogramSnapshot| {
        for &b in &bounds {
            out.push_str(&format!(
                "pprox_stage_latency_us_bucket{{stage=\"{label}\",le=\"{b}\"}} {}\n",
                snap.cumulative_le(b)
            ));
        }
        out.push_str(&format!(
            "pprox_stage_latency_us_bucket{{stage=\"{label}\",le=\"+Inf\"}} {}\n",
            snap.count()
        ));
        out.push_str(&format!(
            "pprox_stage_latency_us_sum{{stage=\"{label}\"}} {}\n",
            snap.sum_us()
        ));
        out.push_str(&format!(
            "pprox_stage_latency_us_count{{stage=\"{label}\"}} {}\n",
            snap.count()
        ));
    };
    for (stage, snap) in &report.stages {
        emit_stage(stage.as_str(), snap);
    }
    emit_stage("shuffle", &report.shuffle);

    for (help, metric, pick) in [
        (
            "Requests processed per layer.",
            "pprox_layer_requests_total",
            (|s: &LayerSnapshot| s.requests) as fn(&LayerSnapshot) -> u64,
        ),
        (
            "Failed requests per layer.",
            "pprox_layer_errors_total",
            |s: &LayerSnapshot| s.errors,
        ),
        (
            "Retried LRS attempts per layer.",
            "pprox_layer_retries_total",
            |s: &LayerSnapshot| s.retries,
        ),
        (
            "Deadline-expired requests per layer.",
            "pprox_layer_deadline_misses_total",
            |s: &LayerSnapshot| s.deadline_misses,
        ),
        (
            "Requests shed by admission control or breaker per layer.",
            "pprox_layer_rejected_total",
            |s: &LayerSnapshot| s.rejected,
        ),
        (
            "Timer-forced shuffle flushes per layer.",
            "pprox_layer_shuffle_timeouts_total",
            |s: &LayerSnapshot| s.shuffle_timeouts,
        ),
    ] {
        out.push_str(&format!(
            "# HELP {metric} {help}\n# TYPE {metric} counter\n"
        ));
        for (name, snap) in &report.layers {
            out.push_str(&format!("{metric}{{layer=\"{name}\"}} {}\n", pick(snap)));
        }
    }
    out.push_str(
        "# HELP pprox_spans_dropped_total Telemetry spans lost to ring contention.\n\
         # TYPE pprox_spans_dropped_total counter\n",
    );
    out.push_str(&format!(
        "pprox_spans_dropped_total {}\n",
        report.spans_dropped
    ));
    out
}

/// Validates Prometheus exposition text: parseable sample lines, every
/// histogram's cumulative buckets monotone and consistent with its
/// `_count`, and the required stage series present.
///
/// # Errors
///
/// A human-readable description of the violated constraint.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: no sample value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample value {value}"))?;
        if value < 0.0 {
            return Err(format!("line {lineno}: negative sample"));
        }
        if let Some(rest) = name_labels.strip_prefix("pprox_stage_latency_us_bucket{stage=\"") {
            let (stage, rest) = rest
                .split_once('"')
                .ok_or(format!("line {lineno}: unterminated stage label"))?;
            let le = rest
                .strip_prefix(",le=\"")
                .and_then(|r| r.strip_suffix("\"}"))
                .ok_or(format!("line {lineno}: malformed le label"))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("line {lineno}: bad le bound {le}"))?
            };
            buckets
                .entry(stage.to_string())
                .or_default()
                .push((bound, value as u64));
        } else if let Some(rest) = name_labels.strip_prefix("pprox_stage_latency_us_count{stage=\"")
        {
            let stage = rest
                .strip_suffix("\"}")
                .ok_or(format!("line {lineno}: malformed count label"))?;
            counts.insert(stage.to_string(), value as u64);
        }
    }
    for required in REQUIRED_STAGES {
        if !buckets.contains_key(required) {
            return Err(format!("missing histogram series for stage {required}"));
        }
    }
    for (stage, series) in &buckets {
        let mut prev = 0u64;
        let mut prev_bound = f64::NEG_INFINITY;
        for &(bound, cum) in series {
            if bound <= prev_bound {
                return Err(format!("stage {stage}: le bounds not increasing"));
            }
            if cum < prev {
                return Err(format!("stage {stage}: cumulative buckets decrease"));
            }
            prev = cum;
            prev_bound = bound;
        }
        let (last_bound, last_cum) = *series.last().unwrap();
        if !last_bound.is_infinite() {
            return Err(format!("stage {stage}: missing +Inf bucket"));
        }
        match counts.get(stage) {
            Some(&c) if c == last_cum => {}
            Some(&c) => {
                return Err(format!(
                    "stage {stage}: +Inf bucket {last_cum} != count {c}"
                ))
            }
            None => return Err(format!("stage {stage}: missing _count series")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{LatencyHistogram, Stage};
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mk = |values: &[u64]| {
            let h = LatencyHistogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let stages: Vec<(Stage, HistogramSnapshot)> = Stage::ALL
            .iter()
            .map(|&s| (s, mk(&[100, 200, 400, 8_000])))
            .collect();
        let mut shuffle = stages[Stage::ShuffleRequest as usize].1.clone();
        shuffle.merge(&stages[Stage::ShuffleResponse as usize].1);
        let layer = LayerSnapshot {
            requests: 4,
            responses: 4,
            ..LayerSnapshot::default()
        };
        TelemetryReport {
            stages,
            shuffle,
            layers: vec![("ua-worker-0".into(), layer)],
            trace_policy: "rerandomize".into(),
            spans_pushed: 24,
            spans_exported: 24,
            spans_dropped: 0,
        }
    }

    #[test]
    fn json_snapshot_validates() {
        let v = json_snapshot(&sample_report());
        validate_json_snapshot(&v).unwrap();
        // And survives a serialize/parse round trip.
        let reparsed = Value::parse(&v.to_json()).unwrap();
        validate_json_snapshot(&reparsed).unwrap();
    }

    #[test]
    fn validator_rejects_leaky_policy() {
        let mut report = sample_report();
        report.trace_policy = "stable-across-shuffle".into();
        let v = json_snapshot(&report);
        let err = validate_json_snapshot(&v).unwrap_err();
        assert!(err.contains("rerandomize"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_stage_and_empty_stage() {
        let mut v = json_snapshot(&sample_report());
        let stages = v.get_mut("stages").unwrap();
        stages.insert("ua", Value::Null);
        assert!(validate_json_snapshot(&v).is_err());

        let mut report = sample_report();
        report.stages[Stage::Ia as usize].1 = HistogramSnapshot::empty();
        let v = json_snapshot(&report);
        let err = validate_json_snapshot(&v).unwrap_err();
        assert!(err.contains("no observations"), "{err}");
    }

    #[test]
    fn prometheus_text_validates_and_mentions_every_stage() {
        let text = prometheus_text(&sample_report());
        validate_prometheus(&text).unwrap();
        for s in Stage::ALL {
            assert!(text.contains(&format!("stage=\"{}\"", s.as_str())));
        }
        assert!(text.contains("pprox_layer_requests_total{layer=\"ua-worker-0\"} 4"));
    }

    #[test]
    fn prometheus_validator_catches_corruption() {
        let text = prometheus_text(&sample_report());
        // Breaking the +Inf bucket must be caught.
        let broken = text.replace(
            "pprox_stage_latency_us_bucket{stage=\"ua\",le=\"+Inf\"} 4",
            "pprox_stage_latency_us_bucket{stage=\"ua\",le=\"+Inf\"} 3",
        );
        assert_ne!(text, broken);
        assert!(validate_prometheus(&broken).is_err());
        // Dropping a required stage must be caught.
        let gone: String = text
            .lines()
            .filter(|l| !l.contains("stage=\"lrs\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_prometheus(&gone).is_err());
    }
}
