//! The event-driven, multi-threaded proxy deployment (§5).
//!
//! The paper's proxy splits each layer into a *server* part — which
//! "handles connection requests and schedules their processing,
//! implementing shuffling" — and a *data-processing* part, "a pool of
//! threads running in the SGX enclave" consuming work from a shared
//! concurrent queue. This module reproduces that architecture with OS
//! threads and crossbeam channels (the lock-free concurrent-queue role):
//!
//! ```text
//! clients ─► admission gate ─► UA server (shuffle S) ─► UA workers
//!            ─► IA workers (enclave ECALLs + resilient LRS call)
//!            ─► response server (shuffle S) ─► client reply channels
//! ```
//!
//! Shuffling happens in real time: the UA server buffers up to `S`
//! requests (or until the timer expires) and releases them in randomized
//! order; the response server does the same for responses, per §4.3.
//!
//! # Fault tolerance
//!
//! The pipeline is wrapped in the [`crate::resilience`] machinery:
//!
//! * every admitted request carries a [`Deadline`]; stages drop expired
//!   work with [`PProxError::Deadline`] instead of processing it;
//! * the LRS call runs on a [`TimeoutPool`] with per-attempt timeouts,
//!   decorrelated-jitter retries for 5xx/timeouts, and a shared
//!   [`CircuitBreaker`] that sheds load with [`PProxError::Unavailable`]
//!   while the backend is sick;
//! * ingress is bounded by an [`AdmissionGate`] — beyond
//!   `resilience.max_inflight` concurrent requests, [`PProxPipeline::submit`]
//!   returns [`PProxError::Overloaded`] immediately;
//! * enclaves are supervised: a crashed enclave (see
//!   [`pprox_sgx::Platform::crash_enclave`]) is detected at the next
//!   ECALL, a replacement is loaded and re-provisioned through the normal
//!   attestation flow, and the call is retried on the fresh instance.

use crate::config::PProxConfig;
use crate::ia::{IaOptions, IaState};
use crate::keys::{KeyProvisioner, IA_CODE_IDENTITY, UA_CODE_IDENTITY};
use crate::message::{ClientEnvelope, EncryptedList, LayerEnvelope, Op};
use crate::metrics::{LayerMetrics, MetricsRegistry};
use crate::resilience::{
    AdmissionGate, AdmissionPermit, BreakerState, CallTimedOut, CircuitBreaker, Deadline,
    ResilienceConfig, RetryBackoff, TimeoutPool,
};
use crate::shuffler::ShuffleBuffer;
use crate::telemetry::{SpanRecord, Stage, Telemetry, TraceId};
use crate::ua::UaState;
use crate::{PProxError, UserClient};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use pprox_crypto::rng::SecureRng;
use pprox_lrs::api::{
    HttpRequest, HttpResponse, RecommendationList, RestHandler, EVENTS_PATH, QUERIES_PATH,
};
use pprox_sgx::{Enclave, EnclaveApp, EnclaveError, Platform};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completion channel for one submitted request.
#[derive(Debug)]
pub enum Completion {
    /// Acknowledgement of a post.
    Post(Result<(), PProxError>),
    /// Encrypted recommendation list for a get.
    Get(Result<EncryptedList, PProxError>),
}

/// Receiving end for one submitted request's [`Completion`], as returned
/// by [`PProxPipeline::submit`].
pub type CompletionReceiver = Receiver<Completion>;

struct Job {
    envelope: ClientEnvelope,
    reply: Sender<Completion>,
    deadline: Deadline,
    permit: AdmissionPermit,
    // Telemetry trace segment this job currently belongs to; replaced
    // with a fresh random ID at every shuffle flush.
    trace: TraceId,
    // Admission time on the telemetry clock, for the e2e histogram.
    accepted_us: u64,
}

struct IaJob {
    layer_env: LayerEnvelope,
    reply: Sender<Completion>,
    deadline: Deadline,
    permit: AdmissionPermit,
    trace: TraceId,
    accepted_us: u64,
}

struct ResponseJob {
    completion: Completion,
    reply: Sender<Completion>,
    // Held until the response is delivered so the admission gate tracks
    // true end-to-end in-flight occupancy; released on drop.
    permit: AdmissionPermit,
    trace: TraceId,
    accepted_us: u64,
}

/// Shuffle-server access to an item's trace segment: read it to stamp the
/// dwell span, replace it to cut the linkage across the boundary.
trait Traced {
    fn trace(&self) -> TraceId;
    fn set_trace(&mut self, trace: TraceId);
}

impl Traced for Job {
    fn trace(&self) -> TraceId {
        self.trace
    }
    fn set_trace(&mut self, trace: TraceId) {
        self.trace = trace;
    }
}

impl Traced for ResponseJob {
    fn trace(&self) -> TraceId {
        self.trace
    }
    fn set_trace(&mut self, trace: TraceId) {
        self.trace = trace;
    }
}

/// A supervised enclave slot: the live enclave plus the recipe to replace
/// it after a crash.
///
/// Workers call through the slot; when an ECALL reports
/// [`EnclaveError::Crashed`], the supervisor loads a fresh enclave of the
/// same code identity, re-provisions it through attestation, swaps it into
/// the slot, and retries the call once. Replacement is single-flight: the
/// first worker to observe the crash performs it, racers find the slot
/// already holding a live enclave.
struct SupervisedEnclave<T: EnclaveApp> {
    slot: RwLock<Arc<Enclave<T>>>,
    reload: Box<dyn Fn() -> Result<Arc<Enclave<T>>, PProxError> + Send + Sync>,
    restart_lock: Mutex<()>,
    restarts: Arc<AtomicU64>,
}

impl<T: EnclaveApp> SupervisedEnclave<T> {
    fn new(
        initial: Arc<Enclave<T>>,
        restarts: Arc<AtomicU64>,
        reload: impl Fn() -> Result<Arc<Enclave<T>>, PProxError> + Send + Sync + 'static,
    ) -> Self {
        SupervisedEnclave {
            slot: RwLock::new(initial),
            reload: Box::new(reload),
            restart_lock: Mutex::new(()),
            restarts,
        }
    }

    /// The simulated ECALL, with crash supervision: on
    /// [`EnclaveError::Crashed`] the enclave is replaced and the call
    /// retried once on the fresh instance.
    fn call<R>(&self, f: impl Fn(&mut T) -> R) -> Result<R, PProxError> {
        for _ in 0..2 {
            let enclave = self.slot.read().clone();
            match enclave.call(|state| f(state)) {
                Ok(r) => return Ok(r),
                Err(EnclaveError::Crashed) => self.replace(&enclave)?,
                Err(e) => return Err(e.into()),
            }
        }
        // The replacement crashed too before we could use it.
        Err(PProxError::Unavailable)
    }

    fn replace(&self, dead: &Arc<Enclave<T>>) -> Result<(), PProxError> {
        let _guard = self.restart_lock.lock();
        {
            let current = self.slot.read();
            // Another worker already swapped in a replacement.
            if !Arc::ptr_eq(&current, dead) {
                return Ok(());
            }
        }
        let fresh = (self.reload)()?;
        *self.slot.write() = fresh;
        self.restarts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Point-in-time health of the pipeline's resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Requests admitted and not yet answered.
    pub in_flight: usize,
    /// Submissions rejected by admission control.
    pub admission_rejected: u64,
    /// Current LRS circuit-breaker state.
    pub breaker_state: BreakerState,
    /// LRS calls shed by the breaker.
    pub breaker_rejected: u64,
    /// How many times the breaker tripped open.
    pub breaker_times_opened: u64,
    /// LRS-pool workers replaced after being stuck in a hung call.
    pub lrs_worker_replacements: u64,
    /// Enclaves re-provisioned after an injected crash.
    pub enclave_restarts: u64,
}

/// A running multi-threaded PProx deployment.
///
/// Dropping the pipeline (or calling [`shutdown`](Self::shutdown)) drains
/// the shuffle buffers and joins all threads.
pub struct PProxPipeline {
    ingress: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    provisioner: Arc<KeyProvisioner>,
    encryption: bool,
    client_seq: AtomicU64,
    platform: Platform,
    metrics: MetricsRegistry,
    resilience: ResilienceConfig,
    gate: AdmissionGate,
    breaker: Arc<CircuitBreaker>,
    lrs_pool: Arc<TimeoutPool>,
    enclave_restarts: Arc<AtomicU64>,
    ingress_metrics: Arc<LayerMetrics>,
    trace_rng: Mutex<SecureRng>,
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for PProxPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PProxPipeline")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl PProxPipeline {
    /// Builds and starts the pipeline: provisions enclaves and spawns the
    /// server and worker threads (`workers_per_layer` data-processing
    /// threads per layer — the paper uses one per core).
    ///
    /// # Errors
    ///
    /// Propagates attestation/provisioning failures.
    ///
    /// # Panics
    ///
    /// Panics if `workers_per_layer` is zero.
    pub fn new(
        config: PProxConfig,
        lrs: Arc<dyn RestHandler>,
        seed: u64,
        workers_per_layer: usize,
    ) -> Result<Self, PProxError> {
        assert!(workers_per_layer > 0, "need at least one worker per layer");
        let mut rng = SecureRng::from_seed(seed);
        let provisioner = Arc::new(KeyProvisioner::generate(config.modulus_bits, &mut rng));
        let platform = Platform::new(&mut rng);
        let enclave_restarts = Arc::new(AtomicU64::new(0));
        let telemetry = Arc::new(Telemetry::new(config.telemetry));

        // In-enclave histograms: each layer state times its own processing
        // and records into the matching telemetry stage. Reload closures
        // re-attach after a crash so replacements keep reporting.
        let ua_hist = telemetry.stages().histogram(Stage::Ua).clone();
        let ia_hist = telemetry.stages().histogram(Stage::Ia).clone();
        let mut ua_layer: Vec<Arc<SupervisedEnclave<UaState>>> = Vec::new();
        for _ in 0..config.ua_instances.max(1) {
            let enclave = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
            provisioner.provision_ua(&platform, &enclave)?;
            let h = ua_hist.clone();
            enclave
                .call(|ua| ua.set_processing_histogram(h))
                .map_err(PProxError::from)?;
            let (p, prov, hist) = (platform.clone(), provisioner.clone(), ua_hist.clone());
            ua_layer.push(Arc::new(SupervisedEnclave::new(
                enclave,
                enclave_restarts.clone(),
                move || {
                    let fresh = p.load_enclave::<UaState>(UA_CODE_IDENTITY);
                    prov.provision_ua(&p, &fresh)?;
                    let h = hist.clone();
                    fresh
                        .call(|ua| ua.set_processing_histogram(h))
                        .map_err(PProxError::from)?;
                    Ok(fresh)
                },
            )));
        }
        let mut ia_layer: Vec<Arc<SupervisedEnclave<IaState>>> = Vec::new();
        for _ in 0..config.ia_instances.max(1) {
            let enclave = platform.load_enclave::<IaState>(IA_CODE_IDENTITY);
            provisioner.provision_ia(&platform, &enclave)?;
            let h = ia_hist.clone();
            enclave
                .call(|ia| ia.set_processing_histogram(h))
                .map_err(PProxError::from)?;
            let (p, prov, hist) = (platform.clone(), provisioner.clone(), ia_hist.clone());
            ia_layer.push(Arc::new(SupervisedEnclave::new(
                enclave,
                enclave_restarts.clone(),
                move || {
                    let fresh = p.load_enclave::<IaState>(IA_CODE_IDENTITY);
                    prov.provision_ia(&p, &fresh)?;
                    let h = hist.clone();
                    fresh
                        .call(|ia| ia.set_processing_histogram(h))
                        .map_err(PProxError::from)?;
                    Ok(fresh)
                },
            )));
        }

        let resilience = config.resilience.clone();
        let gate = AdmissionGate::new(resilience.max_inflight);
        let breaker = Arc::new(CircuitBreaker::from_config(&resilience));
        let mut lrs_pool = TimeoutPool::new(workers_per_layer);
        lrs_pool.set_attempt_histogram(telemetry.stages().histogram(Stage::LrsAttempt).clone());
        let lrs_pool = Arc::new(lrs_pool);

        let metrics = MetricsRegistry::new();
        let ingress_metrics = metrics.register("ingress");
        let (ingress_tx, ingress_rx) = unbounded::<Job>();
        let (ua_work_tx, ua_work_rx) = unbounded::<Job>();
        let (ia_work_tx, ia_work_rx) = unbounded::<IaJob>();
        let (resp_tx, resp_rx) = unbounded::<ResponseJob>();

        let mut handles = Vec::new();

        // UA server thread: request-direction shuffling.
        {
            let shuffle = config.shuffle;
            let mut buffer: ShuffleBuffer<Job> = ShuffleBuffer::new(shuffle, seed ^ 0x0a5e);
            let ua_work_tx = ua_work_tx.clone();
            let server_metrics = metrics.register("ua-shuffle");
            let telemetry = telemetry.clone();
            let rerand_rng = SecureRng::from_seed(seed ^ 0x7e1e_0001);
            handles.push(std::thread::spawn(move || {
                shuffle_server(
                    ingress_rx,
                    &mut buffer,
                    server_metrics,
                    telemetry,
                    Stage::ShuffleRequest,
                    rerand_rng,
                    |job| {
                        let _ = ua_work_tx.send(job);
                    },
                );
            }));
        }
        drop(ua_work_tx);

        // UA data-processing workers.
        let encryption = config.encryption;
        for w in 0..workers_per_layer {
            let rx = ua_work_rx.clone();
            let ia_tx = ia_work_tx.clone();
            let enclave = ua_layer[w % ua_layer.len()].clone();
            let layer_metrics = metrics.register(format!("ua-worker-{w}"));
            let telemetry = telemetry.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let span_start = telemetry.now_us();
                    let started = Instant::now();
                    let result = if job.deadline.expired() {
                        layer_metrics.record_deadline_miss();
                        Err(PProxError::Deadline)
                    } else {
                        enclave
                            .call(|ua| ua.process(&job.envelope, encryption))
                            .and_then(|r| r)
                    };
                    layer_metrics.record_request(started.elapsed().as_micros() as u64);
                    if result.is_err() {
                        layer_metrics.record_error();
                    }
                    // Ring-only: the `ua` histogram is fed in-enclave by
                    // `UaState`, so pushing the span via `record_span`
                    // would double-count the stage.
                    telemetry.spans().push(SpanRecord {
                        trace: job.trace,
                        stage: Stage::Ua,
                        instance: w as u16,
                        start_us: span_start,
                        duration_us: started.elapsed().as_micros() as u64,
                        ok: result.is_ok(),
                    });
                    match result {
                        Ok(layer_env) => {
                            let _ = ia_tx.send(IaJob {
                                layer_env,
                                reply: job.reply,
                                deadline: job.deadline,
                                permit: job.permit,
                                trace: job.trace,
                                accepted_us: job.accepted_us,
                            });
                        }
                        Err(e) => {
                            let completion = match job.envelope.op {
                                Op::Post => Completion::Post(Err(e)),
                                Op::Get => Completion::Get(Err(e)),
                            };
                            let _ = job.reply.send(completion);
                        }
                    }
                }
            }));
        }
        drop(ia_work_tx);
        drop(ua_work_rx);

        // IA data-processing workers (they also perform the LRS call, as
        // the IA layer is the one that "directly interacts with the LRS").
        let options = IaOptions {
            encryption: config.encryption,
            item_pseudonymization: config.item_pseudonymization,
        };
        for w in 0..workers_per_layer {
            let rx = ia_work_rx.clone();
            let resp_tx = resp_tx.clone();
            let enclave = ia_layer[w % ia_layer.len()].clone();
            let lrs = lrs.clone();
            let breaker = breaker.clone();
            let pool = lrs_pool.clone();
            let resilience = resilience.clone();
            let layer_metrics = metrics.register(format!("ia-worker-{w}"));
            let telemetry = telemetry.clone();
            let seed_base = seed ^ ((w as u64) << 32) ^ 0x1a;
            handles.push(std::thread::spawn(move || {
                let mut processed = 0u64;
                while let Ok(job) = rx.recv() {
                    processed += 1;
                    let started = Instant::now();
                    let completion = process_ia_job(
                        IaCallCtx {
                            enclave: &enclave,
                            lrs: &lrs,
                            options,
                            breaker: &breaker,
                            pool: &pool,
                            resilience: &resilience,
                            metrics: &layer_metrics,
                            backoff_seed: seed_base.wrapping_add(processed),
                            telemetry: &telemetry,
                            trace: job.trace,
                            instance: w as u16,
                        },
                        &job,
                    );
                    layer_metrics.record_request(started.elapsed().as_micros() as u64);
                    match &completion {
                        Completion::Post(Err(_)) | Completion::Get(Err(_)) => {
                            layer_metrics.record_error()
                        }
                        _ => layer_metrics.record_response(),
                    }
                    let IaJob {
                        reply,
                        permit,
                        trace,
                        accepted_us,
                        ..
                    } = job;
                    let _ = resp_tx.send(ResponseJob {
                        completion,
                        reply,
                        permit,
                        trace,
                        accepted_us,
                    });
                }
            }));
        }
        drop(resp_tx);
        drop(ia_work_rx);

        // Response server thread: response-direction shuffling.
        {
            let shuffle = config.shuffle;
            let mut buffer: ShuffleBuffer<ResponseJob> = ShuffleBuffer::new(shuffle, seed ^ 0x1a5e);
            let server_metrics = metrics.register("response-shuffle");
            let server_telemetry = telemetry.clone();
            let e2e_telemetry = telemetry.clone();
            let rerand_rng = SecureRng::from_seed(seed ^ 0x7e1e_0002);
            handles.push(std::thread::spawn(move || {
                shuffle_server(
                    resp_rx,
                    &mut buffer,
                    server_metrics,
                    server_telemetry,
                    Stage::ShuffleResponse,
                    rerand_rng,
                    |job| {
                        // Histogram-only: a per-request e2e *span* would tie
                        // total latency to delivery time and hand the
                        // adversary an arrival-order oracle.
                        let e2e = e2e_telemetry.now_us().saturating_sub(job.accepted_us);
                        e2e_telemetry.record_duration(Stage::E2e, e2e);
                        let _ = job.reply.send(job.completion);
                        drop(job.permit); // request fully answered: free the slot
                    },
                );
            }));
        }

        Ok(PProxPipeline {
            ingress: Some(ingress_tx),
            handles,
            provisioner,
            encryption: config.encryption,
            client_seq: AtomicU64::new(0),
            platform,
            metrics,
            resilience,
            gate,
            breaker,
            lrs_pool,
            enclave_restarts,
            ingress_metrics,
            trace_rng: Mutex::new(SecureRng::from_seed(seed ^ 0x77ace)),
            telemetry,
        })
    }

    /// A user-side library wired to this deployment, reporting its
    /// `client_encrypt` spans into the deployment's telemetry hub.
    pub fn client(&self) -> UserClient {
        let seq = self.client_seq.fetch_add(1, Ordering::Relaxed);
        let mut client = if self.encryption {
            UserClient::new(self.provisioner.client_keys(), 0xc11e ^ seq)
        } else {
            UserClient::new_passthrough(self.provisioner.client_keys(), 0xc11e ^ seq)
        };
        client.attach_telemetry(self.telemetry.clone());
        client
    }

    /// The simulated SGX platform hosting the layers.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Operational counters for this pipeline's workers.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The telemetry hub: per-stage latency histograms and the span ring.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Health of the resilience layer (gate, breaker, supervisors).
    pub fn resilience_stats(&self) -> ResilienceStats {
        ResilienceStats {
            in_flight: self.gate.in_flight(),
            admission_rejected: self.gate.rejected(),
            breaker_state: self.breaker.state(),
            breaker_rejected: self.breaker.rejected(),
            breaker_times_opened: self.breaker.times_opened(),
            lrs_worker_replacements: self.lrs_pool.replacements(),
            enclave_restarts: self.enclave_restarts.load(Ordering::Relaxed),
        }
    }

    /// Fraction of submissions shed at the admission gate — feed for
    /// [`crate::autoscale::Autoscaler::observe_with_pressure`].
    pub fn rejection_fraction(&self) -> f64 {
        self.gate.rejection_fraction()
    }

    /// Enclaves re-provisioned after a crash.
    pub fn enclave_restarts(&self) -> u64 {
        self.enclave_restarts.load(Ordering::Relaxed)
    }

    /// Submits a request; the returned channel yields its completion.
    ///
    /// Never blocks and never panics. The request is stamped with the
    /// configured deadline budget; its completion arrives within roughly
    /// that budget, as a typed error if the budget is exceeded.
    ///
    /// # Errors
    ///
    /// [`PProxError::Overloaded`] when `resilience.max_inflight` requests
    /// are already in flight; [`PProxError::Unavailable`] when the
    /// pipeline is shutting down.
    pub fn submit(&self, envelope: ClientEnvelope) -> Result<CompletionReceiver, PProxError> {
        let ingress = self.ingress.as_ref().ok_or(PProxError::Unavailable)?;
        let Some(permit) = self.gate.try_admit() else {
            self.ingress_metrics.record_rejected();
            return Err(PProxError::Overloaded);
        };
        self.ingress_metrics.record_request(0);
        let (tx, rx) = bounded(1);
        let job = Job {
            envelope,
            reply: tx,
            deadline: Deadline::starting_now(self.resilience.deadline),
            permit,
            trace: TraceId::random(&mut self.trace_rng.lock()),
            accepted_us: self.telemetry.now_us(),
        };
        // A send failure means the UA server exited (shutdown race); the
        // permit inside the failed job is released on drop.
        ingress.send(job).map_err(|_| PProxError::Unavailable)?;
        Ok(rx)
    }

    /// Stops intake, drains buffers, and joins all threads.
    pub fn shutdown(mut self) {
        self.ingress.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PProxPipeline {
    fn drop(&mut self) {
        self.ingress.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Generic shuffle-server loop shared by the UA (requests) and response
/// servers: buffer items until `S` or the timer, then release the batch in
/// randomized order via `forward`.
///
/// This is also the telemetry trust boundary: at every flush, each item's
/// dwell is recorded as a span under the trace ID it *arrived* with, and
/// the item then leaves under a freshly drawn ID (per the configured
/// [`crate::telemetry::TraceIdPolicy`]). An observer of the exported span
/// stream therefore cannot join a pre-shuffle segment with a post-shuffle
/// one except by guessing within the flush group — the §6.2 `1/S` bound.
fn shuffle_server<T: Traced>(
    rx: Receiver<T>,
    buffer: &mut ShuffleBuffer<T>,
    metrics: Arc<LayerMetrics>,
    telemetry: Arc<Telemetry>,
    stage: Stage,
    mut rng: SecureRng,
    mut forward: impl FnMut(T),
) {
    let mut release = |flush: crate::shuffler::Flush<T>, timeout: bool| {
        metrics.record_flush(timeout);
        let released_us = telemetry.now_us();
        let policy = telemetry.policy();
        for (mut item, arrived_us) in flush.items.into_iter().zip(flush.arrived_at_us) {
            telemetry.record_span(SpanRecord {
                trace: item.trace(),
                stage,
                instance: 0,
                start_us: arrived_us,
                duration_us: released_us.saturating_sub(arrived_us),
                ok: true,
            });
            item.set_trace(policy.next_trace(item.trace(), &mut rng));
            forward(item);
        }
    };
    loop {
        match buffer.deadline_us() {
            // An armed timer: wait for the next item at most until it fires.
            Some(deadline) => {
                let timeout = Duration::from_micros(deadline.saturating_sub(telemetry.now_us()));
                match rx.recv_timeout(timeout) {
                    Ok(item) => {
                        if let Some(flush) = buffer.push(telemetry.now_us(), item) {
                            release(flush, false);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if let Some(flush) = buffer.poll_timeout(telemetry.now_us()) {
                            release(flush, true);
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Empty buffer, no timer to honor: block until work arrives
            // instead of waking idly on a poll interval.
            None => match rx.recv() {
                Ok(item) => {
                    if let Some(flush) = buffer.push(telemetry.now_us(), item) {
                        release(flush, false);
                    }
                }
                Err(_) => break,
            },
        }
    }
    if let Some(flush) = buffer.drain() {
        release(flush, false);
    }
}

/// Everything an IA worker needs to process one job resiliently.
struct IaCallCtx<'a> {
    enclave: &'a SupervisedEnclave<IaState>,
    lrs: &'a Arc<dyn RestHandler>,
    options: IaOptions,
    breaker: &'a CircuitBreaker,
    pool: &'a TimeoutPool,
    resilience: &'a ResilienceConfig,
    metrics: &'a LayerMetrics,
    backoff_seed: u64,
    telemetry: &'a Telemetry,
    trace: TraceId,
    instance: u16,
}

/// One LRS call under the full resilience policy: per-attempt timeout
/// clamped to the remaining deadline, circuit breaking, and retries with
/// decorrelated-jitter backoff for retryable failures (5xx, timeout).
/// Definitive answers (2xx/4xx) return immediately.
///
/// The whole resilient call — every attempt plus backoff sleeps — is one
/// `lrs` telemetry span; individual attempts feed the `lrs_attempt`
/// histogram via the [`TimeoutPool`].
fn call_lrs_resilient(
    ctx: &IaCallCtx<'_>,
    deadline: Deadline,
    request: &HttpRequest,
) -> Result<HttpResponse, PProxError> {
    let start_us = ctx.telemetry.now_us();
    let result = call_lrs_resilient_inner(ctx, deadline, request);
    ctx.telemetry.record_span(SpanRecord {
        trace: ctx.trace,
        stage: Stage::Lrs,
        instance: ctx.instance,
        start_us,
        duration_us: ctx.telemetry.now_us().saturating_sub(start_us),
        ok: result.is_ok(),
    });
    result
}

fn call_lrs_resilient_inner(
    ctx: &IaCallCtx<'_>,
    deadline: Deadline,
    request: &HttpRequest,
) -> Result<HttpResponse, PProxError> {
    let cfg = ctx.resilience;
    let mut backoff = RetryBackoff::new(cfg.retry_base, cfg.retry_cap, ctx.backoff_seed);
    let mut attempts = 0u32;
    loop {
        let Some(remaining) = deadline.remaining() else {
            ctx.metrics.record_deadline_miss();
            return Err(PProxError::Deadline);
        };
        if !ctx.breaker.try_acquire() {
            ctx.metrics.record_rejected();
            return Err(PProxError::Unavailable);
        }
        let per_try = cfg.lrs_timeout.min(remaining);
        let req = request.clone();
        let lrs = ctx.lrs.clone();
        let outcome = ctx.pool.call(per_try, move || lrs.handle(&req));
        attempts += 1;
        let failure = match outcome {
            Ok(resp) if resp.status >= 500 => {
                ctx.breaker.record_failure();
                PProxError::Lrs {
                    status: resp.status,
                }
            }
            Ok(resp) => {
                // Success, or a definitive client error (4xx): the backend
                // is alive and gave its final answer — no retry.
                ctx.breaker.record_success();
                return Ok(resp);
            }
            Err(CallTimedOut) => {
                ctx.breaker.record_failure();
                PProxError::Deadline
            }
        };
        if attempts > cfg.max_retries {
            if failure == PProxError::Deadline {
                ctx.metrics.record_deadline_miss();
            }
            return Err(failure);
        }
        let delay = backoff.next_delay();
        match deadline.remaining() {
            Some(rem) if rem > delay => std::thread::sleep(delay),
            _ => {
                ctx.metrics.record_deadline_miss();
                return Err(PProxError::Deadline);
            }
        }
        ctx.metrics.record_retry();
    }
}

/// Calls into the IA enclave while accumulating enclave wall time into
/// `acc` — the `ia` span covers in-enclave work only, not the LRS call or
/// backoff sleeps sandwiched between ECALLs.
fn timed_ecall<R>(
    ctx: &IaCallCtx<'_>,
    acc: &std::cell::Cell<u64>,
    f: impl Fn(&mut IaState) -> R,
) -> Result<R, PProxError> {
    let started = Instant::now();
    let result = ctx.enclave.call(f);
    acc.set(acc.get() + started.elapsed().as_micros() as u64);
    result
}

fn process_ia_job(ctx: IaCallCtx<'_>, job: &IaJob) -> Completion {
    if job.deadline.expired() {
        ctx.metrics.record_deadline_miss();
        return match job.layer_env.op {
            Op::Post => Completion::Post(Err(PProxError::Deadline)),
            Op::Get => Completion::Get(Err(PProxError::Deadline)),
        };
    }
    let enclave_us = std::cell::Cell::new(0u64);
    let span_start = ctx.telemetry.now_us();
    let completion = match job.layer_env.op {
        Op::Post => {
            let result = (|| {
                let event = timed_ecall(&ctx, &enclave_us, |ia| {
                    ia.process_post(&job.layer_env, ctx.options)
                })??;
                let response = call_lrs_resilient(
                    &ctx,
                    job.deadline,
                    &HttpRequest::post(EVENTS_PATH, event.to_json()),
                )?;
                if !response.is_success() {
                    return Err(PProxError::Lrs {
                        status: response.status,
                    });
                }
                Ok(())
            })();
            Completion::Post(result)
        }
        Op::Get => {
            let result = (|| {
                let (query, token) = timed_ecall(&ctx, &enclave_us, |ia| {
                    ia.process_get(&job.layer_env, ctx.options)
                })??;
                let response = call_lrs_resilient(
                    &ctx,
                    job.deadline,
                    &HttpRequest::post(QUERIES_PATH, query.to_json()),
                )?;
                if !response.is_success() {
                    return Err(PProxError::Lrs {
                        status: response.status,
                    });
                }
                let list = RecommendationList::from_json(&response.body)
                    .ok_or(PProxError::MalformedMessage)?;
                let ids: Vec<String> = list.items.into_iter().map(|s| s.item).collect();
                timed_ecall(&ctx, &enclave_us, |ia| {
                    ia.process_get_response(token, &ids, ctx.options)
                })?
            })();
            Completion::Get(result)
        }
    };
    let ok = !matches!(
        &completion,
        Completion::Post(Err(_)) | Completion::Get(Err(_))
    );
    // Span duration is the enclave time; the histogram is fed in-enclave
    // by `IaState`, so the ring-only push avoids double counting.
    ctx.telemetry.spans().push(SpanRecord {
        trace: ctx.trace,
        stage: Stage::Ia,
        instance: ctx.instance,
        start_us: span_start,
        duration_us: enclave_us.get(),
        ok,
    });
    completion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffler::ShuffleConfig;
    use pprox_lrs::stub::StubLrs;
    use pprox_lrs::MAX_RECOMMENDATIONS;

    fn pipeline(shuffle: ShuffleConfig) -> PProxPipeline {
        let config = PProxConfig {
            shuffle,
            modulus_bits: 1152,
            ..PProxConfig::default()
        };
        PProxPipeline::new(config, Arc::new(StubLrs::new()), 77, 2).unwrap()
    }

    #[test]
    fn single_get_completes_without_shuffling() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let (env, ticket) = client.get("alice").unwrap();
        let rx = p.submit(env).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Get(Ok(list)) => {
                let items = client.open_response(&ticket, &list).unwrap();
                assert_eq!(items.len(), MAX_RECOMMENDATIONS);
            }
            other => panic!("unexpected completion: {other:?}"),
        }
        p.shutdown();
    }

    #[test]
    fn posts_and_gets_interleave() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                let env = client.post(&format!("u{i}"), "item", None).unwrap();
                rxs.push((None, p.submit(env).unwrap()));
            } else {
                let (env, ticket) = client.get(&format!("u{i}")).unwrap();
                rxs.push((Some(ticket), p.submit(env).unwrap()));
            }
        }
        for (ticket, rx) in rxs {
            match (ticket, rx.recv_timeout(Duration::from_secs(10)).unwrap()) {
                (None, Completion::Post(Ok(()))) => {}
                (Some(t), Completion::Get(Ok(list))) => {
                    assert!(!client.open_response(&t, &list).unwrap().is_empty());
                }
                (_, other) => panic!("unexpected: {other:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn shuffled_batch_all_complete() {
        // S=5 with a short timer: submit 12 requests (2 full flushes + a
        // timeout flush) and expect 12 completions.
        let p = pipeline(ShuffleConfig {
            size: 5,
            timeout_us: 100_000,
        });
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..12 {
            let env = client.post(&format!("u{i}"), "item", None).unwrap();
            rxs.push(p.submit(env).unwrap());
        }
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                Completion::Post(Ok(())) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn partial_batch_flushes_on_timer() {
        let p = pipeline(ShuffleConfig {
            size: 100, // never fills
            timeout_us: 50_000,
        });
        let mut client = p.client();
        let env = client.post("lonely", "item", None).unwrap();
        let rx = p.submit(env).unwrap();
        let t = Instant::now();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Post(Ok(())) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // Two timers (request + response shuffler) of 50 ms each bound the
        // latency from below; allow generous scheduling slack above.
        assert!(t.elapsed() >= Duration::from_millis(50));
        p.shutdown();
    }

    #[test]
    fn metrics_track_worker_activity() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..6 {
            let env = client.post(&format!("u{i}"), "item", None).unwrap();
            rxs.push(p.submit(env).unwrap());
        }
        for rx in rxs {
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let snapshot = p.metrics().snapshot();
        // ingress + 2 shuffle servers + 2 UA workers + 2 IA workers.
        assert_eq!(snapshot.len(), 7);
        assert!(snapshot.iter().any(|(n, _)| n == "ingress"));
        let worker_requests: u64 = snapshot
            .iter()
            .filter(|(n, _)| n.starts_with("ua-worker") || n.starts_with("ia-worker"))
            .map(|(_, s)| s.requests)
            .sum();
        assert_eq!(
            worker_requests, 12,
            "each request crosses one UA and one IA worker"
        );
        let ingress = snapshot.iter().find(|(n, _)| n == "ingress").unwrap();
        assert_eq!(ingress.1.requests, 6);
        assert_eq!(ingress.1.rejected, 0);
        let errors: u64 = snapshot.iter().map(|(_, s)| s.errors).sum();
        assert_eq!(errors, 0);
        p.shutdown();
    }

    #[test]
    fn telemetry_covers_stages_and_rerandomizes_traces() {
        let p = pipeline(ShuffleConfig {
            size: 4,
            timeout_us: 50_000,
        });
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..8 {
            let (env, ticket) = client.get(&format!("u{i}")).unwrap();
            rxs.push((ticket, p.submit(env).unwrap()));
        }
        for (_, rx) in &rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(10)).unwrap(),
                Completion::Get(Ok(_))
            ));
        }
        let t = p.telemetry();
        for stage in [
            Stage::ClientEncrypt,
            Stage::Ua,
            Stage::Ia,
            Stage::Lrs,
            Stage::LrsAttempt,
            Stage::ShuffleRequest,
            Stage::ShuffleResponse,
            Stage::E2e,
        ] {
            assert!(
                t.stages().histogram(stage).count() >= 8,
                "stage {} undercounted: {}",
                stage.as_str(),
                t.stages().histogram(stage).count()
            );
        }
        // The core privacy invariant: no trace ID observed before the
        // request shuffle ever reappears after it.
        let spans = t.spans().snapshot();
        let pre: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| matches!(s.stage, Stage::ClientEncrypt | Stage::ShuffleRequest))
            .map(|s| s.trace.0)
            .collect();
        let post: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| {
                matches!(
                    s.stage,
                    Stage::Ua | Stage::Ia | Stage::Lrs | Stage::ShuffleResponse
                )
            })
            .map(|s| s.trace.0)
            .collect();
        assert!(!pre.is_empty() && !post.is_empty());
        assert!(
            pre.is_disjoint(&post),
            "a trace ID crossed the shuffle boundary"
        );
        assert_eq!(t.spans().dropped(), 0);
        p.shutdown();
    }

    #[test]
    fn drop_drains_cleanly() {
        let p = pipeline(ShuffleConfig {
            size: 100,
            timeout_us: 10_000_000, // long timer: only drain can flush
        });
        let mut client = p.client();
        let env = client.post("u", "i", None).unwrap();
        let rx = p.submit(env).unwrap();
        drop(p); // shutdown drains the buffers
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Post(Ok(())) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn admission_gate_rejects_beyond_max_inflight() {
        let mut config = PProxConfig {
            // A never-flushing shuffle keeps submitted jobs buffered, so
            // in-flight occupancy is fully under the test's control.
            shuffle: ShuffleConfig {
                size: 1000,
                timeout_us: 60_000_000,
            },
            modulus_bits: 1152,
            ..PProxConfig::default()
        };
        config.resilience.max_inflight = 3;
        let p = PProxPipeline::new(config, Arc::new(StubLrs::new()), 5, 1).unwrap();
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..3 {
            let env = client.post(&format!("u{i}"), "item", None).unwrap();
            rxs.push(p.submit(env).unwrap());
        }
        let env = client.post("u-over", "item", None).unwrap();
        assert_eq!(p.submit(env).unwrap_err(), PProxError::Overloaded);
        let stats = p.resilience_stats();
        assert_eq!(stats.in_flight, 3);
        assert_eq!(stats.admission_rejected, 1);
        // Drain: shutdown flushes the buffers; completions release permits.
        drop(p);
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(10)).unwrap(),
                Completion::Post(Ok(()))
            ));
        }
    }

    #[test]
    fn submit_after_shutdown_reports_unavailable() {
        // Exercise the shutdown-race path via the internal field rather
        // than a real half-shut pipeline: ingress gone ⇒ Unavailable.
        let mut p = pipeline(ShuffleConfig::disabled());
        p.ingress.take();
        let mut client = p.client();
        let env = client.post("u", "i", None).unwrap();
        assert_eq!(p.submit(env).unwrap_err(), PProxError::Unavailable);
        // Threads exit because the ingress sender is gone.
        for handle in p.handles.drain(..) {
            handle.join().unwrap();
        }
    }

    #[test]
    fn crashed_ia_enclave_is_replaced_transparently() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        // Warm up: one request through the healthy pipeline.
        let env = client.post("before", "item", None).unwrap();
        let rx = p.submit(env).unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Completion::Post(Ok(()))
        ));
        // Kill the whole IA layer.
        let killed = p
            .platform()
            .crash_layer(pprox_sgx::Measurement::of_code(IA_CODE_IDENTITY));
        assert!(killed >= 1);
        // Service continues: supervisors re-provision on first touch.
        let (env, ticket) = client.get("after").unwrap();
        let rx = p.submit(env).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Get(Ok(list)) => {
                assert!(!client.open_response(&ticket, &list).unwrap().is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(p.enclave_restarts() >= 1);
        assert_eq!(p.platform().crash_count(), killed as u64);
        p.shutdown();
    }
}
