//! The event-driven, multi-threaded proxy deployment (§5).
//!
//! The paper's proxy splits each layer into a *server* part — which
//! "handles connection requests and schedules their processing,
//! implementing shuffling" — and a *data-processing* part, "a pool of
//! threads running in the SGX enclave" consuming work from a shared
//! concurrent queue. This module reproduces that architecture with OS
//! threads and crossbeam channels (the lock-free concurrent-queue role):
//!
//! ```text
//! clients ─► UA server (shuffle S) ─► UA workers (enclave ECALLs)
//!            ─► IA workers (enclave ECALLs + LRS call)
//!            ─► response server (shuffle S) ─► client reply channels
//! ```
//!
//! Shuffling happens in real time: the UA server buffers up to `S`
//! requests (or until the timer expires) and releases them in randomized
//! order; the response server does the same for responses, per §4.3.

use crate::config::PProxConfig;
use crate::ia::{IaOptions, IaState};
use crate::keys::{KeyProvisioner, IA_CODE_IDENTITY, UA_CODE_IDENTITY};
use crate::message::{ClientEnvelope, EncryptedList, Op};
use crate::metrics::MetricsRegistry;
use crate::shuffler::ShuffleBuffer;
use crate::ua::UaState;
use crate::{PProxError, UserClient};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use pprox_crypto::rng::SecureRng;
use pprox_lrs::api::{HttpRequest, RecommendationList, RestHandler, EVENTS_PATH, QUERIES_PATH};
use pprox_sgx::{Enclave, Platform};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completion channel for one submitted request.
#[derive(Debug)]
pub enum Completion {
    /// Acknowledgement of a post.
    Post(Result<(), PProxError>),
    /// Encrypted recommendation list for a get.
    Get(Result<EncryptedList, PProxError>),
}

struct Job {
    envelope: ClientEnvelope,
    reply: Sender<Completion>,
}

struct IaJob {
    layer_env: crate::message::LayerEnvelope,
    reply: Sender<Completion>,
}

struct ResponseJob {
    completion: Completion,
    reply: Sender<Completion>,
}

/// A running multi-threaded PProx deployment.
///
/// Dropping the pipeline (or calling [`shutdown`](Self::shutdown)) drains
/// the shuffle buffers and joins all threads.
pub struct PProxPipeline {
    ingress: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    provisioner: KeyProvisioner,
    encryption: bool,
    client_seq: std::sync::atomic::AtomicU64,
    platform: Platform,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for PProxPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PProxPipeline")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl PProxPipeline {
    /// Builds and starts the pipeline: provisions enclaves and spawns the
    /// server and worker threads (`workers_per_layer` data-processing
    /// threads per layer — the paper uses one per core).
    ///
    /// # Errors
    ///
    /// Propagates attestation/provisioning failures.
    ///
    /// # Panics
    ///
    /// Panics if `workers_per_layer` is zero.
    pub fn new(
        config: PProxConfig,
        lrs: Arc<dyn RestHandler>,
        seed: u64,
        workers_per_layer: usize,
    ) -> Result<Self, PProxError> {
        assert!(workers_per_layer > 0, "need at least one worker per layer");
        let mut rng = SecureRng::from_seed(seed);
        let provisioner = KeyProvisioner::generate(config.modulus_bits, &mut rng);
        let platform = Platform::new(&mut rng);

        let mut ua_layer: Vec<Arc<Enclave<UaState>>> = Vec::new();
        for _ in 0..config.ua_instances.max(1) {
            let enclave = platform.load_enclave::<UaState>(UA_CODE_IDENTITY);
            provisioner.provision_ua(&platform, &enclave)?;
            ua_layer.push(enclave);
        }
        let mut ia_layer: Vec<Arc<Enclave<IaState>>> = Vec::new();
        for _ in 0..config.ia_instances.max(1) {
            let enclave = platform.load_enclave::<IaState>(IA_CODE_IDENTITY);
            provisioner.provision_ia(&platform, &enclave)?;
            ia_layer.push(enclave);
        }

        let metrics = MetricsRegistry::new();
        let (ingress_tx, ingress_rx) = unbounded::<Job>();
        let (ua_work_tx, ua_work_rx) = unbounded::<Job>();
        let (ia_work_tx, ia_work_rx) = unbounded::<IaJob>();
        let (resp_tx, resp_rx) = unbounded::<ResponseJob>();

        let mut handles = Vec::new();
        let start = Instant::now();

        // UA server thread: request-direction shuffling.
        {
            let shuffle = config.shuffle;
            let mut buffer: ShuffleBuffer<Job> = ShuffleBuffer::new(shuffle, seed ^ 0x0a5e);
            let ua_work_tx = ua_work_tx.clone();
            handles.push(std::thread::spawn(move || {
                shuffle_server(start, ingress_rx, &mut buffer, |job| {
                    let _ = ua_work_tx.send(job);
                });
            }));
        }
        drop(ua_work_tx);

        // UA data-processing workers.
        let encryption = config.encryption;
        for w in 0..workers_per_layer {
            let rx = ua_work_rx.clone();
            let ia_tx = ia_work_tx.clone();
            let enclave = ua_layer[w % ua_layer.len()].clone();
            let layer_metrics = metrics.register(format!("ua-worker-{w}"));
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let started = Instant::now();
                    let result = enclave
                        .call(|ua| ua.process(&job.envelope, encryption))
                        .map_err(PProxError::from)
                        .and_then(|r| r);
                    layer_metrics.record_request(started.elapsed().as_micros() as u64);
                    if result.is_err() {
                        layer_metrics.record_error();
                    }
                    match result {
                        Ok(layer_env) => {
                            let _ = ia_tx.send(IaJob {
                                layer_env,
                                reply: job.reply,
                            });
                        }
                        Err(e) => {
                            let completion = match job.envelope.op {
                                Op::Post => Completion::Post(Err(e)),
                                Op::Get => Completion::Get(Err(e)),
                            };
                            let _ = job.reply.send(completion);
                        }
                    }
                }
            }));
        }
        drop(ia_work_tx);
        drop(ua_work_rx);

        // IA data-processing workers (they also perform the LRS call, as
        // the IA layer is the one that "directly interacts with the LRS").
        let options = IaOptions {
            encryption: config.encryption,
            item_pseudonymization: config.item_pseudonymization,
        };
        for w in 0..workers_per_layer {
            let rx = ia_work_rx.clone();
            let resp_tx = resp_tx.clone();
            let enclave = ia_layer[w % ia_layer.len()].clone();
            let lrs = lrs.clone();
            let layer_metrics = metrics.register(format!("ia-worker-{w}"));
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let started = Instant::now();
                    let completion = process_ia_job(&enclave, &lrs, &job, options);
                    layer_metrics.record_request(started.elapsed().as_micros() as u64);
                    match &completion {
                        Completion::Post(Err(_)) | Completion::Get(Err(_)) => {
                            layer_metrics.record_error()
                        }
                        _ => layer_metrics.record_response(),
                    }
                    let _ = resp_tx.send(ResponseJob {
                        completion,
                        reply: job.reply,
                    });
                }
            }));
        }
        drop(resp_tx);
        drop(ia_work_rx);

        // Response server thread: response-direction shuffling.
        {
            let shuffle = config.shuffle;
            let mut buffer: ShuffleBuffer<ResponseJob> =
                ShuffleBuffer::new(shuffle, seed ^ 0x1a5e);
            handles.push(std::thread::spawn(move || {
                shuffle_server(start, resp_rx, &mut buffer, |job| {
                    let _ = job.reply.send(job.completion);
                });
            }));
        }

        Ok(PProxPipeline {
            ingress: Some(ingress_tx),
            handles,
            provisioner,
            encryption: config.encryption,
            client_seq: std::sync::atomic::AtomicU64::new(0),
            platform,
            metrics,
        })
    }

    /// A user-side library wired to this deployment.
    pub fn client(&self) -> UserClient {
        let seq = self
            .client_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.encryption {
            UserClient::new(self.provisioner.client_keys(), 0xc11e ^ seq)
        } else {
            UserClient::new_passthrough(self.provisioner.client_keys(), 0xc11e ^ seq)
        }
    }

    /// The simulated SGX platform hosting the layers.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Operational telemetry for this pipeline's workers.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Submits a request; the returned channel yields its completion.
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is shutting down.
    pub fn submit(&self, envelope: ClientEnvelope) -> Result<Receiver<Completion>, PProxError> {
        let (tx, rx) = bounded(1);
        let job = Job {
            envelope,
            reply: tx,
        };
        self.ingress
            .as_ref()
            .expect("pipeline running")
            .send(job)
            .map_err(|_| PProxError::MalformedMessage)?;
        Ok(rx)
    }

    /// Stops intake, drains buffers, and joins all threads.
    pub fn shutdown(mut self) {
        self.ingress.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PProxPipeline {
    fn drop(&mut self) {
        self.ingress.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Generic shuffle-server loop shared by the UA (requests) and response
/// servers: buffer items until `S` or the timer, then release the batch in
/// randomized order via `forward`.
fn shuffle_server<T>(
    start: Instant,
    rx: Receiver<T>,
    buffer: &mut ShuffleBuffer<T>,
    mut forward: impl FnMut(T),
) {
    let now_us = |start: Instant| start.elapsed().as_micros() as u64;
    loop {
        let timeout = match buffer.deadline_us() {
            Some(deadline) => Duration::from_micros(deadline.saturating_sub(now_us(start))),
            None => Duration::from_millis(50),
        };
        match rx.recv_timeout(timeout) {
            Ok(item) => {
                if let Some(flush) = buffer.push(now_us(start), item) {
                    for item in flush.items {
                        forward(item);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(flush) = buffer.poll_timeout(now_us(start)) {
                    for item in flush.items {
                        forward(item);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                if let Some(flush) = buffer.drain() {
                    for item in flush.items {
                        forward(item);
                    }
                }
                return;
            }
        }
    }
}

fn process_ia_job(
    enclave: &Enclave<IaState>,
    lrs: &Arc<dyn RestHandler>,
    job: &IaJob,
    options: IaOptions,
) -> Completion {
    match job.layer_env.op {
        Op::Post => {
            let result = (|| {
                let event = enclave.call(|ia| ia.process_post(&job.layer_env, options))??;
                let response = lrs.handle(&HttpRequest::post(EVENTS_PATH, event.to_json()));
                if !response.is_success() {
                    return Err(PProxError::Lrs {
                        status: response.status,
                    });
                }
                Ok(())
            })();
            Completion::Post(result)
        }
        Op::Get => {
            let result = (|| {
                let (query, token) =
                    enclave.call(|ia| ia.process_get(&job.layer_env, options))??;
                let response = lrs.handle(&HttpRequest::post(QUERIES_PATH, query.to_json()));
                if !response.is_success() {
                    return Err(PProxError::Lrs {
                        status: response.status,
                    });
                }
                let list = RecommendationList::from_json(&response.body)
                    .ok_or(PProxError::MalformedMessage)?;
                let ids: Vec<String> = list.items.into_iter().map(|s| s.item).collect();
                enclave.call(|ia| ia.process_get_response(token, &ids, options))?
            })();
            Completion::Get(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffler::ShuffleConfig;
    use pprox_lrs::stub::StubLrs;
    use pprox_lrs::MAX_RECOMMENDATIONS;

    fn pipeline(shuffle: ShuffleConfig) -> PProxPipeline {
        let config = PProxConfig {
            shuffle,
            modulus_bits: 1152,
            ..PProxConfig::default()
        };
        PProxPipeline::new(config, Arc::new(StubLrs::new()), 77, 2).unwrap()
    }

    #[test]
    fn single_get_completes_without_shuffling() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let (env, ticket) = client.get("alice").unwrap();
        let rx = p.submit(env).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Get(Ok(list)) => {
                let items = client.open_response(&ticket, &list).unwrap();
                assert_eq!(items.len(), MAX_RECOMMENDATIONS);
            }
            other => panic!("unexpected completion: {other:?}"),
        }
        p.shutdown();
    }

    #[test]
    fn posts_and_gets_interleave() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                let env = client.post(&format!("u{i}"), "item", None).unwrap();
                rxs.push((None, p.submit(env).unwrap()));
            } else {
                let (env, ticket) = client.get(&format!("u{i}")).unwrap();
                rxs.push((Some(ticket), p.submit(env).unwrap()));
            }
        }
        for (ticket, rx) in rxs {
            match (ticket, rx.recv_timeout(Duration::from_secs(10)).unwrap()) {
                (None, Completion::Post(Ok(()))) => {}
                (Some(t), Completion::Get(Ok(list))) => {
                    assert!(!client.open_response(&t, &list).unwrap().is_empty());
                }
                (_, other) => panic!("unexpected: {other:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn shuffled_batch_all_complete() {
        // S=5 with a short timer: submit 12 requests (2 full flushes + a
        // timeout flush) and expect 12 completions.
        let p = pipeline(ShuffleConfig {
            size: 5,
            timeout_us: 100_000,
        });
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..12 {
            let env = client.post(&format!("u{i}"), "item", None).unwrap();
            rxs.push(p.submit(env).unwrap());
        }
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                Completion::Post(Ok(())) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn partial_batch_flushes_on_timer() {
        let p = pipeline(ShuffleConfig {
            size: 100, // never fills
            timeout_us: 50_000,
        });
        let mut client = p.client();
        let env = client.post("lonely", "item", None).unwrap();
        let rx = p.submit(env).unwrap();
        let t = Instant::now();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Post(Ok(())) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // Two timers (request + response shuffler) of 50 ms each bound the
        // latency from below; allow generous scheduling slack above.
        assert!(t.elapsed() >= Duration::from_millis(50));
        p.shutdown();
    }

    #[test]
    fn metrics_track_worker_activity() {
        let p = pipeline(ShuffleConfig::disabled());
        let mut client = p.client();
        let mut rxs = Vec::new();
        for i in 0..6 {
            let env = client.post(&format!("u{i}"), "item", None).unwrap();
            rxs.push(p.submit(env).unwrap());
        }
        for rx in rxs {
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let snapshot = p.metrics().snapshot();
        // 2 UA workers + 2 IA workers registered.
        assert_eq!(snapshot.len(), 4);
        let total: u64 = snapshot.iter().map(|(_, s)| s.requests).sum();
        assert_eq!(total, 12, "each request crosses one UA and one IA worker");
        let errors: u64 = snapshot.iter().map(|(_, s)| s.errors).sum();
        assert_eq!(errors, 0);
        p.shutdown();
    }

    #[test]
    fn drop_drains_cleanly() {
        let p = pipeline(ShuffleConfig {
            size: 100,
            timeout_us: 10_000_000, // long timer: only drain can flush
        });
        let mut client = p.client();
        let env = client.post("u", "i", None).unwrap();
        let rx = p.submit(env).unwrap();
        drop(p); // shutdown drains the buffers
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Post(Ok(())) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
