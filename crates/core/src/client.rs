//! The user-side library.
//!
//! §2.1/§3: "A thin user-side library is easily embeddable in the
//! application or web front-end … and offers the exact same REST API as
//! the LRS. This library intercepts, encrypts and forwards clients' API
//! calls to the proxy service." The original is JavaScript; this is its
//! Rust counterpart with identical responsibilities:
//!
//! * encrypt the user id under `pkUA` and the item block (or a fresh
//!   temporary key `k_u`) under `pkIA`;
//! * on `get` responses, decrypt the returned list with `k_u` and discard
//!   the padding pseudo-items.
//!
//! The library holds only *public* keys — no user-side secrets to
//! provision, which is the deployment property §3 demands.

use crate::ids::{PlaintextItemId, PlaintextUserId};
use crate::keys::ClientKeys;
use crate::message::{
    ClientEnvelope, EncryptedList, Op, ID_PLAINTEXT_LEN, ITEM_BLOCK_LEN, PAD_ITEM_PREFIX,
    RULES_BLOCK_LEN,
};
use crate::telemetry::{SpanRecord, Stage, Telemetry, TraceId};
use crate::PProxError;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::pad;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::secret::SecretBytes;
use pprox_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// Per-`get` state: the temporary key `k_u` needed to open the response.
pub struct GetTicket {
    k_u: SymmetricKey,
}

impl std::fmt::Debug for GetTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GetTicket(k_u redacted)")
    }
}

/// The user-side library instance embedded in an application front-end.
pub struct UserClient {
    keys: ClientKeys,
    rng: SecureRng,
    encryption: bool,
    telemetry: Option<Arc<Telemetry>>,
}

impl std::fmt::Debug for UserClient {
    // Manual so a derive can never grow to print the RNG state (which
    // seeds every future k_u) alongside the public keys.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserClient")
            .field("encryption", &self.encryption)
            .field("telemetry", &self.telemetry.is_some())
            .finish_non_exhaustive()
    }
}

impl UserClient {
    /// Creates a client with the globally known layer public keys.
    pub fn new(keys: ClientKeys, seed: u64) -> Self {
        UserClient {
            keys,
            rng: SecureRng::from_seed(seed),
            encryption: true,
            telemetry: None,
        }
    }

    /// Creates a client that sends plaintext (micro-benchmark m1: all
    /// security features disabled).
    pub fn new_passthrough(keys: ClientKeys, seed: u64) -> Self {
        UserClient {
            keys,
            rng: SecureRng::from_seed(seed),
            encryption: false,
            telemetry: None,
        }
    }

    /// Attaches a telemetry hub; subsequent requests record a
    /// `client_encrypt` span. The span carries a trace ID drawn fresh from
    /// the client's own RNG, deliberately unlinked to the proxy-side trace
    /// segments: the client library sits outside the proxy trust domain,
    /// so nothing it exports may join with server spans.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Whether this client encrypts requests.
    pub fn encryption(&self) -> bool {
        self.encryption
    }

    fn record_encrypt(&mut self, started: Instant) {
        if let Some(t) = &self.telemetry {
            let duration_us = started.elapsed().as_micros() as u64;
            t.record_span(SpanRecord {
                trace: TraceId::random(&mut self.rng),
                stage: Stage::ClientEncrypt,
                instance: 0,
                start_us: t.now_us().saturating_sub(duration_us),
                duration_us,
                ok: true,
            });
        }
    }

    /// Intercepts `post(u, i[, p])`: yields the encrypted envelope for the
    /// UA layer (Figure 3's `post(enc(u,pkUA), enc(i,pkIA))`).
    ///
    /// # Errors
    ///
    /// [`PProxError::IdTooLong`] when an identifier exceeds
    /// [`crate::message::MAX_ID_LEN`]; crypto errors are internal bugs
    /// surfaced as [`PProxError::Crypto`].
    pub fn post(
        &mut self,
        user: &str,
        item: &str,
        payload: Option<f64>,
    ) -> Result<ClientEnvelope, PProxError> {
        // Trust boundary: raw strings from the application become typed,
        // length-checked plaintext ids here and nowhere downstream.
        let user = PlaintextUserId::new(user)?;
        let item = PlaintextItemId::new(item)?;
        let started = Instant::now();
        let mut block = Value::object([("i", Value::from(item.expose()))]);
        if let Some(p) = payload {
            block.insert("p", Value::from(p));
        }
        if !self.encryption {
            let envelope = ClientEnvelope {
                op: Op::Post,
                user: user.expose_bytes().to_vec(),
                // analysis-allow: R10 explicit plaintext baseline mode; the client owns this plaintext
                aux: block.to_json().into_bytes(),
            };
            self.record_encrypt(started);
            return Ok(envelope);
        }
        let padded_user = SecretBytes::new(pad::pad(user.expose_bytes(), ID_PLAINTEXT_LEN)?);
        // analysis-allow: R10 pre-encryption marshalling; sealed under pk_ia two lines down
        let padded_block = pad::pad(block.to_json().as_bytes(), ITEM_BLOCK_LEN)?;
        let envelope = ClientEnvelope {
            op: Op::Post,
            user: self
                .keys
                .pk_ua
                .encrypt(padded_user.expose(), &mut self.rng)?,
            aux: self.keys.pk_ia.encrypt(&padded_block, &mut self.rng)?,
        };
        self.record_encrypt(started);
        Ok(envelope)
    }

    /// Intercepts `get(u)`: yields the encrypted envelope (Figure 4's
    /// `get(enc(u,pkUA), enc(k_u,pkIA))`) and the ticket holding the fresh
    /// temporary key `k_u`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`post`](Self::post).
    pub fn get(&mut self, user: &str) -> Result<(ClientEnvelope, GetTicket), PProxError> {
        let user = PlaintextUserId::new(user)?;
        let started = Instant::now();
        let k_u = SymmetricKey::generate(&mut self.rng);
        if !self.encryption {
            self.record_encrypt(started);
            return Ok((
                ClientEnvelope {
                    op: Op::Get,
                    user: user.expose_bytes().to_vec(),
                    aux: Vec::new(),
                },
                GetTicket { k_u },
            ));
        }
        let padded_user = SecretBytes::new(pad::pad(user.expose_bytes(), ID_PLAINTEXT_LEN)?);
        let envelope = ClientEnvelope {
            op: Op::Get,
            user: self
                .keys
                .pk_ua
                .encrypt(padded_user.expose(), &mut self.rng)?,
            aux: self.keys.pk_ia.encrypt(k_u.as_bytes(), &mut self.rng)?,
        };
        self.record_encrypt(started);
        Ok((envelope, GetTicket { k_u }))
    }

    /// Intercepts `get(u)` with business rules: like [`get`](Self::get),
    /// but the aux block additionally carries item ids the LRS must
    /// exclude (the Universal Recommender blacklist). Since `k_u` plus a
    /// rules list exceeds plain RSA-OAEP capacity, the block is
    /// hybrid-encrypted ([`pprox_crypto::hybrid`]) to the IA layer — an
    /// extension in the direction of the paper's conclusion (richer REST
    /// payloads through the same two-layer structure). The UA layer still
    /// sees nothing: the block is opaque to it either way.
    ///
    /// # Errors
    ///
    /// [`PProxError::IdTooLong`] for oversized ids; framing errors when
    /// the rules exceed [`RULES_BLOCK_LEN`].
    pub fn get_with_rules(
        &mut self,
        user: &str,
        exclude: &[&str],
    ) -> Result<(ClientEnvelope, GetTicket), PProxError> {
        let user = PlaintextUserId::new(user)?;
        let exclude = exclude
            .iter()
            .map(|id| PlaintextItemId::new(id))
            .collect::<Result<Vec<_>, _>>()?;
        let started = Instant::now();
        let k_u = SymmetricKey::generate(&mut self.rng);
        if !self.encryption {
            // Passthrough mode: rules travel in the clear.
            let block = Value::object([(
                "x",
                exclude
                    .iter()
                    .map(|e| Value::from(e.expose()))
                    .collect::<Value>(),
            )]);
            self.record_encrypt(started);
            return Ok((
                ClientEnvelope {
                    op: Op::Get,
                    user: user.expose_bytes().to_vec(),
                    // analysis-allow: R10 explicit plaintext baseline mode; the client owns this plaintext
                    aux: block.to_json().into_bytes(),
                },
                GetTicket { k_u },
            ));
        }
        let block = Value::object([
            (
                "k",
                Value::from(pprox_crypto::base64::encode(k_u.as_bytes())),
            ),
            (
                "x",
                exclude
                    .iter()
                    .map(|e| Value::from(e.expose()))
                    .collect::<Value>(),
            ),
        ]);
        // analysis-allow: R10 pre-encryption marshalling; sealed under pk_ia on the next line
        let padded = pad::pad(block.to_json().as_bytes(), RULES_BLOCK_LEN)?;
        let aux = pprox_crypto::hybrid::seal(&self.keys.pk_ia, &padded, &mut self.rng)?;
        let padded_user = SecretBytes::new(pad::pad(user.expose_bytes(), ID_PLAINTEXT_LEN)?);
        let envelope = ClientEnvelope {
            op: Op::Get,
            user: self
                .keys
                .pk_ua
                .encrypt(padded_user.expose(), &mut self.rng)?,
            aux,
        };
        self.record_encrypt(started);
        Ok((envelope, GetTicket { k_u }))
    }

    /// Opens a `get` response: decrypts with the ticket's `k_u`, drops the
    /// padding pseudo-items, and returns the plaintext item ids exactly as
    /// an unprotected LRS would have returned them.
    ///
    /// # Errors
    ///
    /// Crypto/framing errors when the blob does not decrypt under `k_u`.
    pub fn open_response(
        &self,
        ticket: &GetTicket,
        response: &EncryptedList,
    ) -> Result<Vec<String>, PProxError> {
        let plaintext = if self.encryption {
            ticket
                .k_u
                .decrypt(&response.0)
                .ok_or(PProxError::MalformedMessage)?
        } else {
            response.0.clone()
        };
        let items = crate::message::list_from_plaintext(&plaintext)?;
        Ok(items
            .into_iter()
            .filter(|i| !i.starts_with(PAD_ITEM_PREFIX))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyProvisioner;
    use crate::message::{list_to_plaintext, MAX_ID_LEN};

    fn client() -> UserClient {
        let mut rng = SecureRng::from_seed(31);
        let prov = KeyProvisioner::generate(1152, &mut rng);
        UserClient::new(prov.client_keys(), 7)
    }

    #[test]
    fn post_produces_ciphertexts() {
        let mut c = client();
        let env = c.post("alice", "m00001", Some(5.0)).unwrap();
        assert_eq!(env.op, Op::Post);
        assert!(!env.user.windows(5).any(|w| w == b"alice"));
        assert!(!env.aux.windows(6).any(|w| w == b"m00001"));
    }

    #[test]
    fn two_posts_same_input_differ() {
        // Randomized encryption: the paper's §4.1 rationale for not using
        // the ciphertext itself as a pseudonym.
        let mut c = client();
        let a = c.post("u", "i", None).unwrap();
        let b = c.post("u", "i", None).unwrap();
        assert_ne!(a.user, b.user);
        assert_ne!(a.aux, b.aux);
    }

    #[test]
    fn get_tickets_are_fresh() {
        let mut c = client();
        let (_, t1) = c.get("u").unwrap();
        let (_, t2) = c.get("u").unwrap();
        assert_ne!(t1.k_u.as_bytes(), t2.k_u.as_bytes());
    }

    #[test]
    fn open_response_drops_padding() {
        let mut c = client();
        let (_, ticket) = c.get("u").unwrap();
        let mut items = vec!["real-1".to_owned(), "real-2".to_owned()];
        for i in 0..18 {
            items.push(format!("{PAD_ITEM_PREFIX}{i}"));
        }
        let plaintext = list_to_plaintext(&items).unwrap();
        let mut rng = SecureRng::from_seed(1);
        let blob = EncryptedList(ticket.k_u.encrypt(&plaintext, &mut rng));
        let opened = c.open_response(&ticket, &blob).unwrap();
        assert_eq!(opened, vec!["real-1", "real-2"]);
    }

    #[test]
    fn wrong_ticket_fails() {
        let mut c = client();
        let (_, t1) = c.get("u").unwrap();
        let (_, t2) = c.get("u").unwrap();
        let plaintext = list_to_plaintext(&["x".to_owned()]).unwrap();
        let mut rng = SecureRng::from_seed(2);
        let blob = EncryptedList(t1.k_u.encrypt(&plaintext, &mut rng));
        assert!(c.open_response(&t2, &blob).is_err());
    }

    #[test]
    fn long_ids_rejected() {
        let mut c = client();
        let long = "x".repeat(MAX_ID_LEN + 1);
        assert!(matches!(
            c.post(&long, "i", None),
            Err(PProxError::IdTooLong { .. })
        ));
        assert!(matches!(c.get(&long), Err(PProxError::IdTooLong { .. })));
        assert!(c.post("u", &long, None).is_err());
    }

    #[test]
    fn passthrough_mode_sends_plaintext() {
        let mut rng = SecureRng::from_seed(32);
        let prov = KeyProvisioner::generate(1152, &mut rng);
        let mut c = UserClient::new_passthrough(prov.client_keys(), 7);
        assert!(!c.encryption());
        let env = c.post("alice", "m1", None).unwrap();
        assert_eq!(env.user, b"alice");
        assert!(String::from_utf8_lossy(&env.aux).contains("m1"));
    }

    #[test]
    fn ticket_debug_redacted() {
        let mut c = client();
        let (_, t) = c.get("u").unwrap();
        assert_eq!(format!("{t:?}"), "GetTicket(k_u redacted)");
    }
}
