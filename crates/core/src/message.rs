//! Wire messages of the PProx protocol (Table 1 / §4.2 lifecycles).
//!
//! Three hops carry PProx-specific envelopes:
//!
//! * client → UA: [`ClientEnvelope`] — `post(enc(u,pkUA), enc(i,pkIA))` or
//!   `get(enc(u,pkUA), enc(k_u,pkIA))`;
//! * UA → IA: [`LayerEnvelope`] — the user field replaced by the
//!   deterministic pseudonym `det_enc(u,kUA)`;
//! * IA → UA → client (get responses): an opaque [`EncryptedList`] blob,
//!   `enc({i_1..i_n}, k_u)`.
//!
//! Every envelope serializes to JSON (encrypted fields in base64, as in
//! the paper's implementation §5) and is then padded to a constant frame
//! size (§4.3) so that a network observer cannot correlate messages by
//! length. Identifiers are padded to [`ID_PLAINTEXT_LEN`] before
//! deterministic encryption for the same reason.

use pprox_crypto::base64;
use pprox_crypto::pad;
use pprox_json::Value;

use crate::PProxError;

/// Fixed plaintext length of user/item identifiers before encryption.
pub const ID_PLAINTEXT_LEN: usize = 32;

/// Maximum identifier length accepted by the user-side library
/// (`ID_PLAINTEXT_LEN` minus the 4-byte padding header).
pub const MAX_ID_LEN: usize = ID_PLAINTEXT_LEN - 4;

/// Fixed plaintext length of the item+payload block encrypted to the IA.
pub const ITEM_BLOCK_LEN: usize = 64;

/// Fixed plaintext length of the extended get block (temporary key +
/// business rules), hybrid-encrypted to the IA. Sized so the resulting
/// aux still fits the constant request frame.
pub const RULES_BLOCK_LEN: usize = 192;

/// Constant frame size of client → UA and UA → IA request messages.
pub const REQUEST_FRAME_LEN: usize = 1024;

/// Fixed plaintext length of a serialized recommendation list before
/// encryption under `k_u`.
pub const LIST_PLAINTEXT_LEN: usize = 1600;

/// Constant frame size of response messages on every hop.
pub const RESPONSE_FRAME_LEN: usize = 2048;

/// Prefix of padding items injected by the IA layer and discarded by the
/// user-side library (§4.3: "pseudo-items used for padding are
/// automatically discarded").
pub const PAD_ITEM_PREFIX: &str = "\u{0}pprox-pad-";

/// Operation carried by a request envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Feedback insertion.
    Post,
    /// Recommendation collection.
    Get,
}

impl Op {
    fn as_str(self) -> &'static str {
        match self {
            Op::Post => "post",
            Op::Get => "get",
        }
    }

    fn parse(s: &str) -> Option<Op> {
        match s {
            "post" => Some(Op::Post),
            "get" => Some(Op::Get),
            _ => None,
        }
    }
}

/// A request as produced by the user-side library (client → UA hop).
///
/// `user` is `enc(u, pkUA)`; `aux` is `enc({item, payload}, pkIA)` for a
/// post or `enc(k_u, pkIA)` for a get. In passthrough mode (encryption
/// disabled, micro-benchmark m1) the fields carry the raw values.
#[derive(Clone, PartialEq, Eq)]
pub struct ClientEnvelope {
    /// Which call this is.
    pub op: Op,
    /// Encrypted (or raw) user identifier.
    pub user: Vec<u8>,
    /// Encrypted (or raw) auxiliary block: item+payload or temporary key.
    pub aux: Vec<u8>,
}

/// A request after UA processing (UA → IA hop): the user field is now the
/// deterministic pseudonym.
#[derive(Clone, PartialEq, Eq)]
pub struct LayerEnvelope {
    /// Which call this is.
    pub op: Op,
    /// Pseudonymous user identifier (`det_enc(u, kUA)`), or the raw id in
    /// passthrough mode.
    pub user_pseudonym: Vec<u8>,
    /// The auxiliary block, untouched by the UA (it cannot decrypt it).
    pub aux: Vec<u8>,
}

/// An encrypted recommendation list on the response path (IA → UA →
/// client); opaque to the UA layer.
#[derive(Clone, PartialEq, Eq)]
pub struct EncryptedList(pub Vec<u8>);

/// First 4 bytes of the SHA-256 of `bytes`, hex-encoded — enough for a
/// human to correlate two debug lines, useless for recovering content.
fn digest8(bytes: &[u8]) -> String {
    let d = pprox_crypto::sha256::digest(bytes);
    d[..4].iter().map(|b| format!("{b:02x}")).collect()
}

// Redacting by hand, not derived: in passthrough mode (and for any future
// bug that routes plaintext into these fields) a derived `Debug` would
// print raw ids byte-for-byte into logs. Lengths and a short digest keep
// debug output useful for correlating frames without carrying content.
impl std::fmt::Debug for ClientEnvelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientEnvelope")
            .field("op", &self.op)
            .field("user_len", &self.user.len())
            .field("user_digest", &digest8(&self.user))
            .field("aux_len", &self.aux.len())
            .field("aux_digest", &digest8(&self.aux))
            .finish()
    }
}

impl std::fmt::Debug for LayerEnvelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerEnvelope")
            .field("op", &self.op)
            .field("user_pseudonym_len", &self.user_pseudonym.len())
            .field("user_pseudonym_digest", &digest8(&self.user_pseudonym))
            .field("aux_len", &self.aux.len())
            .field("aux_digest", &digest8(&self.aux))
            .finish()
    }
}

impl std::fmt::Debug for EncryptedList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedList")
            .field("len", &self.0.len())
            .field("digest", &digest8(&self.0))
            .finish()
    }
}

fn encode(op: Op, a_name: &str, a: &[u8], b_name: &str, b: &[u8]) -> Result<Vec<u8>, PProxError> {
    let v = Value::object([
        ("op", Value::from(op.as_str())),
        (a_name, Value::from(base64::encode(a))),
        (b_name, Value::from(base64::encode(b))),
    ]);
    Ok(pad::pad(v.to_json().as_bytes(), REQUEST_FRAME_LEN)?)
}

fn decode(frame: &[u8], a_name: &str, b_name: &str) -> Result<(Op, Vec<u8>, Vec<u8>), PProxError> {
    let body = pad::unpad(frame, REQUEST_FRAME_LEN)?;
    let text = std::str::from_utf8(&body).map_err(|_| PProxError::MalformedMessage)?;
    let v = Value::parse(text)?;
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .and_then(Op::parse)
        .ok_or(PProxError::MalformedMessage)?;
    let a = base64::decode(
        v.get(a_name)
            .and_then(|x| x.as_str())
            .ok_or(PProxError::MalformedMessage)?,
    )?;
    let b = base64::decode(
        v.get(b_name)
            .and_then(|x| x.as_str())
            .ok_or(PProxError::MalformedMessage)?,
    )?;
    Ok((op, a, b))
}

impl ClientEnvelope {
    /// Serializes to a constant-size wire frame.
    ///
    /// # Errors
    ///
    /// Fails when the encrypted fields exceed the frame budget (cannot
    /// happen with the fixed key sizes used by the deployment).
    pub fn to_frame(&self) -> Result<Vec<u8>, PProxError> {
        encode(self.op, "u", &self.user, "x", &self.aux)
    }

    /// Parses a wire frame.
    ///
    /// # Errors
    ///
    /// [`PProxError::MalformedMessage`] (or padding/JSON errors) on any
    /// structural problem.
    pub fn from_frame(frame: &[u8]) -> Result<Self, PProxError> {
        let (op, user, aux) = decode(frame, "u", "x")?;
        Ok(ClientEnvelope { op, user, aux })
    }
}

impl LayerEnvelope {
    /// Serializes to a constant-size wire frame (same size as client
    /// frames: an observer cannot tell the hops apart by length).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientEnvelope::to_frame`].
    pub fn to_frame(&self) -> Result<Vec<u8>, PProxError> {
        encode(self.op, "p", &self.user_pseudonym, "x", &self.aux)
    }

    /// Parses a wire frame.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientEnvelope::from_frame`].
    pub fn from_frame(frame: &[u8]) -> Result<Self, PProxError> {
        let (op, user_pseudonym, aux) = decode(frame, "p", "x")?;
        Ok(LayerEnvelope {
            op,
            user_pseudonym,
            aux,
        })
    }
}

impl EncryptedList {
    /// Serializes to a constant-size response frame.
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext exceeds [`RESPONSE_FRAME_LEN`].
    pub fn to_frame(&self) -> Result<Vec<u8>, PProxError> {
        Ok(pad::pad(&self.0, RESPONSE_FRAME_LEN)?)
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// Padding errors on wrong-size or inconsistent frames.
    pub fn from_frame(frame: &[u8]) -> Result<Self, PProxError> {
        Ok(EncryptedList(pad::unpad(frame, RESPONSE_FRAME_LEN)?))
    }
}

/// Serializes a recommendation item-id list to the fixed-size plaintext
/// block the IA encrypts under `k_u`.
///
/// # Errors
///
/// Fails when the ids exceed the block budget (bounded in practice: at
/// most 20 ids of at most [`MAX_ID_LEN`] bytes).
pub fn list_to_plaintext(items: &[String]) -> Result<Vec<u8>, PProxError> {
    let v: Value = items.iter().map(|i| Value::from(i.as_str())).collect();
    Ok(pad::pad(v.to_json().as_bytes(), LIST_PLAINTEXT_LEN)?)
}

/// Parses the fixed-size plaintext block back into item ids.
///
/// # Errors
///
/// Padding or JSON errors on corrupted plaintext (wrong `k_u`).
pub fn list_from_plaintext(block: &[u8]) -> Result<Vec<String>, PProxError> {
    let body = pad::unpad(block, LIST_PLAINTEXT_LEN)?;
    let text = std::str::from_utf8(&body).map_err(|_| PProxError::MalformedMessage)?;
    let v = Value::parse(text)?;
    let arr = v.as_array().ok_or(PProxError::MalformedMessage)?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or(PProxError::MalformedMessage)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_envelope_roundtrip() {
        let env = ClientEnvelope {
            op: Op::Post,
            user: vec![1, 2, 3],
            aux: vec![4, 5],
        };
        let frame = env.to_frame().unwrap();
        assert_eq!(frame.len(), REQUEST_FRAME_LEN);
        assert_eq!(ClientEnvelope::from_frame(&frame).unwrap(), env);
    }

    #[test]
    fn layer_envelope_roundtrip() {
        let env = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: vec![9; 32],
            aux: vec![7; 256],
        };
        let frame = env.to_frame().unwrap();
        assert_eq!(frame.len(), REQUEST_FRAME_LEN);
        assert_eq!(LayerEnvelope::from_frame(&frame).unwrap(), env);
    }

    #[test]
    fn frames_constant_size_regardless_of_content() {
        let small = ClientEnvelope {
            op: Op::Get,
            user: vec![],
            aux: vec![],
        };
        let large = ClientEnvelope {
            op: Op::Post,
            user: vec![0xaa; 256],
            aux: vec![0xbb; 256],
        };
        assert_eq!(
            small.to_frame().unwrap().len(),
            large.to_frame().unwrap().len()
        );
    }

    #[test]
    fn client_and_layer_frames_same_size() {
        // §4.3: messages between user→UA and UA→IA are indistinguishable
        // in size.
        let c = ClientEnvelope {
            op: Op::Get,
            user: vec![1; 256],
            aux: vec![2; 256],
        }
        .to_frame()
        .unwrap();
        let l = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: vec![3; 32],
            aux: vec![2; 256],
        }
        .to_frame()
        .unwrap();
        assert_eq!(c.len(), l.len());
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(ClientEnvelope::from_frame(&[0u8; 10]).is_err());
        let garbage = pprox_crypto::pad::pad(b"not json", REQUEST_FRAME_LEN).unwrap();
        assert!(ClientEnvelope::from_frame(&garbage).is_err());
        let wrong_op =
            pprox_crypto::pad::pad(br#"{"op":"delete","u":"","x":""}"#, REQUEST_FRAME_LEN).unwrap();
        assert!(ClientEnvelope::from_frame(&wrong_op).is_err());
    }

    #[test]
    fn encrypted_list_roundtrip() {
        let list = EncryptedList(vec![0xcd; 500]);
        let frame = list.to_frame().unwrap();
        assert_eq!(frame.len(), RESPONSE_FRAME_LEN);
        assert_eq!(EncryptedList::from_frame(&frame).unwrap(), list);
    }

    #[test]
    fn list_plaintext_roundtrip() {
        let items: Vec<String> = (0..20).map(|i| format!("m{i:05}")).collect();
        let block = list_to_plaintext(&items).unwrap();
        assert_eq!(block.len(), LIST_PLAINTEXT_LEN);
        assert_eq!(list_from_plaintext(&block).unwrap(), items);
    }

    #[test]
    fn list_plaintext_constant_size() {
        let a = list_to_plaintext(&[]).unwrap();
        let b = list_to_plaintext(&vec!["x".to_owned(); 20]).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn pseudonymized_ids_fit_the_list_block() {
        // Worst case: 20 pseudonymous ids (44 base64 chars each).
        let items: Vec<String> = (0..20)
            .map(|i| pprox_crypto::base64::encode(&[i as u8; 32]))
            .collect();
        assert!(list_to_plaintext(&items).is_ok());
    }

    #[test]
    fn op_parse() {
        assert_eq!(Op::parse("post"), Some(Op::Post));
        assert_eq!(Op::parse("get"), Some(Op::Get));
        assert_eq!(Op::parse("x"), None);
    }
}
