//! Item Anonymizer (IA) layer — the second proxy layer.
//!
//! §3: "The second layer, the Item Anonymizer (IA), is the one that
//! directly interacts with the LRS. It is the only layer able to access
//! items identifiers in the clear, but it is not able to access user
//! identifiers or IP addresses."
//!
//! [`IaState`] runs inside an IA enclave with `skIA` and `kIA`. For posts
//! it decrypts the item block and pseudonymizes the item id; for gets it
//! decrypts and stashes the temporary response key `k_u` in the
//! EPC-bounded store (§5: "An in-memory key-value store in the EPC holds
//! the information necessary for handling requests responses on their way
//! back from the LRS"), then, on the way back, de-pseudonymizes the
//! returned items, pads the list to the maximum size, and encrypts it
//! under `k_u` so the UA layer cannot read it.

use crate::ids::PlaintextItemId;
use crate::keys::LayerSecrets;
use crate::message::{
    list_to_plaintext, EncryptedList, LayerEnvelope, Op, ID_PLAINTEXT_LEN, ITEM_BLOCK_LEN,
    PAD_ITEM_PREFIX, RULES_BLOCK_LEN,
};
use crate::telemetry::LatencyHistogram;
use crate::PProxError;
use pprox_crypto::base64;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::pad;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::secret::SecretBytes;
use pprox_json::Value;
use pprox_lrs::api::{FeedbackEvent, RecommendationQuery};
use pprox_lrs::MAX_RECOMMENDATIONS;
use pprox_sgx::EpcStore;
use std::sync::Arc;
use std::time::Instant;

/// Handle to a pending `get`: keys the stored `k_u` for the response leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PendingToken(pub u64);

/// Feature switches affecting IA processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IaOptions {
    /// Whether requests are encrypted at all (m1 disables this).
    pub encryption: bool,
    /// Whether item identifiers are pseudonymized toward the LRS
    /// (disabling this is the §6.3 / m4 trade-off).
    pub item_pseudonymization: bool,
}

impl Default for IaOptions {
    fn default() -> Self {
        IaOptions {
            encryption: true,
            item_pseudonymization: true,
        }
    }
}

/// Default EPC budget for pending response keys (bytes).
pub const DEFAULT_EPC_BUDGET: usize = 4 << 20;

/// In-enclave state and logic of an IA instance.
pub struct IaState {
    secrets: LayerSecrets,
    pending: EpcStore,
    next_token: u64,
    rng: SecureRng,
    processed: u64,
    processing_histogram: Option<Arc<LatencyHistogram>>,
}

impl std::fmt::Debug for IaState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IaState")
            .field("processed", &self.processed)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl IaState {
    /// Creates the state from provisioned layer secrets.
    pub fn new(secrets: LayerSecrets) -> Self {
        Self::with_epc_budget(secrets, DEFAULT_EPC_BUDGET)
    }

    /// Creates the state with an explicit EPC budget for pending keys.
    ///
    /// Warms the cached cipher state of `kIA` so the first item
    /// pseudonymization is served at steady-state cost.
    pub fn with_epc_budget(secrets: LayerSecrets, epc_bytes: usize) -> Self {
        secrets.warm();
        let rng = SecureRng::from_entropy();
        IaState {
            secrets,
            pending: EpcStore::with_capacity(epc_bytes),
            next_token: 1,
            rng,
            processed: 0,
            processing_histogram: None,
        }
    }

    /// Attaches the latency histogram this instance records its
    /// in-enclave processing time into (the telemetry `ia` stage). Each
    /// ECALL — post, get, get-response — is one observation, so the stage
    /// count exceeds the request count for gets by design.
    pub fn set_processing_histogram(&mut self, histogram: Arc<LatencyHistogram>) {
        self.processing_histogram = Some(histogram);
    }

    fn record_processing(&self, started: Instant) {
        if let Some(h) = &self.processing_histogram {
            h.record(started.elapsed().as_micros() as u64);
        }
    }

    pub(crate) fn secrets(&self) -> &LayerSecrets {
        &self.secrets
    }

    /// Pending `(token, k_u)` pairs — what a breach of this enclave leaks.
    pub(crate) fn pending_keys(&self) -> Vec<(u64, Vec<u8>)> {
        // EpcStore has no iteration by design (it models an opaque cache);
        // leak the count via a marker instead of raw keys. Tokens are not
        // enumerable here, so report the budget usage.
        vec![(0, self.pending.used_bytes().to_be_bytes().to_vec())]
    }

    /// Requests processed (both directions).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of gets awaiting their LRS response.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Pseudonymizes an item id: `base64(det_enc(pad(item), kIA))`.
    ///
    /// Takes the typed plaintext id: the caller must have validated the
    /// length budget at the trust boundary, and the type name is what the
    /// analyzer's layer-separation rules key on.
    fn pseudonymize_item(&self, item: &PlaintextItemId) -> Result<String, PProxError> {
        // Padding already allocated the fixed-size frame; encrypt it in
        // place against the cached keystream prefix.
        let mut padded = pad::pad(item.expose_bytes(), ID_PLAINTEXT_LEN)?;
        self.secrets.k.det_apply(&mut padded);
        Ok(base64::encode(&padded))
    }

    /// Inverts [`pseudonymize_item`](Self::pseudonymize_item).
    ///
    /// Ids that do not parse as pseudonyms (wrong length, not base64, or
    /// bad padding after decryption) pass through unchanged: the LRS may
    /// legitimately return non-pseudonymized ids — a stub server, or a
    /// catalog populated while item pseudonymization was disabled (§6.3).
    fn depseudonymize_item(&self, pseudonym: &str) -> Result<String, PProxError> {
        let Ok(ct) = base64::decode(pseudonym) else {
            return Ok(pseudonym.to_owned());
        };
        if ct.len() != ID_PLAINTEXT_LEN {
            return Ok(pseudonym.to_owned());
        }
        let mut padded = ct;
        self.secrets.k.det_apply(&mut padded);
        let Ok(raw) = pad::unpad(&padded, ID_PLAINTEXT_LEN) else {
            return Ok(pseudonym.to_owned());
        };
        String::from_utf8(raw).map_err(|_| PProxError::MalformedMessage)
    }

    /// Processes a post on its way to the LRS: decrypts the item block
    /// with `skIA` and emits the fully pseudonymized feedback event of
    /// Figure 3 — `post(det_enc(u,kUA), det_enc(i,kIA))`.
    ///
    /// # Errors
    ///
    /// Crypto errors when the aux block does not decrypt; malformed-message
    /// errors when its JSON is invalid.
    pub fn process_post(
        &mut self,
        envelope: &LayerEnvelope,
        options: IaOptions,
    ) -> Result<FeedbackEvent, PProxError> {
        debug_assert_eq!(envelope.op, Op::Post);
        self.processed += 1;
        let started = Instant::now();
        let result = self.process_post_inner(envelope, options);
        self.record_processing(started);
        result
    }

    fn process_post_inner(
        &mut self,
        envelope: &LayerEnvelope,
        options: IaOptions,
    ) -> Result<FeedbackEvent, PProxError> {
        let (item, payload) = if options.encryption {
            let block = self.secrets.sk.decrypt(&envelope.aux)?;
            let body = pad::unpad(&block, ITEM_BLOCK_LEN)?;
            let text = std::str::from_utf8(&body).map_err(|_| PProxError::MalformedMessage)?;
            let v = Value::parse(text)?;
            let item = v
                .get("i")
                .and_then(|i| i.as_str())
                .ok_or(PProxError::MalformedMessage)?
                .to_owned();
            (item, v.get("p").and_then(|p| p.as_f64()))
        } else {
            let text =
                std::str::from_utf8(&envelope.aux).map_err(|_| PProxError::MalformedMessage)?;
            let v = Value::parse(text)?;
            let item = v
                .get("i")
                .and_then(|i| i.as_str())
                .ok_or(PProxError::MalformedMessage)?
                .to_owned();
            (item, v.get("p").and_then(|p| p.as_f64()))
        };
        let item_for_lrs = if options.encryption && options.item_pseudonymization {
            // Length was checked client-side, but this enclave must not
            // trust the client: re-validate at its own boundary. Oversize
            // ids surface as `IdTooLong` rather than a padding error.
            self.pseudonymize_item(&PlaintextItemId::new(&item)?)?
        } else {
            item
        };
        Ok(FeedbackEvent {
            user: user_id_for_lrs(&envelope.user_pseudonym, options.encryption),
            item: item_for_lrs,
            payload,
        })
    }

    /// Processes a get on its way to the LRS: decrypts and stores `k_u`,
    /// and emits `get(det_enc(u,kUA))` (Figure 4).
    ///
    /// Two aux formats are accepted, distinguished by length: the base
    /// protocol's plain RSA encryption of `k_u` (one modulus-sized
    /// ciphertext), and the extended hybrid block carrying `k_u` plus
    /// business rules (longer). Rule item ids arrive in the clear *inside
    /// the IA-encrypted block* — exactly the visibility the IA already
    /// has — and are pseudonymized here before reaching the LRS.
    ///
    /// # Errors
    ///
    /// Crypto errors on a bad aux block; EPC exhaustion when too many
    /// gets are in flight.
    pub fn process_get(
        &mut self,
        envelope: &LayerEnvelope,
        options: IaOptions,
    ) -> Result<(RecommendationQuery, PendingToken), PProxError> {
        debug_assert_eq!(envelope.op, Op::Get);
        self.processed += 1;
        let started = Instant::now();
        let result = self.process_get_inner(envelope, options);
        self.record_processing(started);
        result
    }

    fn process_get_inner(
        &mut self,
        envelope: &LayerEnvelope,
        options: IaOptions,
    ) -> Result<(RecommendationQuery, PendingToken), PProxError> {
        let token = PendingToken(self.next_token);
        self.next_token += 1;
        let mut exclude: Vec<String> = Vec::new();
        if options.encryption {
            let modulus_len = self.secrets.sk.public_key().ciphertext_len();
            // `k_u` is secret material: it travels through SecretBytes so
            // an error path can never print it and the buffer is zeroed if
            // anything below bails out before the store takes ownership.
            let key_bytes = if envelope.aux.len() == modulus_len {
                // Base protocol: aux = enc(k_u, pkIA).
                SecretBytes::new(self.secrets.sk.decrypt(&envelope.aux)?)
            } else {
                // Extended protocol: hybrid block {k, x: [excluded ids]}.
                let padded = pprox_crypto::hybrid::open(&self.secrets.sk, &envelope.aux)?;
                let body = pad::unpad(&padded, RULES_BLOCK_LEN)?;
                let text = std::str::from_utf8(&body).map_err(|_| PProxError::MalformedMessage)?;
                let v = Value::parse(text)?;
                let key_b64 = v
                    .get("k")
                    .and_then(|k| k.as_str())
                    .ok_or(PProxError::MalformedMessage)?;
                if let Some(arr) = v.get("x").and_then(|x| x.as_array()) {
                    for entry in arr {
                        let id = entry.as_str().ok_or(PProxError::MalformedMessage)?;
                        exclude.push(if options.item_pseudonymization {
                            self.pseudonymize_item(&PlaintextItemId::new(id)?)?
                        } else {
                            id.to_owned()
                        });
                    }
                }
                SecretBytes::new(base64::decode(key_b64)?)
            };
            if key_bytes.len() != 32 {
                return Err(PProxError::MalformedMessage);
            }
            self.pending
                .insert(token.0.to_be_bytes().to_vec(), key_bytes.into_exposed())
                .map_err(PProxError::Epc)?;
        } else if !envelope.aux.is_empty() {
            // Passthrough mode may still carry clear-text rules.
            if let Ok(text) = std::str::from_utf8(&envelope.aux) {
                if let Ok(v) = Value::parse(text) {
                    if let Some(arr) = v.get("x").and_then(|x| x.as_array()) {
                        for entry in arr {
                            if let Some(id) = entry.as_str() {
                                exclude.push(id.to_owned());
                            }
                        }
                    }
                }
            }
        }
        Ok((
            RecommendationQuery {
                user: user_id_for_lrs(&envelope.user_pseudonym, options.encryption),
                num: MAX_RECOMMENDATIONS,
                exclude,
            },
            token,
        ))
    }

    /// Processes the LRS response to a get: de-pseudonymizes the returned
    /// item ids, pads the list to [`MAX_RECOMMENDATIONS`] entries, and
    /// encrypts it under the stored `k_u` (Figure 4's
    /// `enc({i_1..i_n}, k_u)`).
    ///
    /// In passthrough mode the list is framed but not encrypted.
    ///
    /// # Errors
    ///
    /// [`PProxError::UnknownToken`] when no `k_u` is pending under `token`
    /// (response replay or mis-routing); crypto errors on corrupt ids.
    pub fn process_get_response(
        &mut self,
        token: PendingToken,
        item_ids: &[String],
        options: IaOptions,
    ) -> Result<EncryptedList, PProxError> {
        self.processed += 1;
        let started = Instant::now();
        let result = self.process_get_response_inner(token, item_ids, options);
        self.record_processing(started);
        result
    }

    fn process_get_response_inner(
        &mut self,
        token: PendingToken,
        item_ids: &[String],
        options: IaOptions,
    ) -> Result<EncryptedList, PProxError> {
        let mut items: Vec<String> = if options.encryption && options.item_pseudonymization {
            item_ids
                .iter()
                .map(|p| self.depseudonymize_item(p))
                .collect::<Result<_, _>>()?
        } else {
            item_ids.to_vec()
        };
        items.truncate(MAX_RECOMMENDATIONS);
        // §4.3: pad to the maximal size with pseudo-items that the
        // user-side library discards.
        let mut pad_idx = 0;
        while items.len() < MAX_RECOMMENDATIONS {
            items.push(format!("{PAD_ITEM_PREFIX}{pad_idx}"));
            pad_idx += 1;
        }
        let plaintext = list_to_plaintext(&items)?;
        if !options.encryption {
            return Ok(EncryptedList(plaintext));
        }
        let key_bytes = SecretBytes::new(
            self.pending
                .remove(&token.0.to_be_bytes())
                .ok_or(PProxError::UnknownToken)?,
        );
        let mut key = [0u8; 32];
        key.copy_from_slice(key_bytes.expose());
        let k_u = SymmetricKey::from_bytes(key);
        Ok(EncryptedList(k_u.encrypt(&plaintext, &mut self.rng)))
    }
}

/// LRS-facing user id: base64 of the pseudonym bytes (encrypted mode) or
/// the raw utf-8 id (passthrough).
fn user_id_for_lrs(pseudonym: &[u8], encryption: bool) -> String {
    if encryption {
        base64::encode(pseudonym)
    } else {
        String::from_utf8_lossy(pseudonym).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::LayerSecrets;

    fn item_id(id: &str) -> PlaintextItemId {
        PlaintextItemId::new(id).unwrap()
    }

    fn setup() -> (IaState, SecureRng) {
        let mut rng = SecureRng::from_seed(21);
        let (secrets, _pk) = LayerSecrets::generate(1152, &mut rng);
        (IaState::new(secrets), rng)
    }

    fn item_block(ia: &IaState, item: &str, payload: Option<f64>, rng: &mut SecureRng) -> Vec<u8> {
        let mut v = Value::object([("i", Value::from(item))]);
        if let Some(p) = payload {
            v.insert("p", Value::from(p));
        }
        let padded = pad::pad(v.to_json().as_bytes(), ITEM_BLOCK_LEN).unwrap();
        ia.secrets.sk.public_key().encrypt(&padded, rng).unwrap()
    }

    #[test]
    fn post_pseudonymizes_item_deterministically() {
        let (mut ia, mut rng) = setup();
        let run = |rng: &mut SecureRng, ia: &mut IaState| {
            let env = LayerEnvelope {
                op: Op::Post,
                user_pseudonym: vec![7; 32],
                aux: item_block(ia, "m00042", Some(4.5), rng),
            };
            ia.process_post(&env, IaOptions::default()).unwrap()
        };
        let a = run(&mut rng, &mut ia);
        let b = run(&mut rng, &mut ia);
        assert_eq!(a.item, b.item, "stable pseudonym");
        assert_ne!(a.item, "m00042", "item must not appear in the clear");
        assert_eq!(a.payload, Some(4.5));
        assert_eq!(a.user, base64::encode(&[7; 32]));
    }

    #[test]
    fn post_without_pseudonymization_keeps_item_clear() {
        let (mut ia, mut rng) = setup();
        let env = LayerEnvelope {
            op: Op::Post,
            user_pseudonym: vec![7; 32],
            aux: item_block(&ia, "m00042", None, &mut rng),
        };
        let opts = IaOptions {
            encryption: true,
            item_pseudonymization: false,
        };
        let event = ia.process_post(&env, opts).unwrap();
        assert_eq!(event.item, "m00042");
    }

    #[test]
    fn get_stores_pending_key_and_response_decrypts() {
        let (mut ia, mut rng) = setup();
        let k_u = SymmetricKey::generate(&mut rng);
        let enc_key = ia
            .secrets
            .sk
            .public_key()
            .encrypt(k_u.as_bytes(), &mut rng)
            .unwrap();
        let env = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: vec![9; 32],
            aux: enc_key,
        };
        let (query, token) = ia.process_get(&env, IaOptions::default()).unwrap();
        assert_eq!(query.num, MAX_RECOMMENDATIONS);
        assert_eq!(ia.pending_count(), 1);

        // LRS returns pseudonymized ids.
        let pseudo_items: Vec<String> = ["a", "b"]
            .iter()
            .map(|i| ia.pseudonymize_item(&item_id(i)).unwrap())
            .collect();
        let encrypted = ia
            .process_get_response(token, &pseudo_items, IaOptions::default())
            .unwrap();
        assert_eq!(ia.pending_count(), 0, "k_u must be consumed");

        // The client decrypts with k_u; padding fills to 20 entries.
        let plaintext = k_u.decrypt(&encrypted.0).unwrap();
        let items = crate::message::list_from_plaintext(&plaintext).unwrap();
        assert_eq!(items.len(), MAX_RECOMMENDATIONS);
        assert_eq!(&items[0], "a");
        assert_eq!(&items[1], "b");
        assert!(items[2].starts_with(PAD_ITEM_PREFIX));
    }

    #[test]
    fn extended_get_carries_pseudonymized_exclusions() {
        let (mut ia, mut rng) = setup();
        // Build the hybrid aux exactly as the client does.
        let k_u = SymmetricKey::generate(&mut rng);
        let block = Value::object([
            ("k", Value::from(base64::encode(k_u.as_bytes()))),
            (
                "x",
                ["m00001", "m00002"]
                    .iter()
                    .map(|e| Value::from(*e))
                    .collect::<Value>(),
            ),
        ]);
        let padded = pad::pad(block.to_json().as_bytes(), RULES_BLOCK_LEN).unwrap();
        let aux =
            pprox_crypto::hybrid::seal(ia.secrets.sk.public_key(), &padded, &mut rng).unwrap();
        let env = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: vec![5; 32],
            aux,
        };
        let (query, _token) = ia.process_get(&env, IaOptions::default()).unwrap();
        assert_eq!(query.exclude.len(), 2);
        // Exclusions were pseudonymized to match the LRS catalog.
        assert_eq!(
            query.exclude[0],
            ia.pseudonymize_item(&item_id("m00001")).unwrap()
        );
        assert_ne!(query.exclude[0], "m00001");
        assert_eq!(ia.pending_count(), 1, "k_u stored for the response leg");
    }

    #[test]
    fn response_with_unknown_token_rejected() {
        let (mut ia, _) = setup();
        let err = ia
            .process_get_response(PendingToken(999), &[], IaOptions::default())
            .unwrap_err();
        assert!(matches!(err, PProxError::UnknownToken));
    }

    #[test]
    fn response_token_single_use() {
        let (mut ia, mut rng) = setup();
        let k_u = SymmetricKey::generate(&mut rng);
        let env = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: vec![1; 32],
            aux: ia
                .secrets
                .sk
                .public_key()
                .encrypt(k_u.as_bytes(), &mut rng)
                .unwrap(),
        };
        let (_, token) = ia.process_get(&env, IaOptions::default()).unwrap();
        ia.process_get_response(token, &[], IaOptions::default())
            .unwrap();
        assert!(matches!(
            ia.process_get_response(token, &[], IaOptions::default()),
            Err(PProxError::UnknownToken)
        ));
    }

    #[test]
    fn epc_exhaustion_surfaces() {
        let mut rng = SecureRng::from_seed(22);
        let (secrets, _) = LayerSecrets::generate(1152, &mut rng);
        // Budget for ~1 pending key only.
        let mut ia = IaState::with_epc_budget(secrets, 100);
        let make_env = |ia: &IaState, rng: &mut SecureRng| {
            let k_u = SymmetricKey::generate(rng);
            LayerEnvelope {
                op: Op::Get,
                user_pseudonym: vec![1; 32],
                aux: ia
                    .secrets
                    .sk
                    .public_key()
                    .encrypt(k_u.as_bytes(), rng)
                    .unwrap(),
            }
        };
        let env = make_env(&ia, &mut rng);
        ia.process_get(&env, IaOptions::default()).unwrap();
        let env2 = make_env(&ia, &mut rng);
        assert!(matches!(
            ia.process_get(&env2, IaOptions::default()),
            Err(PProxError::Epc(_))
        ));
    }

    #[test]
    fn passthrough_mode_no_crypto() {
        let (mut ia, _) = setup();
        let opts = IaOptions {
            encryption: false,
            item_pseudonymization: false,
        };
        let env = LayerEnvelope {
            op: Op::Post,
            user_pseudonym: b"alice".to_vec(),
            aux: br#"{"i":"m00001"}"#.to_vec(),
        };
        let event = ia.process_post(&env, opts).unwrap();
        assert_eq!(event.user, "alice");
        assert_eq!(event.item, "m00001");

        let genv = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: b"alice".to_vec(),
            aux: vec![],
        };
        let (query, token) = ia.process_get(&genv, opts).unwrap();
        assert_eq!(query.user, "alice");
        let list = ia
            .process_get_response(token, &["x".to_owned()], opts)
            .unwrap();
        let items = crate::message::list_from_plaintext(&list.0).unwrap();
        assert_eq!(&items[0], "x");
    }

    #[test]
    fn item_pseudonym_roundtrip() {
        let (ia, _) = setup();
        let p = ia.pseudonymize_item(&item_id("m12345")).unwrap();
        assert_ne!(p, "m12345");
        assert_eq!(ia.depseudonymize_item(&p).unwrap(), "m12345");
    }

    #[test]
    fn oversized_list_truncated() {
        let (mut ia, _) = setup();
        let opts = IaOptions {
            encryption: false,
            item_pseudonymization: false,
        };
        let genv = LayerEnvelope {
            op: Op::Get,
            user_pseudonym: b"u".to_vec(),
            aux: vec![],
        };
        let (_, token) = ia.process_get(&genv, opts).unwrap();
        let many: Vec<String> = (0..50).map(|i| format!("i{i}")).collect();
        let list = ia.process_get_response(token, &many, opts).unwrap();
        let items = crate::message::list_from_plaintext(&list.0).unwrap();
        assert_eq!(items.len(), MAX_RECOMMENDATIONS);
    }
}
