//! Request/response shuffling (§4.3).
//!
//! "Incoming requests are buffered until `S` requests are received, or
//! until a timer expires, and then sent in random order to the next
//! stage." The [`ShuffleBuffer`] implements exactly that policy as a pure
//! data structure over abstract deadlines, so both the live (wall-clock)
//! and simulated (virtual-clock) deployments drive it: callers tell it the
//! current time, it answers with flush decisions.

use pprox_crypto::rng::SecureRng;

/// Shuffling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuffleConfig {
    /// Buffer size `S`: a flush happens as soon as `S` items are held.
    /// `S = 1` effectively disables shuffling (m1–m4 configurations).
    pub size: usize,
    /// Timer: the oldest buffered item never waits longer than this many
    /// microseconds before a flush.
    pub timeout_us: u64,
}

impl ShuffleConfig {
    /// Shuffling disabled (`S = 1`): every item flushes immediately.
    pub fn disabled() -> Self {
        ShuffleConfig {
            size: 1,
            timeout_us: 0,
        }
    }

    /// The paper's default micro-benchmark setting `S = 10` with a 500 ms
    /// timer.
    pub fn paper_default() -> Self {
        ShuffleConfig {
            size: 10,
            timeout_us: 500_000,
        }
    }

    /// `true` when shuffling is effectively off.
    pub fn is_disabled(&self) -> bool {
        self.size <= 1
    }
}

/// A batch released by the buffer: items in randomized order plus the
/// (pre-shuffle) arrival times, for latency accounting.
#[derive(Debug)]
pub struct Flush<T> {
    /// Items in randomized forwarding order.
    pub items: Vec<T>,
    /// Arrival time (the `now_us` passed to `push`) of each item, aligned
    /// with the shuffled `items` order — dwell accounting for the
    /// telemetry layer without re-identifying arrival order.
    pub arrived_at_us: Vec<u64>,
    /// Why the flush happened.
    pub reason: FlushReason,
}

/// What triggered a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The buffer reached `S` items.
    Full,
    /// The oldest item hit the timeout.
    Timeout,
    /// Explicit drain (shutdown).
    Drain,
}

/// The §4.3 shuffle buffer.
///
/// # Examples
///
/// ```
/// use pprox_core::shuffler::{ShuffleBuffer, ShuffleConfig};
///
/// let mut buf = ShuffleBuffer::new(ShuffleConfig { size: 3, timeout_us: 1_000 }, 42);
/// assert!(buf.push(0, "a").is_none());
/// assert!(buf.push(10, "b").is_none());
/// let flush = buf.push(20, "c").expect("third item fills the buffer");
/// assert_eq!(flush.items.len(), 3);
/// ```
#[derive(Debug)]
pub struct ShuffleBuffer<T> {
    config: ShuffleConfig,
    held: Vec<(u64, T)>,
    oldest_at_us: Option<u64>,
    rng: SecureRng,
    flushes: u64,
    timeout_flushes: u64,
    order_ablation: bool,
}

impl<T> ShuffleBuffer<T> {
    /// Creates a buffer; `seed` makes the shuffle order reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `config.size` is zero.
    pub fn new(config: ShuffleConfig, seed: u64) -> Self {
        assert!(config.size > 0, "shuffle size must be at least 1");
        ShuffleBuffer {
            config,
            held: Vec::with_capacity(config.size),
            oldest_at_us: None,
            rng: SecureRng::from_seed(seed),
            flushes: 0,
            timeout_flushes: 0,
            order_ablation: false,
        }
    }

    /// Seeded ablation for the attack harnesses: batching still happens
    /// (items dwell until `S` or the timer), but the release permutation
    /// is suppressed — batches leave in arrival order. This deliberately
    /// voids the §4.3 unlinkability argument while keeping every timing
    /// characteristic identical, so a traffic-analysis audit must *catch*
    /// it as a bound violation rather than pass by construction.
    pub fn set_order_ablation(&mut self, on: bool) {
        self.order_ablation = on;
    }

    /// Adds an item arriving at `now_us`; returns a flush when the buffer
    /// reaches `S`.
    pub fn push(&mut self, now_us: u64, item: T) -> Option<Flush<T>> {
        if self.held.is_empty() {
            self.oldest_at_us = Some(now_us);
        }
        self.held.push((now_us, item));
        if self.held.len() >= self.config.size {
            Some(self.flush(FlushReason::Full))
        } else {
            None
        }
    }

    /// The absolute deadline (µs) by which the buffer must flush, if any
    /// items are held. The deployment schedules its timer from this.
    pub fn deadline_us(&self) -> Option<u64> {
        self.oldest_at_us.map(|t| t + self.config.timeout_us)
    }

    /// Checks the timer at `now_us`; flushes if the deadline passed.
    pub fn poll_timeout(&mut self, now_us: u64) -> Option<Flush<T>> {
        match self.deadline_us() {
            Some(deadline) if now_us >= deadline && !self.held.is_empty() => {
                self.timeout_flushes += 1;
                Some(self.flush(FlushReason::Timeout))
            }
            _ => None,
        }
    }

    /// Unconditionally flushes whatever is held (used at shutdown).
    pub fn drain(&mut self) -> Option<Flush<T>> {
        if self.held.is_empty() {
            None
        } else {
            Some(self.flush(FlushReason::Drain))
        }
    }

    fn flush(&mut self, reason: FlushReason) -> Flush<T> {
        // Shuffle (arrival, item) pairs together so the reported arrival
        // times stay attached to their items through the permutation.
        let mut held = std::mem::take(&mut self.held);
        self.oldest_at_us = None;
        if !self.order_ablation {
            self.rng.shuffle(&mut held);
        }
        self.flushes += 1;
        let mut items = Vec::with_capacity(held.len());
        let mut arrived_at_us = Vec::with_capacity(held.len());
        for (at, item) in held {
            arrived_at_us.push(at);
            items.push(item);
        }
        Flush {
            items,
            arrived_at_us,
            reason,
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Total flushes so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Flushes caused by the timer (vs. the buffer filling).
    pub fn timeout_flushes(&self) -> u64 {
        self.timeout_flushes
    }

    /// The configured parameters.
    pub fn config(&self) -> ShuffleConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(size: usize, timeout_us: u64) -> ShuffleBuffer<u32> {
        ShuffleBuffer::new(ShuffleConfig { size, timeout_us }, 1234)
    }

    #[test]
    fn flushes_when_full() {
        let mut b = buf(3, 1_000_000);
        assert!(b.push(0, 1).is_none());
        assert!(b.push(1, 2).is_none());
        let flush = b.push(2, 3).unwrap();
        assert_eq!(flush.reason, FlushReason::Full);
        let mut sorted = flush.items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn output_order_is_shuffled() {
        // Over many flushes of 8 items, at least one must differ from
        // arrival order (probability of failure ≈ (1/8!)^trials ≈ 0).
        let mut b = buf(8, 1_000_000);
        let mut any_permuted = false;
        for _ in 0..20 {
            let mut flush = None;
            for i in 0..8u32 {
                flush = b.push(0, i).or(flush);
            }
            let items = flush.unwrap().items;
            if items != (0..8).collect::<Vec<_>>() {
                any_permuted = true;
            }
        }
        assert!(any_permuted, "shuffling never permuted the batch");
    }

    #[test]
    fn timer_flushes_partial_batch() {
        let mut b = buf(10, 500_000);
        b.push(100, 1);
        b.push(200, 2);
        assert_eq!(b.deadline_us(), Some(500_100));
        assert!(b.poll_timeout(500_099).is_none());
        let flush = b.poll_timeout(500_100).unwrap();
        assert_eq!(flush.reason, FlushReason::Timeout);
        assert_eq!(flush.items.len(), 2);
        assert_eq!(b.timeout_flushes(), 1);
        assert_eq!(b.deadline_us(), None);
    }

    #[test]
    fn deadline_tracks_oldest_item() {
        let mut b = buf(10, 1_000);
        b.push(5_000, 1);
        b.push(9_000, 2);
        // Deadline comes from the first (oldest) item.
        assert_eq!(b.deadline_us(), Some(6_000));
    }

    #[test]
    fn size_one_flushes_every_item() {
        let mut b = buf(1, 0);
        for i in 0..5u32 {
            let flush = b.push(i as u64, i).unwrap();
            assert_eq!(flush.items, vec![i]);
        }
        assert_eq!(b.flushes(), 5);
    }

    #[test]
    fn arrival_times_follow_items_through_the_shuffle() {
        // Tag each item with its own arrival time; after shuffling, the
        // reported arrival must still be the one its item carried in.
        let mut b = buf(16, 1_000_000);
        let mut flush = None;
        for i in 0..16u32 {
            flush = b.push(1_000 + i as u64, i).or(flush);
        }
        let flush = flush.unwrap();
        assert_eq!(flush.items.len(), flush.arrived_at_us.len());
        for (item, at) in flush.items.iter().zip(&flush.arrived_at_us) {
            assert_eq!(*at, 1_000 + *item as u64);
        }
    }

    #[test]
    fn drain_returns_remaining() {
        let mut b = buf(10, 1_000_000);
        assert!(b.drain().is_none());
        b.push(0, 7);
        let flush = b.drain().unwrap();
        assert_eq!(flush.reason, FlushReason::Drain);
        assert_eq!(flush.items, vec![7]);
    }

    #[test]
    fn empty_buffer_never_times_out() {
        let mut b = buf(10, 100);
        assert!(b.poll_timeout(u64::MAX).is_none());
    }

    #[test]
    fn config_constructors() {
        assert!(ShuffleConfig::disabled().is_disabled());
        let paper = ShuffleConfig::paper_default();
        assert_eq!(paper.size, 10);
        assert!(!paper.is_disabled());
    }

    #[test]
    fn order_ablation_preserves_arrival_order() {
        let mut b = buf(8, 1_000_000);
        b.set_order_ablation(true);
        for _ in 0..10 {
            let mut flush = None;
            for i in 0..8u32 {
                flush = b.push(0, i).or(flush);
            }
            assert_eq!(
                flush.unwrap().items,
                (0..8).collect::<Vec<_>>(),
                "ablated buffer must release in arrival order"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_panics() {
        let _ = ShuffleBuffer::<u32>::new(
            ShuffleConfig {
                size: 0,
                timeout_us: 0,
            },
            0,
        );
    }
}
