//! User Anonymizer (UA) layer — the first proxy layer.
//!
//! §3: "The first layer, the User Anonymizer (UA), is responsible for
//! hiding the identity of the user by replacing it with a pseudonymous
//! identity. It is able to see the IP address and the identifier of the
//! user but it is not able to see the identifiers of the items sent by or
//! returned to this user."
//!
//! [`UaState`] is the data-processing logic that runs *inside* a UA
//! enclave; its only secrets are `skUA` (to decrypt `enc(u, pkUA)`) and
//! `kUA` (to produce the stable pseudonym `det_enc(u, kUA)`). It never
//! touches the aux block (item or response key): that is encrypted to the
//! IA layer.

use crate::keys::LayerSecrets;
use crate::message::{ClientEnvelope, LayerEnvelope};
use crate::telemetry::LatencyHistogram;
use crate::PProxError;
use pprox_crypto::secret::SecretBytes;
use std::sync::Arc;
use std::time::Instant;

/// In-enclave state and logic of a UA instance.
pub struct UaState {
    secrets: LayerSecrets,
    processed: u64,
    processing_histogram: Option<Arc<LatencyHistogram>>,
}

impl std::fmt::Debug for UaState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UaState")
            .field("processed", &self.processed)
            .finish()
    }
}

impl UaState {
    /// Creates the state from provisioned layer secrets, warming the
    /// cached cipher state so the first request is served at steady-state
    /// cost.
    pub fn new(secrets: LayerSecrets) -> Self {
        secrets.warm();
        UaState {
            secrets,
            processed: 0,
            processing_histogram: None,
        }
    }

    /// Attaches the latency histogram this instance records its
    /// in-enclave processing time into (the telemetry `ua` stage). Timing
    /// is measured inside the enclave boundary so it reflects decrypt +
    /// pseudonymize cost, not queueing or supervision overhead.
    pub fn set_processing_histogram(&mut self, histogram: Arc<LatencyHistogram>) {
        self.processing_histogram = Some(histogram);
    }

    pub(crate) fn secrets(&self) -> &LayerSecrets {
        &self.secrets
    }

    /// Requests processed by this instance.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Transforms a client request into the UA → IA form: decrypts the
    /// user field with `skUA` and replaces it with the deterministic
    /// pseudonym `det_enc(u, kUA)`. The aux block passes through untouched.
    ///
    /// With `encryption == false` (micro-benchmark m1: all security
    /// features off) the user field is raw and is forwarded as-is.
    ///
    /// # Errors
    ///
    /// [`PProxError::Crypto`] when the user field does not decrypt under
    /// `skUA` (corrupted request or key mismatch).
    pub fn process(
        &mut self,
        envelope: &ClientEnvelope,
        encryption: bool,
    ) -> Result<LayerEnvelope, PProxError> {
        self.processed += 1;
        let started = Instant::now();
        let result = self.process_inner(envelope, encryption);
        if let Some(h) = &self.processing_histogram {
            h.record(started.elapsed().as_micros() as u64);
        }
        result
    }

    fn process_inner(
        &mut self,
        envelope: &ClientEnvelope,
        encryption: bool,
    ) -> Result<LayerEnvelope, PProxError> {
        let user_pseudonym = if encryption {
            // The client encrypted the *padded* id, so the decrypted block
            // is already fixed-size; deterministic CTR keeps it fixed-size.
            // Pseudonymizing in place against the cached keystream prefix
            // avoids a second allocation per request. The plaintext only
            // ever lives inside a SecretBytes; once `det_apply` has run,
            // the buffer holds the pseudonym, which is safe to release.
            let mut padded_user = SecretBytes::new(self.secrets.sk.decrypt(&envelope.user)?);
            self.secrets.k.det_apply(padded_user.expose_mut());
            padded_user.into_exposed()
        } else {
            envelope.user.clone()
        };
        Ok(LayerEnvelope {
            op: envelope.op,
            user_pseudonym,
            aux: envelope.aux.clone(),
        })
    }

    /// Recovers the plaintext (padded) user id from a pseudonym — only
    /// possible *inside* the UA enclave. Exposed for the security-analysis
    /// harness (§6.1 case 1.c: an adversary holding `kUA` can
    /// de-pseudonymize LRS user ids). The result is a plaintext user id,
    /// so it comes back wrapped in [`SecretBytes`]: callers must `expose`
    /// it explicitly, which the privacy-flow analyzer can then audit.
    pub fn depseudonymize(&self, pseudonym: &[u8]) -> SecretBytes {
        SecretBytes::new(self.secrets.k.det_decrypt(pseudonym))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Op, ID_PLAINTEXT_LEN};
    use pprox_crypto::pad;
    use pprox_crypto::rng::SecureRng;

    fn setup() -> (UaState, SecureRng) {
        // Unit test reaches the UA state directly; the enclave wrapper is
        // exercised in proxy.rs tests.
        let mut rng = SecureRng::from_seed(11);
        let (secrets, _pk) = crate::keys::LayerSecrets::generate(1152, &mut rng);
        (UaState::new(secrets), rng)
    }

    fn padded(id: &str) -> Vec<u8> {
        pad::pad(id.as_bytes(), ID_PLAINTEXT_LEN).unwrap()
    }

    #[test]
    fn pseudonym_is_deterministic_and_fixed_size() {
        let (mut ua, mut rng) = setup();
        let pk = ua.secrets.sk.public_key().clone();
        let make = |rng: &mut SecureRng, ua: &mut UaState| {
            let env = ClientEnvelope {
                op: Op::Post,
                user: pk.encrypt(&padded("alice"), rng).unwrap(),
                aux: vec![1, 2, 3],
            };
            ua.process(&env, true).unwrap()
        };
        let a = make(&mut rng, &mut ua);
        let b = make(&mut rng, &mut ua);
        // Ciphertexts differed (randomized RSA) but pseudonyms are equal.
        assert_eq!(a.user_pseudonym, b.user_pseudonym);
        assert_eq!(a.user_pseudonym.len(), ID_PLAINTEXT_LEN);
    }

    #[test]
    fn different_users_different_pseudonyms() {
        let (mut ua, mut rng) = setup();
        let pk = ua.secrets.sk.public_key().clone();
        let make = |id: &str, rng: &mut SecureRng, ua: &mut UaState| {
            let env = ClientEnvelope {
                op: Op::Get,
                user: pk.encrypt(&padded(id), rng).unwrap(),
                aux: vec![],
            };
            ua.process(&env, true).unwrap().user_pseudonym
        };
        assert_ne!(
            make("alice", &mut rng, &mut ua),
            make("bob", &mut rng, &mut ua)
        );
    }

    #[test]
    fn aux_passes_through_unmodified() {
        let (mut ua, mut rng) = setup();
        let pk = ua.secrets.sk.public_key().clone();
        let aux = vec![0xab; 100];
        let env = ClientEnvelope {
            op: Op::Get,
            user: pk.encrypt(&padded("u"), &mut rng).unwrap(),
            aux: aux.clone(),
        };
        let out = ua.process(&env, true).unwrap();
        assert_eq!(out.aux, aux);
        assert_eq!(out.op, Op::Get);
    }

    #[test]
    fn passthrough_mode_copies_user() {
        let (mut ua, _) = setup();
        let env = ClientEnvelope {
            op: Op::Post,
            user: b"alice".to_vec(),
            aux: b"item".to_vec(),
        };
        let out = ua.process(&env, false).unwrap();
        assert_eq!(out.user_pseudonym, b"alice");
    }

    #[test]
    fn garbage_ciphertext_rejected() {
        let (mut ua, _) = setup();
        let env = ClientEnvelope {
            op: Op::Post,
            user: vec![0u8; 13],
            aux: vec![],
        };
        assert!(matches!(ua.process(&env, true), Err(PProxError::Crypto(_))));
    }

    #[test]
    fn depseudonymize_inverts() {
        let (mut ua, mut rng) = setup();
        let pk = ua.secrets.sk.public_key().clone();
        let env = ClientEnvelope {
            op: Op::Post,
            user: pk.encrypt(&padded("carol"), &mut rng).unwrap(),
            aux: vec![],
        };
        let out = ua.process(&env, true).unwrap();
        let recovered = ua.depseudonymize(&out.user_pseudonym);
        assert_eq!(
            pad::unpad(recovered.expose(), ID_PLAINTEXT_LEN).unwrap(),
            b"carol"
        );
    }

    #[test]
    fn processing_histogram_records_each_request() {
        let (mut ua, _) = setup();
        let hist = std::sync::Arc::new(crate::telemetry::LatencyHistogram::new());
        ua.set_processing_histogram(hist.clone());
        let env = ClientEnvelope {
            op: Op::Post,
            user: b"x".to_vec(),
            aux: vec![],
        };
        ua.process(&env, false).unwrap();
        // Failures are timed too: the enclave did work either way.
        let bad = ClientEnvelope {
            op: Op::Post,
            user: vec![0u8; 13],
            aux: vec![],
        };
        assert!(ua.process(&bad, true).is_err());
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn processed_counter() {
        let (mut ua, _) = setup();
        assert_eq!(ua.processed(), 0);
        let env = ClientEnvelope {
            op: Op::Post,
            user: b"x".to_vec(),
            aux: vec![],
        };
        ua.process(&env, false).unwrap();
        assert_eq!(ua.processed(), 1);
    }
}
