//! Ablation: a single combined proxy enclave instead of two layers.
//!
//! §3 motivates the two-layer design by rejecting the obvious
//! alternative: "mapping a user identifier to a pseudonym in a single SGX
//! enclave acting as a proxy … is not sufficient under our adversary
//! model. The adversary may, indeed, compromise this single enclave and
//! learn the direct associations between user identifiers and item
//! identifiers."
//!
//! [`CombinedProxyState`] is that rejected design, implemented honestly:
//! one enclave holding *both* key sets, doing both pseudonymizations in a
//! single ECALL (cheaper — no inter-layer hop, one decryption context).
//! The tests and the `security_analysis` harness then show the cost of
//! the saving: one break links every user to every item.

use pprox_core::keys::LayerSecrets;
use pprox_core::message::{ClientEnvelope, Op, ID_PLAINTEXT_LEN, ITEM_BLOCK_LEN};
use pprox_core::PProxError;
use pprox_crypto::base64;
use pprox_crypto::pad;
use pprox_lrs::api::FeedbackEvent;
use pprox_sgx::enclave::{EnclaveApp, SecretBag};

/// The rejected single-enclave design: both layers' secrets in one place.
pub struct CombinedProxyState {
    user_secrets: LayerSecrets,
    item_secrets: LayerSecrets,
    processed: u64,
}

impl std::fmt::Debug for CombinedProxyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombinedProxyState")
            .field("processed", &self.processed)
            .finish()
    }
}

/// Code identity of the combined enclave.
pub const COMBINED_CODE_IDENTITY: &str = "pprox-combined-v1";

impl CombinedProxyState {
    /// Creates the combined state from both layers' secrets.
    pub fn new(user_secrets: LayerSecrets, item_secrets: LayerSecrets) -> Self {
        CombinedProxyState {
            user_secrets,
            item_secrets,
            processed: 0,
        }
    }

    /// Processes a post end-to-end in one ECALL: decrypt both fields,
    /// pseudonymize both, emit the LRS event. Functionally equivalent to
    /// UA followed by IA.
    ///
    /// # Errors
    ///
    /// Crypto/format errors as in the two-layer path.
    pub fn process_post(&mut self, envelope: &ClientEnvelope) -> Result<FeedbackEvent, PProxError> {
        debug_assert_eq!(envelope.op, Op::Post);
        self.processed += 1;
        let padded_user = self.user_secrets.sk.decrypt(&envelope.user)?;
        let user_pseudonym = base64::encode(&self.user_secrets.k.det_encrypt(&padded_user));

        let block = self.item_secrets.sk.decrypt(&envelope.aux)?;
        let body = pad::unpad(&block, ITEM_BLOCK_LEN)?;
        let text = std::str::from_utf8(&body).map_err(|_| PProxError::MalformedMessage)?;
        let v = pprox_json::Value::parse(text)?;
        let item = v
            .get("i")
            .and_then(|i| i.as_str())
            .ok_or(PProxError::MalformedMessage)?;
        let padded_item = pad::pad(item.as_bytes(), ID_PLAINTEXT_LEN)?;
        let item_pseudonym = base64::encode(&self.item_secrets.k.det_encrypt(&padded_item));
        Ok(FeedbackEvent {
            user: user_pseudonym,
            item: item_pseudonym,
            payload: v.get("p").and_then(|p| p.as_f64()),
        })
    }

    /// Requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl EnclaveApp for CombinedProxyState {
    fn leak_secrets(&self) -> SecretBag {
        let mut bag = SecretBag::new();
        // The fatal property: ONE breach leaks BOTH pseudonymization keys.
        self.user_secrets.leak_into(&mut bag, "ua");
        self.item_secrets.leak_into(&mut bag, "ia");
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::attack_with_both_keys;
    use pprox_core::keys::ClientKeys;
    use pprox_core::UserClient;
    use pprox_crypto::rng::SecureRng;
    use pprox_lrs::engine::Engine;
    use pprox_sgx::{Measurement, Platform};

    fn setup() -> (
        Platform,
        std::sync::Arc<pprox_sgx::Enclave<CombinedProxyState>>,
        ClientKeys,
    ) {
        let mut rng = SecureRng::from_seed(0xc0b1);
        let (user_secrets, pk_ua) = LayerSecrets::generate(1152, &mut rng);
        let (item_secrets, pk_ia) = LayerSecrets::generate(1152, &mut rng);
        let platform = Platform::new(&mut rng);
        let enclave = platform.load_enclave::<CombinedProxyState>(COMBINED_CODE_IDENTITY);
        let quote = enclave.quote(vec![]);
        let token = platform
            .attestation()
            .verify(&quote, Measurement::of_code(COMBINED_CODE_IDENTITY))
            .unwrap();
        enclave
            .provision(token, CombinedProxyState::new(user_secrets, item_secrets))
            .unwrap();
        (platform, enclave, ClientKeys { pk_ua, pk_ia })
    }

    #[test]
    fn combined_enclave_is_functionally_equivalent() {
        let (_platform, enclave, keys) = setup();
        let mut client = UserClient::new(keys, 1);
        let env = client.post("alice", "m00001", Some(3.5)).unwrap();
        let event = enclave.call(|s| s.process_post(&env)).unwrap().unwrap();
        assert!(!event.user.contains("alice"));
        assert!(!event.item.contains("m00001"));
        assert_eq!(event.payload, Some(3.5));
        // Deterministic pseudonyms, like the two-layer path.
        let env2 = client.post("alice", "m00001", Some(3.5)).unwrap();
        let event2 = enclave.call(|s| s.process_post(&env2)).unwrap().unwrap();
        assert_eq!(event.user, event2.user);
        assert_eq!(event.item, event2.item);
    }

    #[test]
    fn one_break_links_everything() {
        let (platform, enclave, keys) = setup();
        let mut client = UserClient::new(keys, 2);
        let engine = Engine::new();
        let mut truth = Vec::new();
        for u in 0..10 {
            let user = format!("user-{u}");
            let item = format!("item-{u}");
            let env = client.post(&user, &item, None).unwrap();
            let event = enclave.call(|s| s.process_post(&env)).unwrap().unwrap();
            engine.post(&event.user, &event.item, event.payload);
            truth.push((user, item));
        }
        // ONE side-channel attack on the single enclave…
        let bag = platform.break_enclave(enclave.id()).unwrap();
        // …yields both keys, and the database fully de-anonymizes.
        let outcome = attack_with_both_keys(&bag, &bag, &engine);
        assert_eq!(outcome.linked_pairs.len(), truth.len());
        for pair in &truth {
            assert!(outcome.linked_pairs.contains(pair));
        }
        assert!(!outcome.unlinkability_holds());
    }
}
