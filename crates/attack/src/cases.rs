//! Executable §6.1 case analysis: enclave compromise against a live
//! deployment.
//!
//! The paper argues informally that breaking *one* layer's enclave never
//! yields the user–item link. This module turns each case into a runnable
//! experiment against a real [`PProxDeployment`]: drive traffic with known
//! ground truth, break an enclave through the platform's compromise API,
//! and let the adversary do everything its stolen keys allow against the
//! LRS database. The outcome records what was actually learned.

use pprox_core::proxy::PProxDeployment;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::pad;
use pprox_lrs::engine::Engine;
use pprox_sgx::SecretBag;

/// What the adversary managed to learn in one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CaseOutcome {
    /// Plaintext user ids recovered from the LRS database.
    pub recovered_users: Vec<String>,
    /// Plaintext item ids recovered from the LRS database.
    pub recovered_items: Vec<String>,
    /// Fully linked (user, item) pairs — the unlinkability breach.
    pub linked_pairs: Vec<(String, String)>,
}

impl CaseOutcome {
    /// `true` when User–Interest unlinkability held (no pair linked).
    pub fn unlinkability_holds(&self) -> bool {
        self.linked_pairs.is_empty()
    }
}

/// Extracts a symmetric key from a leaked secret bag.
fn symmetric_key(bag: &SecretBag, name: &str) -> Option<SymmetricKey> {
    let bytes = bag.get(name)?;
    let mut key = [0u8; 32];
    if bytes.len() != 32 {
        return None;
    }
    key.copy_from_slice(bytes);
    Some(SymmetricKey::from_bytes(key))
}

/// Attempts to de-pseudonymize one LRS-stored id with a stolen layer key.
///
/// Returns the plaintext id when the key matches; `None` when the blob
/// does not decode/unpad (wrong layer's key — the §6.1 "cannot decrypt"
/// outcomes).
fn try_depseudonymize(key: &SymmetricKey, stored_id: &str) -> Option<String> {
    let ct = pprox_crypto::base64::decode(stored_id).ok()?;
    if ct.len() != pprox_core::message::ID_PLAINTEXT_LEN {
        return None;
    }
    let padded = key.det_decrypt(&ct);
    let raw = pad::unpad(&padded, pprox_core::message::ID_PLAINTEXT_LEN).ok()?;
    String::from_utf8(raw).ok()
}

/// §6.1 Case 1.(c): the adversary breaks a **UA** enclave and reads the
/// LRS database.
///
/// It can de-pseudonymize every *user* id with the stolen `kUA`, but item
/// ids stay opaque — so it recovers users without their interests.
///
/// # Panics
///
/// Panics when the platform refuses the break (another layer already
/// compromised), which is itself a modelled property.
pub fn break_ua_and_read_database(deployment: &PProxDeployment, engine: &Engine) -> CaseOutcome {
    let ua = &deployment.ua_layer()[0];
    let bag = deployment
        .platform()
        .break_enclave(ua.id())
        .expect("UA break allowed when no other layer is compromised");
    attack_database(&bag, "ua.k", engine)
}

/// §6.1 Case 2.(c): the adversary breaks an **IA** enclave and reads the
/// LRS database. Dual outcome: items recovered, users opaque.
pub fn break_ia_and_read_database(deployment: &PProxDeployment, engine: &Engine) -> CaseOutcome {
    let ia = &deployment.ia_layer()[0];
    let bag = deployment
        .platform()
        .break_enclave(ia.id())
        .expect("IA break allowed when no other layer is compromised");
    attack_database(&bag, "ia.k", engine)
}

/// `true` when a stored id has the shape of a PProx pseudonym (base64 of
/// a 32-byte deterministic ciphertext). Anything else sits in the
/// database in the clear and needs no key at all.
fn looks_like_pseudonym(stored_id: &str) -> bool {
    matches!(
        pprox_crypto::base64::decode(stored_id),
        Ok(bytes) if bytes.len() == pprox_core::message::ID_PLAINTEXT_LEN
    )
}

/// Recovers a stored id: decrypt with the stolen key if it is a
/// pseudonym, or take it verbatim when it is plaintext (e.g. item
/// pseudonymization disabled, §6.3).
fn recover_id(key: &SymmetricKey, stored_id: &str) -> Option<String> {
    if looks_like_pseudonym(stored_id) {
        try_depseudonymize(key, stored_id)
    } else {
        Some(stored_id.to_owned())
    }
}

/// The database attack shared by both cases: with whatever symmetric key
/// was stolen, recover both columns of every stored event. A pair counts
/// as *linked* only when both sides are recovered.
fn attack_database(bag: &SecretBag, key_name: &str, engine: &Engine) -> CaseOutcome {
    let mut outcome = CaseOutcome::default();
    let Some(key) = symmetric_key(bag, key_name) else {
        return outcome;
    };
    for (stored_user, stored_item) in engine.dump_events() {
        let user = recover_id(&key, &stored_user);
        let item = recover_id(&key, &stored_item);
        if let Some(u) = &user {
            outcome.recovered_users.push(u.clone());
        }
        if let Some(i) = &item {
            outcome.recovered_items.push(i.clone());
        }
        if let (Some(u), Some(i)) = (user, item) {
            outcome.linked_pairs.push((u, i));
        }
    }
    outcome
}

/// The hypothetical both-layers adversary (what the one-layer-at-a-time
/// assumption prevents): given both bags, fully de-anonymize the
/// database. Used to validate that the attack machinery *would* succeed
/// if the assumption were violated — i.e., our negative results above are
/// not artifacts of a broken attacker.
pub fn attack_with_both_keys(
    ua_bag: &SecretBag,
    ia_bag: &SecretBag,
    engine: &Engine,
) -> CaseOutcome {
    let mut outcome = CaseOutcome::default();
    let (Some(k_ua), Some(k_ia)) = (symmetric_key(ua_bag, "ua.k"), symmetric_key(ia_bag, "ia.k"))
    else {
        return outcome;
    };
    for (stored_user, stored_item) in engine.dump_events() {
        let user = recover_id(&k_ua, &stored_user);
        let item = recover_id(&k_ia, &stored_item);
        if let Some(u) = &user {
            outcome.recovered_users.push(u.clone());
        }
        if let Some(i) = &item {
            outcome.recovered_items.push(i.clone());
        }
        if let (Some(u), Some(i)) = (user, item) {
            outcome.linked_pairs.push((u, i));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_core::config::PProxConfig;
    use pprox_lrs::frontend::Frontend;
    use pprox_sgx::CompromiseError;
    use std::sync::Arc;

    /// Ground-truth traffic: 5 users × 2 items through the proxy.
    fn deploy_with_traffic() -> (PProxDeployment, Engine, Vec<(String, String)>) {
        let engine = Engine::new();
        let fe = Arc::new(Frontend::new("fe", engine.clone()));
        let d = PProxDeployment::new(PProxConfig::for_tests(), fe, 0xca5e).unwrap();
        let mut client = d.client();
        let mut truth = Vec::new();
        for u in 0..5 {
            for i in 0..2 {
                let user = format!("user-{u}");
                let item = format!("item-{u}-{i}");
                d.post_feedback(&mut client, &user, &item, None).unwrap();
                truth.push((user, item));
            }
        }
        (d, engine, truth)
    }

    #[test]
    fn ua_break_recovers_users_but_never_links() {
        let (d, engine, truth) = deploy_with_traffic();
        let outcome = break_ua_and_read_database(&d, &engine);
        // All users recovered (kUA stolen)…
        for (user, _) in &truth {
            assert!(outcome.recovered_users.contains(user), "missing {user}");
        }
        // …but no item decrypts, so unlinkability holds.
        assert!(
            outcome.recovered_items.is_empty(),
            "{:?}",
            outcome.recovered_items
        );
        assert!(outcome.unlinkability_holds());
    }

    #[test]
    fn ia_break_recovers_items_but_never_links() {
        let (d, engine, truth) = deploy_with_traffic();
        let outcome = break_ia_and_read_database(&d, &engine);
        for (_, item) in &truth {
            assert!(outcome.recovered_items.contains(item), "missing {item}");
        }
        assert!(
            outcome.recovered_users.is_empty(),
            "{:?}",
            outcome.recovered_users
        );
        assert!(outcome.unlinkability_holds());
    }

    #[test]
    fn synchronous_double_break_is_forbidden() {
        let (d, _engine, _) = deploy_with_traffic();
        let ua = &d.ua_layer()[0];
        let ia = &d.ia_layer()[0];
        d.platform().break_enclave(ua.id()).unwrap();
        assert!(matches!(
            d.platform().break_enclave(ia.id()),
            Err(CompromiseError::AnotherLayerCompromised { .. })
        ));
    }

    #[test]
    fn hypothetical_double_break_would_link_everything() {
        // Validate the attacker machinery: if both keys leaked (the model
        // forbids it synchronously; we simulate recovery in between and
        // pretend the provider did NOT rotate keys — the paper's footnote
        // explains rotation is the required response), the database fully
        // de-anonymizes.
        let (d, engine, truth) = deploy_with_traffic();
        let ua_bag = d.platform().break_enclave(d.ua_layer()[0].id()).unwrap();
        d.platform().detect_and_recover();
        let ia_bag = d.platform().break_enclave(d.ia_layer()[0].id()).unwrap();
        let outcome = attack_with_both_keys(&ua_bag, &ia_bag, &engine);
        assert_eq!(outcome.linked_pairs.len(), truth.len());
        for pair in &truth {
            assert!(outcome.linked_pairs.contains(pair));
        }
        assert!(!outcome.unlinkability_holds());
    }

    #[test]
    fn item_pseudonymization_disabled_leaks_items_to_ua_breaker() {
        // §6.3: with item pseudonymization off, a UA break links users to
        // items — the privacy/utility trade-off made explicit.
        let engine = Engine::new();
        let fe = Arc::new(Frontend::new("fe", engine.clone()));
        let config = PProxConfig {
            item_pseudonymization: false,
            ..PProxConfig::for_tests()
        };
        let d = PProxDeployment::new(config, fe, 0xca5f).unwrap();
        let mut client = d.client();
        d.post_feedback(&mut client, "victim", "embarrassing-item", None)
            .unwrap();
        let outcome = break_ua_and_read_database(&d, &engine);
        // Items are in the clear in the database; with kUA the user column
        // decrypts too: the pair is linked.
        let events = engine.dump_events();
        assert_eq!(events[0].1, "embarrassing-item");
        assert!(outcome.recovered_users.contains(&"victim".to_owned()));
        assert!(
            outcome
                .linked_pairs
                .contains(&("victim".to_owned(), "embarrassing-item".to_owned())),
            "with items in the clear, a UA break links the pair"
        );
        assert!(!outcome.unlinkability_holds());
    }
}
