//! The traffic-correlation attack and its success measurement (§6.2).
//!
//! Given the adversary's tap, the attack tries, for each client request
//! `R`, to guess which IA → LRS message `R'` carries it. §6.2 derives the
//! best achievable success probability: `1/S` with one IA instance, and
//! `1/(S·I)` with `I` IA instances (responses symmetrically with `U`).
//!
//! The implementation is the adversary's *best* strategy under each
//! configuration:
//!
//! * **With padding** — all messages in a shuffle batch are byte-identical
//!   in size, so the only signal is timing: the attacker locates the UA
//!   flush batch containing `R`, follows each batch member to the IA
//!   instance it entered, and picks among the LRS-bound candidates those
//!   instances emit.
//! * **Without padding** (ablation) — sizes fingerprint flows; the
//!   attacker simply matches sizes end-to-end and wins almost always,
//!   which is why §4.3 pads.

use crate::observer::{run_observation, ObservationConfig};
use pprox_net::tap::{FlowRecord, Segment, Tap};

/// Result of running the correlation attack over a tap.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationOutcome {
    /// Requests attacked.
    pub attempts: usize,
    /// Correct guesses.
    pub correct: usize,
    /// Measured linkage probability.
    pub success_rate: f64,
    /// §6.2 bound `1/S` (single IA instance).
    pub bound_single: f64,
    /// §6.2 bound `1/(S·I)`.
    pub bound_scaled: f64,
}

impl CorrelationOutcome {
    fn new(attempts: usize, correct: usize, s: usize, i: usize) -> Self {
        CorrelationOutcome {
            attempts,
            correct,
            success_rate: correct as f64 / attempts.max(1) as f64,
            bound_single: 1.0 / s as f64,
            bound_scaled: 1.0 / (s * i) as f64,
        }
    }
}

/// Runs the correlation attack against an observation trace.
///
/// `seed` drives the adversary's tie-breaking choices.
pub fn correlation_attack(tap: &Tap, config: &ObservationConfig, seed: u64) -> CorrelationOutcome {
    let client_hops = tap.on_segment(Segment::ClientToUa);
    let ua_hops = tap.on_segment(Segment::UaToIa);
    let lrs_hops = tap.on_segment(Segment::IaToLrs);
    let mut rng = pprox_net::service::SimRng::from_seed(seed);

    let mut correct = 0usize;
    let mut attempts = 0usize;
    for target in &client_hops {
        attempts += 1;
        let guess = if config.padding {
            guess_by_timing(target, &ua_hops, &lrs_hops, &mut rng)
        } else {
            guess_by_size(target, &lrs_hops)
        };
        if guess == Some(target.flow) {
            correct += 1;
        }
    }
    CorrelationOutcome::new(attempts, correct, config.shuffle_size, config.ia_instances)
}

/// Timing strategy: find the batch that left the target's UA instance
/// first at-or-after the target arrived; follow each member to its IA
/// instance; collect each instance's next LRS-bound departures; guess
/// uniformly among the candidate set.
fn guess_by_timing(
    target: &FlowRecord,
    ua_hops: &[FlowRecord],
    lrs_hops: &[FlowRecord],
    rng: &mut pprox_net::service::SimRng,
) -> Option<u64> {
    // The batch: all UaToIa records from this UA sharing the first flush
    // timestamp >= arrival.
    let flush_time = ua_hops
        .iter()
        .filter(|r| r.src == target.dst && r.time >= target.time)
        .map(|r| r.time)
        .min()?;
    let batch: Vec<&FlowRecord> = ua_hops
        .iter()
        .filter(|r| r.src == target.dst && r.time == flush_time)
        .collect();
    // For each batch member, the candidate LRS messages are those its IA
    // instance emits shortly after the flush. The adversary cannot order
    // them (concurrent dequeue), so all are candidates.
    let mut candidates: Vec<u64> = Vec::new();
    for member in &batch {
        let ia = &member.dst;
        // Next few departures from that IA after the flush: take as many
        // as the instance received in this flush.
        let received = batch.iter().filter(|m| &m.dst == ia).count();
        let mut departures: Vec<&FlowRecord> = lrs_hops
            .iter()
            .filter(|r| &r.src == ia && r.time >= flush_time)
            .collect();
        departures.sort_by_key(|r| r.time);
        for d in departures.into_iter().take(received) {
            if !candidates.contains(&d.flow) {
                candidates.push(d.flow);
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len())])
}

/// Size strategy (padding disabled): match the target's unique size on
/// the LRS segment.
fn guess_by_size(target: &FlowRecord, lrs_hops: &[FlowRecord]) -> Option<u64> {
    lrs_hops
        .iter()
        .filter(|r| r.size == target.size && r.time >= target.time)
        .min_by_key(|r| r.time.as_micros() - target.time.as_micros())
        .map(|r| r.flow)
}

/// Convenience: run observation + attack in one call.
pub fn measure_linkage(config: &ObservationConfig, seed: u64) -> CorrelationOutcome {
    let tap = run_observation(config, seed);
    correlation_attack(&tap, config, seed ^ 0xadda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_close_to_one_over_s_single_instance() {
        let config = ObservationConfig {
            shuffle_size: 10,
            requests: 4_000,
            ..ObservationConfig::default()
        };
        let outcome = measure_linkage(&config, 42);
        // Theory: 1/S = 0.1. Allow generous statistical slack.
        assert!(
            (outcome.success_rate - 0.1).abs() < 0.04,
            "measured {} vs bound {}",
            outcome.success_rate,
            outcome.bound_single
        );
    }

    #[test]
    fn shuffling_disabled_lets_attacker_win() {
        let config = ObservationConfig {
            shuffle_size: 1,
            requests: 500,
            ..ObservationConfig::default()
        };
        let outcome = measure_linkage(&config, 43);
        // Residual confusion comes only from IA service-time reordering
        // across adjacent requests, not from shuffling.
        assert!(
            outcome.success_rate > 0.75,
            "S=1 should be mostly linkable: {}",
            outcome.success_rate
        );
    }

    #[test]
    fn larger_s_lowers_success() {
        let base = ObservationConfig {
            requests: 3_000,
            ..ObservationConfig::default()
        };
        let s5 = measure_linkage(
            &ObservationConfig {
                shuffle_size: 5,
                ..base.clone()
            },
            44,
        );
        let s20 = measure_linkage(
            &ObservationConfig {
                shuffle_size: 20,
                ..base
            },
            44,
        );
        assert!(s20.success_rate < s5.success_rate);
    }

    #[test]
    fn more_ia_instances_lower_success() {
        let base = ObservationConfig {
            shuffle_size: 10,
            requests: 4_000,
            ..ObservationConfig::default()
        };
        let i1 = measure_linkage(&base, 45);
        let i4 = measure_linkage(
            &ObservationConfig {
                ia_instances: 4,
                ..base
            },
            45,
        );
        assert!(
            i4.success_rate <= i1.success_rate + 0.01,
            "I=4 ({}) should not exceed I=1 ({})",
            i4.success_rate,
            i1.success_rate
        );
    }

    #[test]
    fn no_padding_breaks_unlinkability() {
        let config = ObservationConfig {
            shuffle_size: 10,
            requests: 500,
            padding: false,
            ..ObservationConfig::default()
        };
        let outcome = measure_linkage(&config, 46);
        assert!(
            outcome.success_rate > 0.5,
            "size fingerprinting should mostly win: {}",
            outcome.success_rate
        );
    }

    #[test]
    fn bounds_reported() {
        let config = ObservationConfig {
            shuffle_size: 8,
            ia_instances: 2,
            requests: 100,
            ..ObservationConfig::default()
        };
        let outcome = measure_linkage(&config, 47);
        assert_eq!(outcome.bound_single, 1.0 / 8.0);
        assert_eq!(outcome.bound_scaled, 1.0 / 16.0);
        assert_eq!(outcome.attempts, 100);
    }
}
