//! The low-traffic limitation and its multi-tenancy mitigation (§6.3).
//!
//! "The effectiveness of shuffling depends on our assumption that there is
//! sufficient traffic. In certain cases, e.g., for unpopular websites or
//! for some given periods of times (e.g., at night time), this assumption
//! may not hold … Possible mitigation would be for the RaaS provider to
//! leverage multi-tenancy, i.e., use the same proxy layer for multiple
//! applications, thereby increasing the minimum traffic."
//!
//! This module measures the *effective anonymity set*: the actual batch
//! size at each shuffle flush. When the timer fires before `S` requests
//! arrive, a request hides among fewer than `S-1` others — quantifying
//! exactly how much privacy low traffic costs, and how much aggregating
//! tenants restores.

use pprox_core::shuffler::{ShuffleBuffer, ShuffleConfig};
use pprox_net::service::SimRng;

/// Distribution of flush batch sizes over one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymitySetReport {
    /// Mean batch size at flush (the average anonymity set).
    pub mean_batch: f64,
    /// Fraction of flushes that were timer-driven (under-filled).
    pub timeout_fraction: f64,
    /// Fraction of requests that traveled in a batch of size 1 — fully
    /// linkable by a network observer.
    pub singleton_fraction: f64,
    /// Total requests driven.
    pub requests: usize,
}

/// Simulates one proxy instance's shuffle buffer under Poisson traffic of
/// `rps` for `duration_secs`, returning the anonymity-set statistics.
pub fn measure_anonymity_set(
    shuffle: ShuffleConfig,
    rps: f64,
    duration_secs: f64,
    seed: u64,
) -> AnonymitySetReport {
    assert!(rps > 0.0 && duration_secs > 0.0);
    let mut rng = SimRng::from_seed(seed);
    let mut buffer: ShuffleBuffer<u64> = ShuffleBuffer::new(shuffle, seed ^ 0x10);
    let mut now_us = 0.0f64;
    let horizon_us = duration_secs * 1e6;
    let mut batches: Vec<usize> = Vec::new();
    let mut requests = 0usize;
    let mut flow = 0u64;
    while now_us < horizon_us {
        let next_arrival = now_us + rng.exponential(1e6 / rps);
        // Fire any timer deadlines before the next arrival.
        while let Some(deadline) = buffer.deadline_us() {
            if (deadline as f64) < next_arrival {
                if let Some(flush) = buffer.poll_timeout(deadline) {
                    batches.push(flush.items.len());
                }
            } else {
                break;
            }
        }
        now_us = next_arrival;
        if now_us >= horizon_us {
            break;
        }
        requests += 1;
        flow += 1;
        if let Some(flush) = buffer.push(now_us as u64, flow) {
            batches.push(flush.items.len());
        }
    }
    if let Some(flush) = buffer.drain() {
        batches.push(flush.items.len());
    }
    let timer_flushes = buffer.timeout_flushes();
    let total_flushes = buffer.flushes().max(1);
    let total_batched: usize = batches.iter().sum();
    let singletons: usize = batches.iter().filter(|&&b| b == 1).count();
    AnonymitySetReport {
        mean_batch: total_batched as f64 / batches.len().max(1) as f64,
        timeout_fraction: timer_flushes as f64 / total_flushes as f64,
        singleton_fraction: singletons as f64 / total_batched.max(1) as f64,
        requests,
    }
}

/// The multi-tenancy mitigation: `tenants` applications each contributing
/// `rps_per_tenant` share one proxy layer. Returns the aggregated report.
pub fn measure_with_multitenancy(
    shuffle: ShuffleConfig,
    rps_per_tenant: f64,
    tenants: usize,
    duration_secs: f64,
    seed: u64,
) -> AnonymitySetReport {
    assert!(tenants >= 1);
    measure_anonymity_set(
        shuffle,
        rps_per_tenant * tenants as f64,
        duration_secs,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffle(s: usize) -> ShuffleConfig {
        ShuffleConfig {
            size: s,
            timeout_us: 500_000,
        }
    }

    #[test]
    fn high_traffic_fills_batches() {
        // 250 RPS with S=10: batches fill in ~40 ms, far under the timer.
        let report = measure_anonymity_set(shuffle(10), 250.0, 60.0, 1);
        assert!(report.mean_batch > 9.5, "mean {}", report.mean_batch);
        assert!(report.timeout_fraction < 0.05);
        assert!(report.singleton_fraction < 0.01);
    }

    #[test]
    fn night_time_traffic_starves_batches() {
        // 2 RPS with S=10 and a 500 ms timer: ~1 request per window.
        let report = measure_anonymity_set(shuffle(10), 2.0, 300.0, 2);
        assert!(report.mean_batch < 3.0, "mean {}", report.mean_batch);
        // At 2 RPS with a 500 ms timer the expected singleton share is
        // P(no arrival in window) / E[batch] = e^-1 / 2 ≈ 0.18; bound it
        // well below that so the assertion is about starvation, not the
        // luck of one RNG stream (the high-traffic case sits under 0.01).
        assert!(
            report.singleton_fraction > 0.1,
            "many requests travel alone: {}",
            report.singleton_fraction
        );
        assert!(report.timeout_fraction > 0.9);
    }

    #[test]
    fn multitenancy_restores_anonymity() {
        let alone = measure_anonymity_set(shuffle(10), 2.0, 300.0, 3);
        let pooled = measure_with_multitenancy(shuffle(10), 2.0, 25, 300.0, 3);
        assert!(
            pooled.mean_batch > alone.mean_batch * 2.0,
            "pooled {} vs alone {}",
            pooled.mean_batch,
            alone.mean_batch
        );
        assert!(pooled.singleton_fraction < 0.02);
    }

    #[test]
    fn anonymity_grows_monotonically_with_traffic() {
        let mut last = 0.0;
        for rps in [1.0, 5.0, 20.0, 100.0] {
            let report = measure_anonymity_set(shuffle(10), rps, 120.0, 4);
            assert!(
                report.mean_batch >= last - 0.2,
                "rps {rps}: {} < {last}",
                report.mean_batch
            );
            last = report.mean_batch;
        }
    }

    #[test]
    fn counts_are_consistent() {
        let report = measure_anonymity_set(shuffle(5), 50.0, 30.0, 5);
        // Roughly rps × duration requests observed.
        assert!((report.requests as f64 - 1_500.0).abs() < 300.0);
    }
}
