//! Adversary harness: executable versions of the paper's security
//! analysis (§6).
//!
//! The PProx paper proves its properties informally. This crate turns each
//! argument into a *measurement*:
//!
//! * [`observer`] — replays the wire-level message schedule an adversary
//!   tapping every link would record (§2.3).
//! * [`correlation`] — mounts the best traffic-correlation attack on that
//!   trace and compares the measured linkage probability with the §6.2
//!   bounds `1/S` and `1/(S·I)`; includes the no-padding ablation where
//!   size fingerprints defeat shuffling.
//! * [`cases`] — the §6.1 case analysis against a live deployment: break
//!   a UA or IA enclave (through the simulated-SGX compromise API), read
//!   the whole LRS database, and check exactly what leaks. Includes the
//!   hypothetical two-layer break (forbidden by the §2.3 model) as a
//!   positive control, and the §6.3 item-pseudonymization-off trade-off.
//! * [`history`] — the §6.3 history-based intersection attack and its
//!   IP-hiding mitigation, measured quantitatively.
//! * [`lowtraffic`] — the §6.3 low-traffic limitation: effective
//!   anonymity-set size under starved shuffle buffers, and the
//!   multi-tenancy mitigation.
//! * [`combined`] — the rejected single-enclave alternative (§3): cheaper,
//!   and fatally linkable after one break.
//! * [`telemetry_audit`] — the §6.2 adversary pointed at the *monitoring*
//!   system: joins exported telemetry spans across the shuffle boundary,
//!   checks linkage stays at the `1/S` baseline under trace-ID
//!   re-randomization, and demonstrates the stable-ID ablation is caught.
//! * [`scrape_audit`] — the §6.2 adversary holding the *wire metrics
//!   exports* (PR 8's scrape channel) as side information: verifies the
//!   bucketed aggregates add nothing over the network observer (linkage
//!   stays at `1/S`), catches the raw-timestamp unsafe-export ablation,
//!   and triages real snapshots for linkage oracles.
//! * [`shard_audit`] — the §6.2 adversary pointed at the *sharded LRS
//!   tier*: scores post-shuffle linkage with per-departure shard labels
//!   in hand (must stay at `1/S` — the label is a pure function of the
//!   pseudonym), checks consistent-hash balance so no shard's
//!   population becomes an identifiable sub-anonymity-set, and flags
//!   the arrival-order routing ablation.
//! * [`wire_audit`] — the §6.2 adversary pointed at *real sockets*: a
//!   burst-clustering, rank-matching linkage estimator over frame
//!   timings recorded by a tap on the UA→IA boundary, scored against
//!   `1/S` and `1/(S·I)`; `pprox-scenario` feeds it live cluster traces.
//! * [`at_rest_audit`] — the §6.1 database adversary pointed at *disk*:
//!   scans a durable store directory (`pprox-store`) for plaintext
//!   user/item identifiers, unpadded record lengths, and foreign files,
//!   verifying the at-rest image is pseudonymous padded ciphertext only.
//!
//! The harness binary `security_analysis` in `pprox-bench` prints the
//! full report; EXPERIMENTS.md records the numbers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod at_rest_audit;
pub mod cases;
pub mod combined;
pub mod correlation;
pub mod history;
pub mod lowtraffic;
pub mod observer;
pub mod scrape_audit;
pub mod shard_audit;
pub mod telemetry_audit;
pub mod wire_audit;

pub use at_rest_audit::{audit_store_dir, AtRestAuditOutcome, PlaintextHit};
pub use cases::{break_ia_and_read_database, break_ua_and_read_database, CaseOutcome};
pub use correlation::{correlation_attack, measure_linkage, CorrelationOutcome};
pub use history::{intersection_attack, IntersectionOutcome};
pub use lowtraffic::{measure_anonymity_set, AnonymitySetReport};
pub use observer::{run_observation, ObservationConfig};
pub use scrape_audit::{
    audit_scrape_channel, scan_export_for_oracles, ScrapeAuditConfig, ScrapeAuditOutcome,
};
pub use shard_audit::{shard_skew_attack, ShardAuditConfig, ShardAuditOutcome};
pub use telemetry_audit::{audit_telemetry, TelemetryAuditConfig, TelemetryAuditOutcome};
pub use wire_audit::{
    wire_linkage_attack, TraceArrival, TraceDeparture, WireAuditConfig, WireAuditOutcome, WireTrace,
};
