//! Traffic-analysis linkage estimator over *wire* frame timings (the
//! §6.2 network adversary pointed at a real socket boundary).
//!
//! [`crate::telemetry_audit`] measures linkage on exported spans; this
//! module measures it on the observations a recording tap between the UA
//! and IA tiers actually yields: per-frame timestamps, size classes, and
//! which tap (instance) saw them. Frames are constant-size and carry
//! per-hop correlation ids, so the only attack surface left is timing —
//! exactly the §4.3 claim under test.
//!
//! The adversary strategy implemented here is the strongest simple one
//! available to a boundary observer:
//!
//! 1. **Burst clustering** — shuffle flushes hit the wire as bursts;
//!    departures separated by more than `batch_gap_us` start a new batch.
//! 2. **FIFO batch assignment** — the shuffle buffer holds exactly the
//!    arrivals since its last flush, so the adversary assigns the
//!    earliest unassigned arrivals to each batch in time order.
//! 3. **Rank matching** — within a batch, pair the i-th earliest arrival
//!    with the i-th departure frame. Under a uniform permutation this
//!    succeeds with probability `1/S` per request (no strategy does
//!    better); under a broken, order-preserving shuffle it succeeds
//!    almost always — which is how the ablation gets *caught*.
//!
//! Two adversary positions are scored: **instance-aware** (the observer
//! brackets one UA instance and also sees which instance each arrival
//! went to — bound `1/S`) and **instance-blind** (the observer sees the
//! merged egress of all `I` instances but cannot attribute arrivals to
//! instances — bound `1/(S·I)`, the paper's across-instances curve).
//!
//! Ground truth (`TraceDeparture::truth`) comes from the cluster's
//! opt-in [`pprox-wire` linkage audit]; the attack logic below never
//! reads it — it is consulted only to score guesses.
//!
//! [`pprox-wire` linkage audit]: https://example.invalid/pprox-wire-audit

/// One request arrival as the client-side observer sees it: who (which
/// request index, known pre-shuffle — arrival linkage is trivial for an
/// on-path observer), when, and which UA instance the front door chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceArrival {
    /// Request index (the adversary's target identifier).
    pub request: usize,
    /// Arrival instant, µs on the shared scenario clock.
    pub at_us: u64,
    /// UA instance the request was routed to (hidden from the
    /// instance-blind adversary).
    pub instance: u16,
}

/// One egress frame as the tap records it, plus the ground-truth request
/// it carried (used for scoring only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDeparture {
    /// Observation instant at the tap, µs on the shared scenario clock.
    pub at_us: u64,
    /// UA instance whose uplink tap saw the frame.
    pub instance: u16,
    /// Answer key: the request this frame actually carried.
    pub truth: usize,
}

/// Everything one scenario run hands the estimator.
#[derive(Debug, Clone)]
pub struct WireTrace {
    /// Shuffle buffer size `S` the cluster ran with.
    pub shuffle_size: usize,
    /// UA instances `I`.
    pub instances: usize,
    /// Client-side arrival observations.
    pub arrivals: Vec<TraceArrival>,
    /// Tap-side egress observations with ground truth attached.
    pub departures: Vec<TraceDeparture>,
}

/// Estimator tuning.
#[derive(Debug, Clone, Copy)]
pub struct WireAuditConfig {
    /// Inter-frame gap (µs) that starts a new burst. Should sit between
    /// the intra-flush spread (~1 ms on loopback) and the inter-flush
    /// interval (`S / rate`).
    pub batch_gap_us: u64,
    /// Score the instance-blind adversary (merged egress, unattributed
    /// arrivals) instead of the instance-aware one.
    pub instance_blind: bool,
}

impl Default for WireAuditConfig {
    fn default() -> Self {
        WireAuditConfig {
            batch_gap_us: 8_000,
            instance_blind: false,
        }
    }
}

/// Measured linkage vs the analytic curve for one adversary position.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAuditOutcome {
    /// Departure frames attacked (each yields at most one guess).
    pub attempts: usize,
    /// Correct request↔frame identifications.
    pub correct: usize,
    /// Measured linkage probability.
    pub success_rate: f64,
    /// The analytic curve under test: `1/S` (aware) or `1/(S·I)` (blind).
    pub bound: f64,
    /// Accepted excursion above the bound: three binomial standard
    /// deviations at `attempts` samples plus 0.01 absolute slack.
    pub tolerance: f64,
    /// Bursts the clustering recovered.
    pub batches: usize,
    /// Mean recovered burst size (≈ effective anonymity-set size).
    pub mean_batch: f64,
    /// `"instance-aware"` or `"instance-blind"`.
    pub label: &'static str,
}

impl WireAuditOutcome {
    /// Whether the measured linkage respects the analytic curve:
    /// `success_rate ≤ bound + tolerance`.
    pub fn within_bound(&self) -> bool {
        self.success_rate <= self.bound + self.tolerance
    }
}

/// Mounts the burst-cluster + FIFO + rank-match attack on a wire trace
/// and scores it against the analytic bound.
pub fn wire_linkage_attack(trace: &WireTrace, config: &WireAuditConfig) -> WireAuditOutcome {
    let s = trace.shuffle_size.max(1);
    let i = trace.instances.max(1);
    let (bound, label) = if config.instance_blind {
        (1.0 / (s * i) as f64, "instance-blind")
    } else {
        (1.0 / s as f64, "instance-aware")
    };

    // The adversary's view of the egress: per-instance streams when
    // aware, one merged stream when blind.
    let mut streams: Vec<Vec<&TraceDeparture>> = if config.instance_blind {
        vec![trace.departures.iter().collect()]
    } else {
        let mut by_instance = vec![Vec::new(); i];
        for d in &trace.departures {
            by_instance[(d.instance as usize).min(i - 1)].push(d);
        }
        by_instance
    };
    for stream in &mut streams {
        stream.sort_by_key(|d| d.at_us);
    }

    // Burst clustering per stream, tagged with the stream they came from
    // (the aware adversary only considers that instance's arrivals).
    struct Batch<'a> {
        stream: usize,
        frames: Vec<&'a TraceDeparture>,
    }
    let mut batches: Vec<Batch> = Vec::new();
    for (stream_idx, stream) in streams.iter().enumerate() {
        let mut current: Vec<&TraceDeparture> = Vec::new();
        for d in stream {
            if let Some(last) = current.last() {
                if d.at_us.saturating_sub(last.at_us) > config.batch_gap_us {
                    batches.push(Batch {
                        stream: stream_idx,
                        frames: std::mem::take(&mut current),
                    });
                }
            }
            current.push(d);
        }
        if !current.is_empty() {
            batches.push(Batch {
                stream: stream_idx,
                frames: current,
            });
        }
    }
    // FIFO assignment runs over batches in observation order.
    batches.sort_by_key(|b| b.frames.first().map_or(0, |f| f.at_us));

    // Arrivals sorted by time; `assigned` marks consumption.
    let mut arrivals: Vec<&TraceArrival> = trace.arrivals.iter().collect();
    arrivals.sort_by_key(|a| a.at_us);
    let mut assigned = vec![false; arrivals.len()];

    let mut correct = 0usize;
    let batch_count = batches.len();
    let mut frame_total = 0usize;
    for batch in &batches {
        let last_at = batch.frames.last().map_or(0, |f| f.at_us);
        frame_total += batch.frames.len();
        // The earliest unassigned arrivals that (a) the adversary can
        // attribute to this stream and (b) precede the batch's last
        // frame — the FIFO candidate set.
        let mut candidates: Vec<usize> = Vec::with_capacity(batch.frames.len());
        for (idx, a) in arrivals.iter().enumerate() {
            if candidates.len() == batch.frames.len() {
                break;
            }
            if assigned[idx] || a.at_us > last_at {
                continue;
            }
            if !config.instance_blind && a.instance as usize != batch.stream {
                continue;
            }
            candidates.push(idx);
        }
        // Rank match: i-th earliest candidate ↔ i-th departure frame.
        for (frame, &cand) in batch.frames.iter().zip(&candidates) {
            assigned[cand] = true;
            if arrivals[cand].request == frame.truth {
                correct += 1;
            }
        }
    }

    let attempts = trace.departures.len();
    let n = attempts.max(1) as f64;
    WireAuditOutcome {
        attempts,
        correct,
        success_rate: correct as f64 / n,
        bound,
        tolerance: 3.0 * (bound * (1.0 - bound) / n).sqrt() + 0.01,
        batches: batch_count,
        mean_batch: frame_total as f64 / (batch_count.max(1)) as f64,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_crypto::rng::SecureRng;

    /// Builds a synthetic trace: `batches` flush groups of `s` requests
    /// per instance, arrivals 1 ms apart, each group released as a burst
    /// (frames 100 µs apart) 5 ms after its last arrival, permuted per
    /// `shuffled`.
    fn synthetic(
        s: usize,
        instances: usize,
        batches: usize,
        shuffled: bool,
        seed: u64,
    ) -> WireTrace {
        let mut rng = SecureRng::from_seed(seed);
        let mut arrivals = Vec::new();
        let mut departures = Vec::new();
        let mut now = 0u64;
        let mut req = 0usize;
        for _ in 0..batches {
            // Interleaved arrivals across instances (round-robin), the
            // way a front door actually routes them.
            let mut per_instance: Vec<Vec<(usize, u64)>> = vec![Vec::new(); instances];
            for k in 0..s * instances {
                now += 1_000;
                let inst = k % instances;
                arrivals.push(TraceArrival {
                    request: req,
                    at_us: now,
                    instance: inst as u16,
                });
                per_instance[inst].push((req, now));
                req += 1;
            }
            for (inst, group) in per_instance.iter().enumerate() {
                let mut order: Vec<usize> = (0..group.len()).collect();
                if shuffled {
                    rng.shuffle(&mut order);
                }
                let burst_start = now + 5_000 + inst as u64 * 600;
                for (slot, &g) in order.iter().enumerate() {
                    departures.push(TraceDeparture {
                        at_us: burst_start + slot as u64 * 100,
                        instance: inst as u16,
                        truth: group[g].0,
                    });
                }
            }
            now += 30_000; // inter-flush gap ≫ batch_gap_us
        }
        WireTrace {
            shuffle_size: s,
            instances,
            arrivals,
            departures,
        }
    }

    #[test]
    fn shuffled_trace_sits_at_one_over_s() {
        let trace = synthetic(8, 1, 60, true, 0x11ce);
        let out = wire_linkage_attack(&trace, &WireAuditConfig::default());
        assert_eq!(out.label, "instance-aware");
        assert!(
            out.within_bound(),
            "measured {} vs bound {} (+{})",
            out.success_rate,
            out.bound,
            out.tolerance
        );
        // The attack must actually reach the floor, not under-perform.
        assert!(
            out.success_rate > out.bound / 3.0,
            "attack under-performs: {}",
            out.success_rate
        );
        assert!((out.mean_batch - 8.0).abs() < 1.0, "{}", out.mean_batch);
    }

    #[test]
    fn unshuffled_trace_is_caught() {
        let trace = synthetic(8, 1, 40, false, 0x11cf);
        let out = wire_linkage_attack(&trace, &WireAuditConfig::default());
        assert!(
            out.success_rate > 0.9,
            "order-preserving release must link almost always: {}",
            out.success_rate
        );
        assert!(
            !out.within_bound(),
            "the audit must flag the broken shuffle"
        );
    }

    #[test]
    fn blind_adversary_pays_the_instance_factor() {
        let trace = synthetic(6, 2, 60, true, 0x11d0);
        let aware = wire_linkage_attack(&trace, &WireAuditConfig::default());
        let blind = wire_linkage_attack(
            &trace,
            &WireAuditConfig {
                instance_blind: true,
                ..WireAuditConfig::default()
            },
        );
        assert_eq!(blind.label, "instance-blind");
        assert!((blind.bound - 1.0 / 12.0).abs() < 1e-12);
        assert!(aware.within_bound(), "aware: {}", aware.success_rate);
        assert!(blind.within_bound(), "blind: {}", blind.success_rate);
        assert!(
            blind.success_rate <= aware.success_rate + aware.tolerance,
            "hiding instance attribution cannot help the adversary"
        );
    }

    #[test]
    fn tolerance_shrinks_with_samples() {
        let small = synthetic(4, 1, 5, true, 1);
        let large = synthetic(4, 1, 200, true, 1);
        let o_small = wire_linkage_attack(&small, &WireAuditConfig::default());
        let o_large = wire_linkage_attack(&large, &WireAuditConfig::default());
        assert!(o_large.tolerance < o_small.tolerance);
    }
}
