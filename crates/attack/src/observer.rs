//! The network-observation experiment: simulate the message schedule the
//! adversary sees.
//!
//! §2.3: the adversary "may monitor network flows between the nodes
//! forming this infrastructure … and correlate in time its observations."
//! This module replays the PProx message pattern — clients → UA instances
//! (shuffle buffers of size `S`) → IA instances → LRS — and records every
//! hop into a [`Tap`], producing exactly the observation trace §6.2's
//! analysis reasons about. Contents are irrelevant to the observer (all
//! encrypted, constant size unless padding is disabled), so only
//! endpoints, times, and sizes are modelled.

use pprox_core::shuffler::{ShuffleBuffer, ShuffleConfig};
use pprox_net::service::SimRng;
use pprox_net::tap::{Segment, Tap};
use pprox_net::time::SimTime;

/// Parameters of an observation experiment.
#[derive(Debug, Clone)]
pub struct ObservationConfig {
    /// Shuffle buffer size `S`.
    pub shuffle_size: usize,
    /// UA instances (`U` in §6.2).
    pub ua_instances: usize,
    /// IA instances (`I` in §6.2).
    pub ia_instances: usize,
    /// Number of requests to drive.
    pub requests: usize,
    /// Mean gap between client arrivals, microseconds.
    pub mean_gap_us: f64,
    /// Whether messages are padded to constant size. Disabling this is
    /// the ablation showing size-correlation attacks (§4.3's rationale).
    pub padding: bool,
}

impl Default for ObservationConfig {
    fn default() -> Self {
        ObservationConfig {
            shuffle_size: 10,
            ua_instances: 1,
            ia_instances: 1,
            requests: 2_000,
            mean_gap_us: 4_000.0, // 250 requests/s
            padding: true,
        }
    }
}

/// Constant frame size used when padding is on.
const PADDED_SIZE: usize = 1024;

/// Runs the observation experiment, returning the adversary's tap.
///
/// Every request `f` (flow id = ground truth) produces:
/// 1. `ClientToUa` at its arrival time, from `client-f` to a UA instance;
/// 2. `UaToIa` when its UA buffer flushes (whole batch at one instant, in
///    shuffled order — what an observer of the UA's NIC sees);
/// 3. `IaToLrs` after the IA's processing delay. IA data-processing
///    threads dequeue from a shared concurrent queue (§5), so messages
///    that arrive together leave in an order uncorrelated with arrival.
pub fn run_observation(config: &ObservationConfig, seed: u64) -> Tap {
    let tap = Tap::new();
    let mut rng = SimRng::from_seed(seed);
    let shuffle = ShuffleConfig {
        size: config.shuffle_size,
        timeout_us: 500_000,
    };
    // Per-UA shuffle buffers holding (flow, size) pairs.
    let mut ua_buffers: Vec<ShuffleBuffer<(u64, usize)>> = (0..config.ua_instances)
        .map(|i| ShuffleBuffer::new(shuffle, seed ^ (i as u64)))
        .collect();

    // Per-IA queues of (flow, size, release_time).
    let mut ia_out: Vec<Vec<(u64, usize, u64)>> = vec![Vec::new(); config.ia_instances];

    let mut now_us = 0u64;
    for flow in 0..config.requests as u64 {
        now_us += rng.exponential(config.mean_gap_us).round() as u64;
        let size = if config.padding {
            PADDED_SIZE
        } else {
            // Unpadded: message length leaks a per-flow fingerprint (e.g.
            // the item id length), stable across hops.
            600 + (flow % 97) as usize
        };
        let ua = rng.below(config.ua_instances);
        tap.record(
            SimTime(now_us),
            Segment::ClientToUa,
            format!("client-{flow}"),
            format!("ua-{ua}"),
            size,
            flow,
        );
        if let Some(flush) = ua_buffers[ua].push(now_us, (flow, size)) {
            // The whole batch leaves the UA at one instant; the observer
            // sees the (shuffled) serialization order via record order.
            for (f, s) in flush.items {
                let ia = rng.below(config.ia_instances);
                tap.record(
                    SimTime(now_us),
                    Segment::UaToIa,
                    format!("ua-{ua}"),
                    format!("ia-{ia}"),
                    s,
                    f,
                );
                // IA processing delay: exponential service, so departure
                // order within a batch is uncorrelated with arrival order.
                let depart = now_us + 200 + rng.exponential(300.0).round() as u64;
                ia_out[ia].push((f, s, depart));
            }
        }
    }
    // Drain leftovers (end of run), then emit the IA → LRS hop in time
    // order as the observer would see it.
    for (ua, buffer) in ua_buffers.iter_mut().enumerate() {
        if let Some(flush) = buffer.drain() {
            for (f, s) in flush.items {
                let ia = rng.below(config.ia_instances);
                tap.record(
                    SimTime(now_us),
                    Segment::UaToIa,
                    format!("ua-{ua}"),
                    format!("ia-{ia}"),
                    s,
                    f,
                );
                let depart = now_us + 200 + rng.exponential(300.0).round() as u64;
                ia_out[ia].push((f, s, depart));
            }
        }
    }
    let mut lrs_msgs: Vec<(u64, usize, u64, usize)> = Vec::new(); // (flow, size, t, ia)
    for (ia, msgs) in ia_out.iter().enumerate() {
        for &(f, s, t) in msgs {
            lrs_msgs.push((f, s, t, ia));
        }
    }
    lrs_msgs.sort_by_key(|&(_, _, t, _)| t);
    for (f, s, t, ia) in lrs_msgs {
        tap.record(
            SimTime(t),
            Segment::IaToLrs,
            format!("ia-{ia}"),
            "lrs".to_owned(),
            s,
            f,
        );
    }
    tap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_traverses_all_segments() {
        let config = ObservationConfig {
            requests: 200,
            ..ObservationConfig::default()
        };
        let tap = run_observation(&config, 1);
        assert_eq!(tap.on_segment(Segment::ClientToUa).len(), 200);
        assert_eq!(tap.on_segment(Segment::UaToIa).len(), 200);
        assert_eq!(tap.on_segment(Segment::IaToLrs).len(), 200);
    }

    #[test]
    fn padded_sizes_are_constant() {
        let tap = run_observation(
            &ObservationConfig {
                requests: 100,
                ..ObservationConfig::default()
            },
            2,
        );
        for r in tap.snapshot() {
            assert_eq!(r.size, PADDED_SIZE);
        }
    }

    #[test]
    fn unpadded_sizes_vary() {
        let tap = run_observation(
            &ObservationConfig {
                requests: 100,
                padding: false,
                ..ObservationConfig::default()
            },
            3,
        );
        let sizes: std::collections::HashSet<usize> = tap
            .on_segment(Segment::ClientToUa)
            .iter()
            .map(|r| r.size)
            .collect();
        assert!(sizes.len() > 10, "sizes should fingerprint flows");
    }

    #[test]
    fn batches_leave_together() {
        let config = ObservationConfig {
            shuffle_size: 5,
            requests: 50,
            ..ObservationConfig::default()
        };
        let tap = run_observation(&config, 4);
        let ua_out = tap.on_segment(Segment::UaToIa);
        // Messages leave in groups of 5 sharing a timestamp.
        let mut by_time: std::collections::HashMap<u64, usize> = Default::default();
        for r in &ua_out {
            *by_time.entry(r.time.as_micros()).or_default() += 1;
        }
        assert!(by_time.values().all(|&n| n == 5), "{by_time:?}");
    }

    #[test]
    fn multiple_instances_used() {
        let config = ObservationConfig {
            ua_instances: 3,
            ia_instances: 2,
            requests: 300,
            ..ObservationConfig::default()
        };
        let tap = run_observation(&config, 5);
        let uas: std::collections::HashSet<String> = tap
            .on_segment(Segment::ClientToUa)
            .iter()
            .map(|r| r.dst.clone())
            .collect();
        assert_eq!(uas.len(), 3);
        let ias: std::collections::HashSet<String> = tap
            .on_segment(Segment::IaToLrs)
            .iter()
            .map(|r| r.src.clone())
            .collect();
        assert_eq!(ias.len(), 2);
    }
}
