//! Privacy audit of the exported telemetry stream (the §6.2 adversary
//! pointed at the monitoring system instead of the network).
//!
//! The paper's deployment ships logs off the proxies ("collect logs in a
//! systematic fashion using fluentd", §7.2) — which means the span stream
//! `pprox_core::telemetry` exports is *adversary-visible state*, exactly
//! like the network tap [`crate::observer`] models. This module mounts
//! the best trace-joining attack an adversary holding the full exported
//! span stream can run:
//!
//! * For a target request, the adversary knows its pre-shuffle
//!   [`Stage::ShuffleRequest`] span (pre-shuffle linkage is trivial for
//!   an on-path observer — arrival timing identifies the client).
//! * It then tries to name the post-shuffle [`Stage::Lrs`] span carrying
//!   the same request. If any exported span reuses the target's trace ID
//!   past the shuffle boundary, the join is free. Otherwise the only
//!   signal left is timing: the candidates are the `S` post-shuffle spans
//!   of the target's flush group, and the best strategy is a uniform
//!   guess among them.
//!
//! Under [`TraceIdPolicy::Rerandomize`] the measured success must sit at
//! the §6.2 baseline `1/S` (within sampling tolerance); under the
//! deliberately-leaky [`TraceIdPolicy::StableAcrossShuffle`] ablation the
//! trace IDs join across the shuffle and the attack wins outright — the
//! audit exists so that mistake is *caught*, not shipped.
//!
//! The span stream is generated in virtual time with the real production
//! types — [`ShuffleBuffer`] for batching, [`TraceIdPolicy`] for ID
//! evolution, [`SpanRing`] as the export surface — so the audit exercises
//! the same code paths the live pipeline exports through.

use pprox_core::shuffler::{ShuffleBuffer, ShuffleConfig};
use pprox_core::telemetry::{SpanRecord, SpanRing, Stage, TraceId, TraceIdPolicy};
use pprox_crypto::rng::SecureRng;
use std::collections::HashMap;

/// Parameters of one telemetry audit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryAuditConfig {
    /// Shuffle buffer size `S` (the anonymity-set size).
    pub shuffle_size: usize,
    /// Requests to generate; rounded down to a multiple of
    /// `shuffle_size` so every flush group is full (partial tail groups
    /// would shrink the last anonymity set and muddy the baseline).
    pub flows: usize,
    /// Trace-ID policy under audit.
    pub policy: TraceIdPolicy,
    /// Drives arrivals, shuffling, trace minting and adversary guesses.
    pub seed: u64,
}

impl Default for TelemetryAuditConfig {
    fn default() -> Self {
        TelemetryAuditConfig {
            shuffle_size: 10,
            flows: 2_000,
            policy: TraceIdPolicy::Rerandomize,
            seed: 0x7e1e_a0d1,
        }
    }
}

/// Result of auditing an exported span stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryAuditOutcome {
    /// Requests attacked.
    pub attempts: usize,
    /// Correct post-shuffle identifications.
    pub correct: usize,
    /// Measured linkage probability over the exported spans.
    pub success_rate: f64,
    /// The §6.2 baseline `1/S` the exporter must not beat.
    pub baseline: f64,
    /// Accepted excursion above the baseline: three binomial standard
    /// deviations at `attempts` samples, plus 0.01 absolute slack for
    /// the discretization of small sample counts.
    pub tolerance: f64,
    /// Exported policy label (`trace_policy` in the JSON snapshot).
    pub policy_label: &'static str,
}

impl TelemetryAuditOutcome {
    fn new(attempts: usize, correct: usize, s: usize, policy: TraceIdPolicy) -> Self {
        let baseline = 1.0 / s as f64;
        let n = attempts.max(1) as f64;
        TelemetryAuditOutcome {
            attempts,
            correct,
            success_rate: correct as f64 / n,
            baseline,
            tolerance: 3.0 * (baseline * (1.0 - baseline) / n).sqrt() + 0.01,
            policy_label: policy.as_str(),
        }
    }

    /// Whether the exported stream leaks no more than the network
    /// observer already could: measured success ≤ `1/S + tolerance`.
    pub fn within_baseline(&self) -> bool {
        self.success_rate <= self.baseline + self.tolerance
    }
}

/// One generated request's ground truth.
struct FlowTruth {
    /// Trace ID on the pre-shuffle segment (known to the adversary).
    pre: TraceId,
    /// Trace ID on the post-shuffle segment (what the adversary hunts).
    post: TraceId,
}

/// Generates the exported span stream for `config.flows` requests in
/// virtual time and returns the export surface plus ground truth.
fn generate_spans(config: &TelemetryAuditConfig) -> (Vec<SpanRecord>, Vec<FlowTruth>) {
    let s = config.shuffle_size.max(1);
    let flows = (config.flows / s).max(1) * s;
    let mut rng = SecureRng::from_seed(config.seed);
    let mut buffer: ShuffleBuffer<usize> = ShuffleBuffer::new(
        ShuffleConfig {
            size: s,
            // Count-driven flushes only: the audit models steady load.
            timeout_us: u64::MAX / 2,
        },
        config.seed ^ 0x0005_4a11,
    );
    let ring = SpanRing::new(flows * 3 + 8);
    let mut truth: Vec<FlowTruth> = Vec::with_capacity(flows);
    let mut arrival_trace: HashMap<usize, TraceId> = HashMap::new();

    let mut now_us = 0u64;
    for flow in 0..flows {
        // Arrivals ~1 ms apart with jitter, exactly as an open-loop
        // client population produces them.
        now_us += 700 + rng.below(600);
        let pre = TraceId::random(&mut rng);
        arrival_trace.insert(flow, pre);
        truth.push(FlowTruth { pre, post: pre });
        if let Some(flush) = buffer.push(now_us, flow) {
            let flush_time = now_us;
            // Emit spans in *shuffled* order — the order the real
            // pipeline forwards (and therefore logs) batch members.
            for (member, arrived) in flush.items.iter().zip(&flush.arrived_at_us) {
                let pre = arrival_trace[member];
                ring.push(SpanRecord {
                    trace: pre,
                    stage: Stage::ShuffleRequest,
                    instance: 0,
                    start_us: *arrived,
                    duration_us: flush_time - arrived,
                    ok: true,
                });
                let post = config.policy.next_trace(pre, &mut rng);
                truth[*member].post = post;
                // Post-shuffle processing: UA then the LRS call, inside
                // the inter-batch gap so groups do not interleave.
                let ua_start = flush_time + rng.below(120);
                let ua_dur = 40 + rng.below(80);
                ring.push(SpanRecord {
                    trace: post,
                    stage: Stage::Ua,
                    instance: (member % 4) as u16,
                    start_us: ua_start,
                    duration_us: ua_dur,
                    ok: true,
                });
                ring.push(SpanRecord {
                    trace: post,
                    stage: Stage::Lrs,
                    instance: (member % 4) as u16,
                    start_us: ua_start + ua_dur,
                    duration_us: 100 + rng.below(200),
                    ok: true,
                });
            }
        }
    }
    debug_assert!(buffer.is_empty(), "flows is a multiple of S");
    (ring.snapshot(), truth)
}

/// Runs the trace-joining attack over an exported span stream.
///
/// `spans` is everything the exporter shipped; `truth` supplies, per
/// flow, the pre-shuffle trace (adversary knowledge) and the post-shuffle
/// trace (the answer key the guess is scored against).
fn telemetry_linkage_attack(
    spans: &[SpanRecord],
    truth: &[FlowTruth],
    shuffle_size: usize,
    policy: TraceIdPolicy,
    seed: u64,
) -> TelemetryAuditOutcome {
    let mut rng = SecureRng::from_seed(seed);
    // Index the stream the way the adversary would.
    let pre_spans: HashMap<TraceId, &SpanRecord> = spans
        .iter()
        .filter(|r| r.stage == Stage::ShuffleRequest)
        .map(|r| (r.trace, r))
        .collect();
    let mut lrs_spans: Vec<&SpanRecord> = spans.iter().filter(|r| r.stage == Stage::Lrs).collect();
    lrs_spans.sort_by_key(|r| r.start_us);
    let post_traces: std::collections::HashSet<TraceId> = spans
        .iter()
        .filter(|r| r.stage != Stage::ShuffleRequest)
        .map(|r| r.trace)
        .collect();
    // All flush instants, sorted, to delimit each group's time window.
    let mut flush_times: Vec<u64> = pre_spans
        .values()
        .map(|r| r.start_us + r.duration_us)
        .collect();
    flush_times.sort_unstable();
    flush_times.dedup();

    let mut correct = 0usize;
    let mut attempts = 0usize;
    for flow in truth {
        let Some(pre) = pre_spans.get(&flow.pre) else {
            continue; // span ring dropped it (bounded retention)
        };
        attempts += 1;
        // Free join: does the pre-shuffle ID survive the boundary?
        let guess = if post_traces.contains(&flow.pre) {
            Some(flow.pre)
        } else {
            // Timing strategy: the S LRS spans inside this group's
            // window, uniform guess among them.
            let flush = pre.start_us + pre.duration_us;
            let next_flush = flush_times
                .iter()
                .copied()
                .find(|&t| t > flush)
                .unwrap_or(u64::MAX);
            let candidates: Vec<TraceId> = lrs_spans
                .iter()
                .filter(|r| r.start_us >= flush && r.start_us < next_flush)
                .map(|r| r.trace)
                .collect();
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[rng.below(candidates.len() as u64) as usize])
            }
        };
        if guess == Some(flow.post) {
            correct += 1;
        }
    }
    TelemetryAuditOutcome::new(attempts, correct, shuffle_size, policy)
}

/// Generates the exported span stream and mounts the joining attack:
/// the full audit in one call.
pub fn audit_telemetry(config: &TelemetryAuditConfig) -> TelemetryAuditOutcome {
    let (spans, truth) = generate_spans(config);
    telemetry_linkage_attack(
        &spans,
        &truth,
        config.shuffle_size.max(1),
        config.policy,
        config.seed ^ 0xa0d1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rerandomized_export_stays_at_the_shuffle_baseline() {
        let outcome = audit_telemetry(&TelemetryAuditConfig::default());
        assert_eq!(outcome.policy_label, "rerandomize");
        assert!(
            outcome.within_baseline(),
            "measured {} vs baseline {} (+{})",
            outcome.success_rate,
            outcome.baseline,
            outcome.tolerance
        );
        // And not suspiciously *below* either: the timing strategy does
        // reach the 1/S floor, so a near-zero rate would mean the attack
        // (not the defense) is broken.
        assert!(
            outcome.success_rate > outcome.baseline / 3.0,
            "attack under-performs: {}",
            outcome.success_rate
        );
    }

    #[test]
    fn stable_trace_ids_are_caught() {
        let outcome = audit_telemetry(&TelemetryAuditConfig {
            policy: TraceIdPolicy::StableAcrossShuffle,
            ..TelemetryAuditConfig::default()
        });
        assert!(
            outcome.success_rate > 0.9,
            "stable IDs should join almost always: {}",
            outcome.success_rate
        );
        assert!(
            !outcome.within_baseline(),
            "the audit must flag the leaky policy"
        );
        assert_eq!(outcome.policy_label, "stable-across-shuffle");
    }

    #[test]
    fn larger_shuffle_lowers_linkage() {
        let base = TelemetryAuditConfig {
            flows: 3_000,
            ..TelemetryAuditConfig::default()
        };
        let s5 = audit_telemetry(&TelemetryAuditConfig {
            shuffle_size: 5,
            ..base
        });
        let s20 = audit_telemetry(&TelemetryAuditConfig {
            shuffle_size: 20,
            ..base
        });
        assert!(s20.success_rate < s5.success_rate);
        assert!(s5.within_baseline() && s20.within_baseline());
    }

    #[test]
    fn tolerance_shrinks_with_samples() {
        let small = TelemetryAuditOutcome::new(100, 10, 10, TraceIdPolicy::Rerandomize);
        let large = TelemetryAuditOutcome::new(10_000, 1_000, 10, TraceIdPolicy::Rerandomize);
        assert!(large.tolerance < small.tolerance);
        assert!(small.within_baseline() && large.within_baseline());
    }
}
