//! Privacy audit of the *wire metrics exports* (the §6.2 adversary
//! holding every node's scrape output as side information).
//!
//! PR 8 gives every node a metrics scrape over the frame protocol. Like
//! the span stream audited by [`crate::telemetry_audit`], scrape output
//! leaves the trust boundary — the monitoring system is
//! adversary-visible state. This module checks, by measurement, that the
//! scrape channel adds nothing to the network observer's power:
//!
//! * [`scan_export_for_oracles`] is the adversary's *triage* pass over a
//!   scraped snapshot document: it hunts for fields that would act as an
//!   arrival oracle — raw event-time series, per-request identifiers,
//!   correlation ids — independent of the exporter's own schema
//!   whitelist. A compliant snapshot carries only bucketed aggregates
//!   and monotone counters, and scans clean.
//! * [`scrape_side_information_attack`] mounts the joining attack: the
//!   §6.2 wire adversary (a [`WireTrace`] from taps on the UA→IA
//!   boundary) *plus* the scrape side channel. With compliant side
//!   information (per-window aggregate counts and dwell buckets) the
//!   measured linkage must stay at the `1/S` baseline; under the
//!   unsafe-export ablation — a broken exporter shipping raw
//!   per-departure arrival timestamps — the join is free and the audit
//!   must flag it.
//!
//! The synthetic trace generator mirrors the production path: arrivals
//! jittered around an open-loop schedule, batching through the real
//! [`ShuffleBuffer`], departures in shuffled order. The live pipeline is
//! exercised by `pprox-scenario`, which feeds real scrapes through
//! [`scan_export_for_oracles`] during every load shape.

use crate::wire_audit::{TraceArrival, TraceDeparture, WireTrace};
use pprox_core::shuffler::{ShuffleBuffer, ShuffleConfig};
use pprox_crypto::rng::SecureRng;
use pprox_json::Value;

/// Parameters of one scrape-channel audit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeAuditConfig {
    /// Shuffle buffer size `S` (the anonymity-set size).
    pub shuffle_size: usize,
    /// Requests to generate; rounded down to a multiple of
    /// `shuffle_size` so every flush group is full.
    pub flows: usize,
    /// Scrape cadence in virtual µs — how often the adversary's
    /// monitoring feed publishes a window of aggregates.
    pub window_us: u64,
    /// Ablation: the exporter ships raw per-departure arrival
    /// timestamps alongside the aggregates. The audit must catch this.
    pub unsafe_export: bool,
    /// Drives arrivals, shuffling, and adversary guesses.
    pub seed: u64,
}

impl Default for ScrapeAuditConfig {
    fn default() -> Self {
        ScrapeAuditConfig {
            shuffle_size: 10,
            flows: 2_000,
            window_us: 100_000,
            unsafe_export: false,
            seed: 0x5c4a_9e01,
        }
    }
}

/// One published scrape window: what a compliant node exports about an
/// interval of its life — aggregates only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeWindow {
    /// Window start, µs.
    pub start_us: u64,
    /// Departures the node counted in this window.
    pub departures: u64,
    /// Bucketed dwell-time counts (log-ish buckets, no ordering).
    pub dwell_buckets: Vec<u64>,
}

/// The scrape side channel handed to the adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeSideInfo {
    /// Window length, µs.
    pub window_us: u64,
    /// Published windows, in order.
    pub windows: Vec<ScrapeWindow>,
    /// The unsafe-export ablation: raw arrival timestamps, one per
    /// departure in departure order. `None` for a compliant exporter.
    pub raw_arrivals: Option<Vec<u64>>,
}

/// Result of the side-information attack.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeAuditOutcome {
    /// Requests attacked.
    pub attempts: usize,
    /// Correct post-shuffle identifications.
    pub correct: usize,
    /// Measured linkage probability with the side channel in hand.
    pub success_rate: f64,
    /// The §6.2 baseline `1/S` the export must not beat.
    pub baseline: f64,
    /// Accepted excursion: three binomial standard deviations at
    /// `attempts` samples plus 0.01 absolute slack.
    pub tolerance: f64,
    /// Whether the audited exporter shipped the unsafe ablation.
    pub unsafe_export: bool,
}

impl ScrapeAuditOutcome {
    fn new(attempts: usize, correct: usize, s: usize, unsafe_export: bool) -> Self {
        let baseline = 1.0 / s.max(1) as f64;
        let n = attempts.max(1) as f64;
        ScrapeAuditOutcome {
            attempts,
            correct,
            success_rate: correct as f64 / n,
            baseline,
            tolerance: 3.0 * (baseline * (1.0 - baseline) / n).sqrt() + 0.01,
            unsafe_export,
        }
    }

    /// Whether the scrape channel leaks no more than the network
    /// observer already could: measured success ≤ `1/S + tolerance`.
    pub fn within_baseline(&self) -> bool {
        self.success_rate <= self.baseline + self.tolerance
    }
}

/// Coarse dwell bucketing for the aggregate windows — intentionally the
/// only granularity a compliant exporter publishes.
fn dwell_bucket(dwell_us: u64) -> usize {
    (64 - u64::leading_zeros(dwell_us.max(1)) as usize).min(31)
}

/// Generates a synthetic wire trace through the real [`ShuffleBuffer`]:
/// jittered open-loop arrivals, count-driven flushes, departures in
/// shuffled order. Returns the trace the §6.2 tap adversary records.
pub fn synthetic_trace(config: &ScrapeAuditConfig) -> WireTrace {
    let s = config.shuffle_size.max(1);
    let flows = (config.flows / s).max(1) * s;
    let mut rng = SecureRng::from_seed(config.seed);
    let mut buffer: ShuffleBuffer<usize> = ShuffleBuffer::new(
        ShuffleConfig {
            size: s,
            // Count-driven flushes only: the audit models steady load.
            timeout_us: u64::MAX / 2,
        },
        config.seed ^ 0x005c_4a11,
    );
    let mut arrivals = Vec::with_capacity(flows);
    let mut departures = Vec::new();
    let mut now_us = 0u64;
    for flow in 0..flows {
        now_us += 700 + rng.below(600);
        arrivals.push(TraceArrival {
            request: flow,
            at_us: now_us,
            instance: 0,
        });
        if let Some(flush) = buffer.push(now_us, flow) {
            // Frames leave back-to-back inside the flush, well inside
            // the inter-batch gap so groups do not interleave.
            let mut t = now_us;
            for member in &flush.items {
                t += 5 + rng.below(20);
                departures.push(TraceDeparture {
                    at_us: t,
                    instance: 0,
                    truth: *member,
                });
            }
        }
    }
    WireTrace {
        shuffle_size: s,
        instances: 1,
        arrivals,
        departures,
    }
}

/// Builds the scrape side channel an exporter would publish over the
/// run of `trace`: per-window departure counts and dwell buckets, plus
/// — under the ablation — the raw arrival timestamp of every departure.
pub fn synthesize_scrape(trace: &WireTrace, window_us: u64, unsafe_export: bool) -> ScrapeSideInfo {
    let arrival_of = |request: usize| {
        trace
            .arrivals
            .iter()
            .find(|a| a.request == request)
            .map(|a| a.at_us)
            .unwrap_or(0)
    };
    let window_us = window_us.max(1);
    let mut windows: Vec<ScrapeWindow> = Vec::new();
    for dep in &trace.departures {
        let start = (dep.at_us / window_us) * window_us;
        if windows.last().map(|w| w.start_us) != Some(start) {
            windows.push(ScrapeWindow {
                start_us: start,
                departures: 0,
                dwell_buckets: vec![0; 32],
            });
        }
        let w = windows.last_mut().expect("just pushed");
        w.departures += 1;
        let dwell = dep.at_us.saturating_sub(arrival_of(dep.truth));
        w.dwell_buckets[dwell_bucket(dwell)] += 1;
    }
    let raw_arrivals = unsafe_export.then(|| {
        trace
            .departures
            .iter()
            .map(|d| arrival_of(d.truth))
            .collect()
    });
    ScrapeSideInfo {
        window_us,
        windows,
        raw_arrivals,
    }
}

/// Mounts the joining attack: the tap trace plus the scrape channel.
///
/// For each target arrival the adversary delimits its flush group on
/// the wire (the departures between the target's arrival and the next
/// batch boundary), then uses the side channel to pick within it. A
/// compliant channel's window aggregates are constant across the
/// group's members, so the best strategy degenerates to the uniform
/// guess; the raw-timestamp ablation joins exactly.
pub fn scrape_side_information_attack(
    trace: &WireTrace,
    side: &ScrapeSideInfo,
    seed: u64,
) -> ScrapeAuditOutcome {
    let mut rng = SecureRng::from_seed(seed);
    let s = trace.shuffle_size.max(1);
    // Batch boundaries: departures sorted by time, a gap wider than the
    // intra-flush spread starts a new group.
    let mut order: Vec<usize> = (0..trace.departures.len()).collect();
    order.sort_by_key(|&i| trace.departures[i].at_us);
    let mut group_of = vec![0usize; trace.departures.len()];
    let mut group = 0usize;
    for (k, &i) in order.iter().enumerate() {
        if k > 0 {
            let prev = trace.departures[order[k - 1]].at_us;
            if trace.departures[i].at_us.saturating_sub(prev) > 200 {
                group += 1;
            }
        }
        group_of[i] = group;
    }

    let mut attempts = 0usize;
    let mut correct = 0usize;
    for target in &trace.arrivals {
        // The target's departure group, identified by ground truth the
        // way the wire adversary would by burst timing.
        let Some(dep_idx) = trace
            .departures
            .iter()
            .position(|d| d.truth == target.request)
        else {
            continue;
        };
        attempts += 1;
        let g = group_of[dep_idx];
        let candidates: Vec<usize> = (0..trace.departures.len())
            .filter(|&i| group_of[i] == g)
            .collect();
        let guess = match &side.raw_arrivals {
            // Ablation: the export names each departure's arrival time —
            // a free join against the adversary's own arrival log.
            Some(raw) => candidates
                .iter()
                .copied()
                .find(|&i| raw.get(i) == Some(&target.at_us)),
            // Compliant channel: every candidate sits in the same scrape
            // window with identical aggregates; nothing distinguishes
            // them, so guess uniformly.
            None => {
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[rng.below(candidates.len() as u64) as usize])
                }
            }
        };
        if guess.map(|i| trace.departures[i].truth) == Some(target.request) {
            correct += 1;
        }
    }
    ScrapeAuditOutcome::new(attempts, correct, s, side.raw_arrivals.is_some())
}

/// Generates the trace and side channel, then mounts the attack: the
/// full scrape audit in one call.
pub fn audit_scrape_channel(config: &ScrapeAuditConfig) -> ScrapeAuditOutcome {
    let trace = synthetic_trace(config);
    let side = synthesize_scrape(&trace, config.window_us, config.unsafe_export);
    scrape_side_information_attack(&trace, &side, config.seed ^ 0x5c4a)
}

/// The adversary's triage pass over one scraped snapshot document:
/// returns the JSON paths of fields that would act as a linkage oracle.
/// Empty means the export is aggregate-only.
///
/// Two independent heuristics (deliberately *not* the exporter's own
/// schema whitelist, so a schema bug and this scan fail independently):
///
/// * key names that ship per-request state: anything containing
///   `arrival`, `timestamp`, `trace_id`, `span`, or `corr`;
/// * value shapes that look like a raw event-time series: an array of
///   eight or more strictly increasing numbers at microsecond scale.
///   (Sparse histograms encode as `[index, count]` *pairs* and never
///   match.)
pub fn scan_export_for_oracles(root: &Value) -> Vec<String> {
    let mut hits = Vec::new();
    scan_value(root, "$", &mut hits);
    hits
}

const ORACLE_KEY_FRAGMENTS: [&str; 5] = ["arrival", "timestamp", "trace_id", "span", "corr"];

fn scan_value(value: &Value, path: &str, hits: &mut Vec<String>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                let lowered = key.to_ascii_lowercase();
                let child_path = format!("{path}.{key}");
                if ORACLE_KEY_FRAGMENTS.iter().any(|f| lowered.contains(f)) {
                    hits.push(child_path.clone());
                }
                scan_value(child, &child_path, hits);
            }
        }
        Value::Array(items) => {
            if looks_like_time_series(items) {
                hits.push(format!("{path}[raw-time-series]"));
            }
            for (i, child) in items.iter().enumerate() {
                scan_value(child, &format!("{path}[{i}]"), hits);
            }
        }
        _ => {}
    }
}

/// An array of ≥8 strictly increasing numbers reaching microsecond
/// scale: the shape of a raw event-time log.
fn looks_like_time_series(items: &[Value]) -> bool {
    if items.len() < 8 {
        return false;
    }
    let mut prev = f64::NEG_INFINITY;
    let mut max = 0.0f64;
    for item in items {
        let Value::Number(n) = item else { return false };
        if *n <= prev {
            return false;
        }
        prev = *n;
        max = max.max(*n);
    }
    max >= 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_scrape_channel_stays_at_the_shuffle_baseline() {
        let outcome = audit_scrape_channel(&ScrapeAuditConfig::default());
        assert!(!outcome.unsafe_export);
        assert!(
            outcome.within_baseline(),
            "measured {} vs baseline {} (+{})",
            outcome.success_rate,
            outcome.baseline,
            outcome.tolerance
        );
        // The uniform strategy does reach the 1/S floor; near-zero would
        // mean the attack (not the defense) is broken.
        assert!(
            outcome.success_rate > outcome.baseline / 3.0,
            "attack under-performs: {}",
            outcome.success_rate
        );
    }

    #[test]
    fn raw_timestamp_export_is_caught() {
        let outcome = audit_scrape_channel(&ScrapeAuditConfig {
            unsafe_export: true,
            ..ScrapeAuditConfig::default()
        });
        assert!(outcome.unsafe_export);
        assert!(
            outcome.success_rate > 0.9,
            "raw timestamps should join almost always: {}",
            outcome.success_rate
        );
        assert!(
            !outcome.within_baseline(),
            "the audit must flag the unsafe export"
        );
    }

    #[test]
    fn larger_shuffle_lowers_side_channel_linkage() {
        let base = ScrapeAuditConfig {
            flows: 3_000,
            ..ScrapeAuditConfig::default()
        };
        let s5 = audit_scrape_channel(&ScrapeAuditConfig {
            shuffle_size: 5,
            ..base
        });
        let s20 = audit_scrape_channel(&ScrapeAuditConfig {
            shuffle_size: 20,
            ..base
        });
        assert!(s20.success_rate < s5.success_rate);
        assert!(s5.within_baseline() && s20.within_baseline());
    }

    #[test]
    fn oracle_scan_passes_aggregate_shapes_and_flags_oracles() {
        let clean = Value::parse(
            r#"{"server":{"frames_in":120,"poll_loop":{"counts":[[3,10],[7,2]],"sum_us":900,"max_us":400}},"shuffle":{"occupancy":3}}"#,
        )
        .unwrap();
        assert!(scan_export_for_oracles(&clean).is_empty());

        let keyed = Value::parse(r#"{"server":{"arrival_times":[1,2]}}"#).unwrap();
        assert!(scan_export_for_oracles(&keyed)
            .iter()
            .any(|p| p.contains("arrival_times")));

        let series = Value::parse(
            r#"{"debug":{"events":[1000001,1000900,1001800,1002500,1003100,1004000,1005200,1006100]}}"#,
        )
        .unwrap();
        assert!(scan_export_for_oracles(&series)
            .iter()
            .any(|p| p.contains("raw-time-series")));

        // A sparse histogram's [idx, count] pairs must not be mistaken
        // for a time series even with many populated buckets.
        let pairs: Vec<Value> = (0..20)
            .map(|i| {
                Value::Array(vec![
                    Value::Number((i * 50) as f64),
                    Value::Number(2_000_000.0 + i as f64),
                ])
            })
            .collect();
        let mut hist = std::collections::BTreeMap::new();
        hist.insert("counts".to_string(), Value::Array(pairs));
        let doc = Value::Object(hist);
        assert!(scan_export_for_oracles(&doc).is_empty());
    }
}
