//! The history-based intersection attack (§6.3 "History-based attacks").
//!
//! "An adversary targeting a specific IP address could collect over time a
//! series of associated sets of S queries to the LRS. If the corresponding
//! user repeatedly receives the same recommendations, or inserts feedback
//! for the same items, the adversary could identify recurrent
//! pseudonymized items identifiers … and learn the associated
//! pseudonymized user identifier."
//!
//! This module measures that limitation quantitatively: each observation
//! of the target IP yields a candidate set of `S` pseudonymous user ids
//! (one batch); intersecting the sets across observations shrinks the
//! candidates geometrically (expected factor `S/population` per round),
//! isolating the target's pseudonym after roughly
//! `log(population) / log(population/S)` observations.

use pprox_net::service::SimRng;
use std::collections::HashSet;

/// Outcome of an intersection attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionOutcome {
    /// Observations (batches) the adversary needed before the candidate
    /// set became a singleton; `None` if it never did within the budget.
    pub rounds_to_identify: Option<usize>,
    /// Candidate-set size after each observation.
    pub candidates_per_round: Vec<usize>,
}

/// Simulates the intersection attack.
///
/// * `population` — number of active pseudonymous users.
/// * `shuffle_size` — batch size `S`; the target hides among `S-1` others
///   drawn uniformly per observation.
/// * `max_rounds` — observation budget.
///
/// # Panics
///
/// Panics if `shuffle_size` is zero or exceeds `population`.
pub fn intersection_attack(
    population: usize,
    shuffle_size: usize,
    max_rounds: usize,
    seed: u64,
) -> IntersectionOutcome {
    assert!(shuffle_size >= 1 && shuffle_size <= population);
    let mut rng = SimRng::from_seed(seed);
    let target = 0usize;
    let mut candidates: Option<HashSet<usize>> = None;
    let mut candidates_per_round = Vec::new();
    let mut rounds_to_identify = None;
    for round in 1..=max_rounds {
        // One observed batch: the target plus S-1 distinct others.
        let mut batch: HashSet<usize> = HashSet::with_capacity(shuffle_size);
        batch.insert(target);
        while batch.len() < shuffle_size {
            batch.insert(1 + rng.below(population - 1));
        }
        candidates = Some(match candidates.take() {
            None => batch,
            Some(prev) => prev.intersection(&batch).copied().collect(),
        });
        let n = candidates.as_ref().map(HashSet::len).unwrap_or(0);
        candidates_per_round.push(n);
        if n == 1 && rounds_to_identify.is_none() {
            rounds_to_identify = Some(round);
            break;
        }
    }
    IntersectionOutcome {
        rounds_to_identify,
        candidates_per_round,
    }
}

/// §6.3's proposed mitigation: an HTTP redirection through the
/// application provider hides client IPs, so the adversary cannot tell
/// which batches involve the target — every batch looks alike and the
/// intersection never converges below the whole active population.
///
/// Modelled by intersecting *unconditioned* batches: each is `S` users
/// drawn uniformly (the target present only at base rate `S/population`).
pub fn intersection_attack_with_ip_hiding(
    population: usize,
    shuffle_size: usize,
    max_rounds: usize,
    seed: u64,
) -> IntersectionOutcome {
    assert!(shuffle_size >= 1 && shuffle_size <= population);
    let mut rng = SimRng::from_seed(seed);
    let target = 0usize;
    let mut candidates: Option<HashSet<usize>> = None;
    let mut candidates_per_round = Vec::new();
    let mut rounds_to_identify = None;
    for round in 1..=max_rounds {
        let mut batch: HashSet<usize> = HashSet::with_capacity(shuffle_size);
        while batch.len() < shuffle_size {
            batch.insert(rng.below(population));
        }
        candidates = Some(match candidates.take() {
            None => batch,
            Some(prev) => prev.intersection(&batch).copied().collect(),
        });
        let n = candidates.as_ref().map(HashSet::len).unwrap_or(0);
        candidates_per_round.push(n);
        // Identification only counts if the survivor IS the target.
        if n == 1 {
            if candidates.as_ref().is_some_and(|c| c.contains(&target)) {
                rounds_to_identify = Some(round);
            }
            break;
        }
        if n == 0 {
            break;
        }
    }
    IntersectionOutcome {
        rounds_to_identify,
        candidates_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_converges_quickly() {
        let outcome = intersection_attack(1_000, 10, 100, 1);
        let rounds = outcome.rounds_to_identify.expect("should identify");
        // Expected ~ log(1000)/log(100) ≈ 1.5 → 2-4 rounds.
        assert!(rounds <= 5, "took {rounds} rounds");
    }

    #[test]
    fn candidate_sets_shrink_monotonically() {
        let outcome = intersection_attack(500, 20, 100, 2);
        for w in outcome.candidates_per_round.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn larger_s_slows_but_does_not_stop_the_attack() {
        let s10 = intersection_attack(10_000, 10, 1_000, 3)
            .rounds_to_identify
            .unwrap();
        let s100 = intersection_attack(10_000, 100, 1_000, 3)
            .rounds_to_identify
            .unwrap();
        assert!(s100 >= s10, "s100={s100} s10={s10}");
    }

    #[test]
    fn ip_hiding_defeats_the_attack() {
        // With hidden IPs the intersection usually empties out (the target
        // is rarely in consecutive random batches), so no identification.
        let mut identified = 0;
        for seed in 0..20 {
            let outcome = intersection_attack_with_ip_hiding(1_000, 10, 50, seed);
            if outcome.rounds_to_identify.is_some() {
                identified += 1;
            }
        }
        assert!(
            identified <= 1,
            "IP hiding should prevent identification ({identified}/20)"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        let _ = intersection_attack(5, 10, 10, 0);
    }
}
