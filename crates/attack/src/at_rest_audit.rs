//! Privacy audit of the *persisted* image (the §6.1 database adversary
//! pointed at disk instead of the live LRS).
//!
//! The §6.1 case analysis grants the provider the entire LRS database
//! and shows it only learns pseudonymous interactions. Once the LRS is
//! durable (`pprox-store`), the database also exists as files that
//! outlive the process — backups, stolen disks, misconfigured volumes.
//! This module scans a store directory the way that adversary would and
//! verifies the §6.1 argument still holds at rest:
//!
//! * **No plaintext identifiers.** The caller supplies the raw user and
//!   item identifiers of the workload that produced the store (ground
//!   truth the adversary wants to recover); the audit greps every
//!   persisted byte for them. One hit is a failed audit.
//! * **No unpadded lengths.** Every WAL record's ciphertext must be the
//!   16-byte IV plus a whole number of pad classes, and every snapshot
//!   block file the IV plus a whole number of block classes — the same
//!   size-class discipline the wire codec enforces (§4.3), so record
//!   sizes reveal only class counts, never payload lengths.
//! * **Self-verifying block names.** A `blocks/<hex>` file must hash to
//!   its own name; anything else in the image is either one of the known
//!   store artifacts or flagged as foreign.
//!
//! The audit deliberately does *not* use the store's keys: it reads the
//! image exactly as the adversary does, structurally.

use pprox_store::{BLOCKS_DIR, KEYRING_FILE, MANIFEST_FILE, MANIFEST_OLD_FILE, WAL_FILE};
use std::path::{Path, PathBuf};

/// AES-CTR IV length prefixing every ciphertext in the store.
const IV_LEN: u64 = 16;
/// WAL record header: u32 ciphertext length + 8-byte checksum.
const WAL_HEADER_LEN: usize = 12;

/// One plaintext identifier found in the persisted image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaintextHit {
    /// File the identifier appeared in.
    pub file: PathBuf,
    /// The identifier (as supplied by the caller).
    pub token: String,
}

/// Result of scanning one store directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AtRestAuditOutcome {
    /// Files scanned.
    pub files_scanned: usize,
    /// Total bytes scanned.
    pub bytes_scanned: u64,
    /// Plaintext identifiers found (must be empty).
    pub plaintext_hits: Vec<PlaintextHit>,
    /// Structurally complete WAL records seen.
    pub wal_records: usize,
    /// WAL records whose ciphertext length is not IV + k·pad_class
    /// (must be 0).
    pub unpadded_wal_records: usize,
    /// Trailing WAL bytes not forming a complete record (a torn tail —
    /// reported, not a failure: it is the tolerated crash artifact).
    pub wal_torn_bytes: u64,
    /// Snapshot block files seen.
    pub blocks: usize,
    /// Block files whose size is not IV + k·block_class (must be 0).
    pub unpadded_blocks: usize,
    /// Block files whose content does not hash to their name (must
    /// be 0).
    pub mismatched_blocks: usize,
    /// Files in the image that are not a known store artifact (must be
    /// empty — anything else is data escaping the encrypted paths).
    pub foreign_files: Vec<PathBuf>,
    /// Whether the sealed keyring is present (it must be: its absence
    /// with data present means the DEK lived somewhere else).
    pub keyring_present: bool,
}

impl AtRestAuditOutcome {
    /// Whether the image upholds the at-rest privacy claim: pseudonymous
    /// ciphertext only, padded lengths, nothing foreign.
    pub fn passed(&self) -> bool {
        self.plaintext_hits.is_empty()
            && self.unpadded_wal_records == 0
            && self.unpadded_blocks == 0
            && self.mismatched_blocks == 0
            && self.foreign_files.is_empty()
            && self.keyring_present
    }
}

/// Naive substring search (no std memmem on stable).
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

/// Scans the store directory at `dir` as the at-rest adversary:
/// `secrets` are the raw (pre-pseudonymization) user and item
/// identifiers of the workload that produced the store — none may
/// appear anywhere in the image.
///
/// `pad_class` / `block_class` must match the [`pprox_store::StoreConfig`]
/// the store was opened with (the defaults are 256 and 4096).
///
/// # Errors
///
/// An [`std::io::Error`] when the directory cannot be read at all;
/// per-file structural problems are findings, not errors.
pub fn audit_store_dir(
    dir: &Path,
    secrets: &[String],
    pad_class: usize,
    block_class: usize,
) -> std::io::Result<AtRestAuditOutcome> {
    let mut outcome = AtRestAuditOutcome {
        keyring_present: dir.join(KEYRING_FILE).is_file(),
        ..AtRestAuditOutcome::default()
    };

    let scan = |path: &Path, outcome: &mut AtRestAuditOutcome| -> std::io::Result<Vec<u8>> {
        let bytes = std::fs::read(path)?;
        outcome.files_scanned += 1;
        outcome.bytes_scanned += bytes.len() as u64;
        for token in secrets {
            if contains(&bytes, token.as_bytes()) {
                outcome.plaintext_hits.push(PlaintextHit {
                    file: path.to_path_buf(),
                    token: token.clone(),
                });
            }
        }
        Ok(bytes)
    };

    // Top level: the four known artifacts, the blocks directory, and
    // nothing else.
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name != BLOCKS_DIR {
                outcome.foreign_files.push(path);
            }
            continue;
        }
        match name.as_str() {
            WAL_FILE => {
                let bytes = scan(&path, &mut outcome)?;
                audit_wal(&bytes, pad_class, &mut outcome);
            }
            KEYRING_FILE | MANIFEST_FILE | MANIFEST_OLD_FILE => {
                scan(&path, &mut outcome)?;
            }
            _ => {
                scan(&path, &mut outcome)?;
                outcome.foreign_files.push(path);
            }
        }
    }

    // Blocks: hex names, self-verifying hashes, padded sizes.
    let blocks_dir = dir.join(BLOCKS_DIR);
    if blocks_dir.is_dir() {
        for entry in std::fs::read_dir(&blocks_dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = scan(&path, &mut outcome)?;
            let is_address = name.len() == 64 && name.bytes().all(|b| b.is_ascii_hexdigit());
            if !is_address {
                outcome.foreign_files.push(path);
                continue;
            }
            outcome.blocks += 1;
            let len = bytes.len() as u64;
            let padded = len > IV_LEN && (len - IV_LEN).is_multiple_of(block_class.max(1) as u64);
            if !padded {
                outcome.unpadded_blocks += 1;
            }
            let digest = pprox_crypto::sha256::digest(&bytes);
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            if hex != name {
                outcome.mismatched_blocks += 1;
            }
        }
    }

    Ok(outcome)
}

/// Walks the WAL's `len | sum | ct` records structurally (no key),
/// counting records and verifying every ciphertext length is
/// IV + k·pad_class.
fn audit_wal(bytes: &[u8], pad_class: usize, outcome: &mut AtRestAuditOutcome) {
    let mut offset = 0usize;
    while offset + WAL_HEADER_LEN <= bytes.len() {
        let len =
            u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let end = offset + WAL_HEADER_LEN + len;
        if len == 0 || end > bytes.len() {
            break; // torn tail
        }
        outcome.wal_records += 1;
        let ct_len = len as u64;
        let padded = ct_len > IV_LEN && (ct_len - IV_LEN).is_multiple_of(pad_class.max(1) as u64);
        if !padded {
            outcome.unpadded_wal_records += 1;
        }
        offset = end;
    }
    outcome.wal_torn_bytes = (bytes.len() - offset) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_store::{Measurement, SealedStore, SealingKey, SecureRng, StoreConfig, TempDir};

    fn sealing() -> SealingKey {
        SealingKey::generate(&mut SecureRng::from_seed(0xa0d1))
    }

    /// Builds a store the way the durable LRS does: pseudonymous payloads
    /// only (hex pseudonyms, never the raw ids).
    fn build_store(dir: &Path) -> Vec<String> {
        let raw_ids = vec![
            "alice".to_string(),
            "bob".to_string(),
            "item-red-shoes".to_string(),
            "item-blue-hat".to_string(),
        ];
        let (mut store, _) = SealedStore::open(
            dir,
            &sealing(),
            Measurement::of_code("audit-test"),
            StoreConfig::default(),
        )
        .unwrap();
        let post = |store: &mut SealedStore, i: u64| {
            // Pseudonymous event: what the IA hands the LRS.
            let event = format!(
                "{{\"u\":\"{:016x}\",\"i\":\"{:016x}\"}}",
                0xdead_0000 + i,
                0xbeef_0000 + i
            );
            store.append_event(event.as_bytes()).unwrap();
        };
        for i in 0..8 {
            post(&mut store, i);
        }
        store
            .snapshot(&[b"chunk-a".to_vec(), b"chunk-b".to_vec()], 8)
            .unwrap();
        for i in 8..12 {
            post(&mut store, i);
        }
        raw_ids
    }

    #[test]
    fn clean_store_passes() {
        let dir = TempDir::new("audit-clean");
        let secrets = build_store(dir.path());
        let outcome = audit_store_dir(dir.path(), &secrets, 256, 4096).unwrap();
        assert!(outcome.passed(), "clean image must pass: {outcome:?}");
        assert!(outcome.wal_records > 0);
        assert_eq!(outcome.blocks, 2);
        assert!(outcome.keyring_present);
        assert_eq!(outcome.wal_torn_bytes, 0);
    }

    #[test]
    fn plaintext_identifier_is_caught() {
        let dir = TempDir::new("audit-leak");
        let secrets = build_store(dir.path());
        // Positive control: an LRS that logged a raw id next to the
        // sealed store fails the audit.
        std::fs::write(dir.path().join("debug.log"), b"served user alice today").unwrap();
        let outcome = audit_store_dir(dir.path(), &secrets, 256, 4096).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.plaintext_hits.len(), 1);
        assert_eq!(outcome.plaintext_hits[0].token, "alice");
        assert_eq!(outcome.foreign_files.len(), 1, "stray file is also foreign");
    }

    #[test]
    fn unpadded_wal_record_is_caught() {
        let dir = TempDir::new("audit-unpadded");
        let secrets = build_store(dir.path());
        // Forge a structurally valid record whose ciphertext length is
        // not IV + k·class: correct checksum, wrong discipline.
        let ct = vec![0x5au8; 100];
        let sum = pprox_crypto::sha256::digest(&ct);
        let mut record = (ct.len() as u32).to_be_bytes().to_vec();
        record.extend_from_slice(&sum[..8]);
        record.extend_from_slice(&ct);
        let wal = dir.path().join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&record);
        std::fs::write(&wal, &bytes).unwrap();
        let outcome = audit_store_dir(dir.path(), &secrets, 256, 4096).unwrap();
        assert_eq!(outcome.unpadded_wal_records, 1);
        assert!(!outcome.passed());
    }

    #[test]
    fn corrupted_block_is_caught() {
        let dir = TempDir::new("audit-block");
        let secrets = build_store(dir.path());
        let blocks = dir.path().join(BLOCKS_DIR);
        let name = std::fs::read_dir(&blocks)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .file_name();
        let path = blocks.join(name);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let outcome = audit_store_dir(dir.path(), &secrets, 256, 4096).unwrap();
        assert_eq!(outcome.mismatched_blocks, 1);
        assert!(!outcome.passed());
    }

    #[test]
    fn torn_tail_is_reported_not_failed() {
        let dir = TempDir::new("audit-torn");
        let secrets = build_store(dir.path());
        let wal = dir.path().join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0x01, 0x02, 0x03]); // crash artifact
        std::fs::write(&wal, &bytes).unwrap();
        let outcome = audit_store_dir(dir.path(), &secrets, 256, 4096).unwrap();
        assert_eq!(outcome.wal_torn_bytes, 3);
        assert!(outcome.passed(), "a torn tail is tolerated: {outcome:?}");
    }
}
