//! Shard-skew audit: the §6.2 adversary pointed at the *sharded* LRS
//! tier.
//!
//! Sharding the backend (consistent-hash partitioning by pseudonym)
//! hands the wire adversary a new observable: every IA→LRS exchange now
//! names a shard — a distinct backend socket on the tap, and a
//! per-shard request counter on the scrape surface. This module checks,
//! by measurement, that the observable adds nothing to the §6.2
//! network observer's power:
//!
//! * The shard label is a deterministic function of the *pseudonym*
//!   (`owner(det_enc(u))`), which the LRS-side adversary is already
//!   allowed to see under §6 — so labeling departures by shard must not
//!   move post-shuffle linkage off the `1/S` baseline. The attack here
//!   gives the adversary every departure's shard label (strictly more
//!   than the scrape channel's per-shard counters, which are a
//!   coarsening of the same signal) and measures its success.
//! * A *skewed* partition quietly shrinks anonymity: users behind a
//!   tiny shard form a small identifiable population. The audit scores
//!   ring balance over a pseudonym population and flags shares outside
//!   the virtual-node guarantee.
//! * The routing ablation — shard chosen by **arrival order** instead
//!   of pseudonym hash (the classic mistake: "load balance" the
//!   partition round-robin) — correlates the label with exactly the
//!   thing the shuffle hides, and the audit must flag it: within a
//!   flush group the labels replay arrival order and the join is free.

use pprox_crypto::rng::SecureRng;
use pprox_lrs::shard::{HashRing, DEFAULT_VNODES};

/// Parameters of one shard-skew audit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAuditConfig {
    /// LRS shards on the ring.
    pub shards: usize,
    /// Virtual nodes per shard (ring balance knob).
    pub vnodes: usize,
    /// Shuffle buffer size `S` — the §6.2 anonymity-set size.
    pub shuffle_size: usize,
    /// Flush groups the adversary attacks.
    pub groups: usize,
    /// Pseudonym population routed for the balance check.
    pub population: usize,
    /// Ablation: route by arrival order (round-robin over shards)
    /// instead of by pseudonym hash. The audit must flag this.
    pub routing_ablation: bool,
    /// Drives pseudonym minting, group sampling, shuffling, guesses.
    pub seed: u64,
}

impl Default for ShardAuditConfig {
    fn default() -> Self {
        ShardAuditConfig {
            shards: 8,
            vnodes: DEFAULT_VNODES,
            shuffle_size: 10,
            groups: 400,
            population: 20_000,
            routing_ablation: false,
            seed: 0x5a4d_0e01,
        }
    }
}

/// Result of the shard-skew audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAuditOutcome {
    /// Post-shuffle identifications attempted.
    pub attempts: usize,
    /// Correct identifications with shard labels in hand.
    pub correct: usize,
    /// Measured linkage probability.
    pub success_rate: f64,
    /// The §6.2 baseline `1/S` the labels must not beat.
    pub baseline: f64,
    /// Accepted excursion: three binomial standard deviations plus 0.01
    /// absolute slack.
    pub tolerance: f64,
    /// Pseudonyms routed to each shard in the balance pass.
    pub shard_population: Vec<u64>,
    /// Largest per-shard share relative to the ideal `1/K`.
    pub max_skew: f64,
    /// Smallest per-shard share relative to the ideal `1/K`.
    pub min_skew: f64,
    /// Whether the run used the arrival-order routing ablation.
    pub routing_ablation: bool,
}

impl ShardAuditOutcome {
    /// Whether shard labels leak no more than the network observer
    /// already could: measured success ≤ `1/S + tolerance`.
    pub fn within_baseline(&self) -> bool {
        self.success_rate <= self.baseline + self.tolerance
    }

    /// Whether every shard's population share sits inside the
    /// virtual-node balance envelope (±40% of ideal) — outside it, the
    /// small-shard population is an identifiable sub-anonymity-set.
    pub fn balanced(&self) -> bool {
        self.min_skew >= 0.6 && self.max_skew <= 1.4
    }
}

/// Mints a pseudonym the shape the proxy layers emit: a fixed-length
/// base64-ish string, uniformly random — `det_enc` output is
/// indistinguishable from random to the LRS side.
fn mint_pseudonym(rng: &mut SecureRng) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    (0..44)
        .map(|_| ALPHABET[rng.below(64) as usize] as char)
        .collect()
}

/// Mounts the shard-label attack and the balance check in one pass.
///
/// For each flush group: `S` distinct pseudonymous users arrive in
/// order, depart in shuffled order, and every departure carries the
/// shard label the adversary's tap would record. The adversary links
/// each arrival to the departure set sharing the label its best routing
/// hypothesis predicts (arrival order mod K — exact under the ablation,
/// uninformative under pseudonym-hash routing) and guesses uniformly
/// within it.
pub fn shard_skew_attack(config: &ShardAuditConfig) -> ShardAuditOutcome {
    let shards = config.shards.max(1);
    let s = config.shuffle_size.max(1);
    let mut rng = SecureRng::from_seed(config.seed);
    let ring = HashRing::new(shards, config.vnodes.max(1));

    // Balance pass: the population's shard shares.
    let mut shard_population = vec![0u64; shards];
    let population: Vec<String> = (0..config.population.max(s))
        .map(|_| mint_pseudonym(&mut rng))
        .collect();
    for pseudonym in &population {
        shard_population[ring.owner(pseudonym)] += 1;
    }
    let ideal = population.len() as f64 / shards as f64;
    let max_skew = shard_population
        .iter()
        .map(|&c| c as f64 / ideal)
        .fold(0.0, f64::max);
    let min_skew = shard_population
        .iter()
        .map(|&c| c as f64 / ideal)
        .fold(f64::INFINITY, f64::min);

    // Attack pass: flush groups with shard-labeled departures.
    let mut attempts = 0usize;
    let mut correct = 0usize;
    for _ in 0..config.groups {
        // S distinct users arrive in order 0..S.
        let members: Vec<&String> = (0..s)
            .map(|_| &population[rng.below(population.len() as u64) as usize])
            .collect();
        // Shard label per arrival index: the partition under audit.
        let label_of: Vec<usize> = members
            .iter()
            .enumerate()
            .map(|(i, pseudonym)| {
                if config.routing_ablation {
                    i % shards // arrival-order routing: the broken rule
                } else {
                    ring.owner(pseudonym)
                }
            })
            .collect();
        // Departures: a uniform shuffle of the group (what the §4.3
        // buffer emits), each carrying its shard label on the tap.
        let mut departure_order: Vec<usize> = (0..s).collect();
        for i in (1..s).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            departure_order.swap(i, j);
        }
        for (target_arrival, _) in members.iter().enumerate() {
            attempts += 1;
            // The adversary's routing hypothesis: shard = arrival index
            // mod K. It filters departures to that label and guesses
            // uniformly within the set (falling back to the whole group
            // when the label is absent).
            let predicted = target_arrival % shards;
            let candidates: Vec<usize> = departure_order
                .iter()
                .copied()
                .filter(|&arrival| label_of[arrival] == predicted)
                .collect();
            let guess = if candidates.is_empty() {
                departure_order[rng.below(s as u64) as usize]
            } else {
                candidates[rng.below(candidates.len() as u64) as usize]
            };
            if guess == target_arrival {
                correct += 1;
            }
        }
    }

    let baseline = 1.0 / s as f64;
    let n = attempts.max(1) as f64;
    ShardAuditOutcome {
        attempts,
        correct,
        success_rate: correct as f64 / n,
        baseline,
        tolerance: 3.0 * (baseline * (1.0 - baseline) / n).sqrt() + 0.01,
        shard_population,
        max_skew,
        min_skew,
        routing_ablation: config.routing_ablation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudonym_hash_routing_stays_at_the_shuffle_baseline() {
        let outcome = shard_skew_attack(&ShardAuditConfig::default());
        assert!(!outcome.routing_ablation);
        assert!(
            outcome.within_baseline(),
            "shard labels must not beat 1/S: measured {} vs {} (+{})",
            outcome.success_rate,
            outcome.baseline,
            outcome.tolerance
        );
        // The attack must actually reach the floor — near-zero success
        // would mean the estimator (not the defense) is broken.
        assert!(
            outcome.success_rate > outcome.baseline / 3.0,
            "attack under-performs: {}",
            outcome.success_rate
        );
    }

    #[test]
    fn arrival_order_routing_is_flagged() {
        let outcome = shard_skew_attack(&ShardAuditConfig {
            routing_ablation: true,
            ..ShardAuditConfig::default()
        });
        assert!(outcome.routing_ablation);
        // 8 shards over groups of 10: labels nearly replay arrival
        // order, so the join succeeds most of the time.
        assert!(
            outcome.success_rate > 0.5,
            "order-correlated routing should join freely: {}",
            outcome.success_rate
        );
        assert!(
            !outcome.within_baseline(),
            "the audit must flag arrival-order routing"
        );
    }

    #[test]
    fn ring_balance_keeps_every_shard_share_in_envelope() {
        let outcome = shard_skew_attack(&ShardAuditConfig::default());
        assert_eq!(outcome.shard_population.len(), 8);
        assert_eq!(
            outcome.shard_population.iter().sum::<u64>(),
            20_000,
            "every pseudonym routed exactly once"
        );
        assert!(
            outcome.balanced(),
            "skew outside envelope: min {} max {}",
            outcome.min_skew,
            outcome.max_skew
        );
    }

    #[test]
    fn audit_is_deterministic_under_a_fixed_seed() {
        let a = shard_skew_attack(&ShardAuditConfig::default());
        let b = shard_skew_attack(&ShardAuditConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_shards_leak_less_under_the_ablation() {
        // Sanity on the estimator: with K=2 the broken rule still beats
        // the baseline, but less decisively than with K=8.
        let k2 = shard_skew_attack(&ShardAuditConfig {
            shards: 2,
            routing_ablation: true,
            ..ShardAuditConfig::default()
        });
        let k8 = shard_skew_attack(&ShardAuditConfig {
            shards: 8,
            routing_ablation: true,
            ..ShardAuditConfig::default()
        });
        assert!(k2.success_rate < k8.success_rate);
        assert!(
            !k2.within_baseline(),
            "even K=2 order routing must be flagged"
        );
    }
}
