//! Property-based tests for the simulated-TEE substrate.

use pprox_crypto::rng::SecureRng;
use pprox_sgx::epc::EpcStore;
use pprox_sgx::measurement::Measurement;
use pprox_sgx::sealing::SealingKey;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum EpcOp {
    Insert(u16, Vec<u8>),
    Remove(u16),
}

fn epc_ops() -> impl Strategy<Value = Vec<EpcOp>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(k, v)| EpcOp::Insert(k, v)),
            any::<u16>().prop_map(EpcOp::Remove),
        ],
        0..100,
    )
}

proptest! {
    /// The EPC store never exceeds its budget, its accounting matches a
    /// model map exactly, and it drains to zero.
    #[test]
    fn epc_accounting_matches_model(ops in epc_ops(), capacity in 200usize..4_000) {
        let mut store = EpcStore::with_capacity(capacity);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                EpcOp::Insert(k, v) => {
                    let accepted = store.insert(k.to_be_bytes().to_vec(), v.clone()).is_ok();
                    if accepted {
                        model.insert(k, v);
                    }
                }
                EpcOp::Remove(k) => {
                    let from_store = store.remove(&k.to_be_bytes());
                    let from_model = model.remove(&k);
                    prop_assert_eq!(from_store, from_model);
                }
            }
            prop_assert!(store.used_bytes() <= store.capacity_bytes());
            prop_assert_eq!(store.len(), model.len());
        }
        for (k, v) in model {
            prop_assert_eq!(store.get(&k.to_be_bytes()), Some(v.as_slice()));
            store.remove(&k.to_be_bytes());
        }
        prop_assert_eq!(store.used_bytes(), 0);
        prop_assert!(store.is_empty());
    }

    /// Sealing roundtrips for arbitrary payloads; cross-measurement and
    /// cross-platform unsealing always fails.
    #[test]
    fn sealing_roundtrip_and_isolation(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        code_a in "[a-z]{1,10}",
        code_b in "[a-z]{1,10}",
        seed in any::<u64>(),
    ) {
        let key = SealingKey::generate(&mut SecureRng::from_seed(seed));
        let other_key = SealingKey::generate(&mut SecureRng::from_seed(seed ^ 1));
        let m_a = Measurement::of_code(&code_a);
        let m_b = Measurement::of_code(&code_b);
        let mut rng = SecureRng::from_seed(seed ^ 2);
        let blob = key.seal(m_a, &data, &mut rng);
        prop_assert_eq!(key.unseal(m_a, &blob).unwrap(), data);
        if code_a != code_b {
            prop_assert!(key.unseal(m_b, &blob).is_err());
        }
        prop_assert!(other_key.unseal(m_a, &blob).is_err());
    }
}
