//! Simulated trusted-execution environment (Intel SGX stand-in).
//!
//! The PProx paper runs its two proxy layers inside Intel SGX enclaves.
//! This reproduction has no SGX hardware (the known reproduction gap), so
//! this crate provides a **simulated TEE** that enforces the same API
//! contract the paper's guarantees rest on:
//!
//! 1. **Isolation** — enclave state is only reachable through the ECALL
//!    boundary ([`enclave::Enclave::call`]); host code and the network
//!    observer never see secrets.
//! 2. **Attestation before provisioning** — secrets are installed only
//!    with a [`attestation::ProvisioningToken`], which requires verifying a
//!    platform-signed [`attestation::Quote`] against the expected
//!    [`measurement::Measurement`] (§2.2).
//! 3. **A realistic adversary** — unlike designs that treat enclaves as
//!    inviolable, PProx assumes side-channel attacks can break *one*
//!    enclave layer at a time (§2.3). [`enclave::Platform::break_enclave`]
//!    implements exactly that: it leaks the victim's [`enclave::SecretBag`]
//!    but refuses a synchronous break of a second layer until
//!    [`enclave::Platform::detect_and_recover`] (the Déjà Vu/Varys/Cloak
//!    detection analog) has run.
//! 4. **Resource limits** — [`epc::EpcStore`] models the scarce Enclave
//!    Page Cache used to hold pending response keys, and [`sealing`]
//!    models persistent sealed storage.
//! 5. **Attack economics** — [`sidechannel::SideChannelModel`] quantifies
//!    the §2.3 timing argument (attack duration vs detection and
//!    response) that justifies the one-layer-at-a-time model.
//!
//! What is *not* simulated: micro-architectural timing itself. The paper's
//! performance cost of SGX (world switches, EPC pressure) is modelled in
//! the cluster simulator's service-time parameters (`pprox-net`), and
//! ECALLs are counted here ([`enclave::Enclave::ecall_count`]) to drive it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attestation;
pub mod enclave;
pub mod epc;
pub mod measurement;
pub mod sealing;
pub mod sidechannel;

pub use attestation::{AttestationError, AttestationService, ProvisioningToken, Quote};
pub use enclave::{CompromiseError, Enclave, EnclaveApp, Platform, SecretBag};
pub use epc::{EpcError, EpcStore};
pub use measurement::Measurement;

/// Identifier of an enclave instance on its platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(pub u64);

impl std::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave-{}", self.0)
    }
}

/// Errors from enclave lifecycle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// ECALL before secrets were provisioned.
    NotProvisioned,
    /// Provisioning attempted twice.
    AlreadyProvisioned,
    /// Provisioning token was issued for a different enclave.
    TokenMismatch,
    /// The enclave process died (simulated crash, e.g. an AEX the host
    /// cannot resume, or an EPC fault). Its state is gone; callers must
    /// load and provision a replacement enclave.
    Crashed,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::NotProvisioned => write!(f, "enclave not provisioned"),
            EnclaveError::AlreadyProvisioned => write!(f, "enclave already provisioned"),
            EnclaveError::TokenMismatch => {
                write!(f, "provisioning token does not match enclave")
            }
            EnclaveError::Crashed => write!(f, "enclave crashed; state lost"),
        }
    }
}

impl std::error::Error for EnclaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(EnclaveId(3).to_string(), "enclave-3");
        assert_eq!(
            EnclaveError::NotProvisioned.to_string(),
            "enclave not provisioned"
        );
        assert_eq!(
            EnclaveError::TokenMismatch.to_string(),
            "provisioning token does not match enclave"
        );
    }
}
