//! Quantitative model of side-channel attacks and breach detection.
//!
//! §2.3 justifies the one-layer-at-a-time adversary with timing: published
//! SGX side-channel attacks take "tens of minutes while making enclave
//! performance drop significantly" (citing Nilsson et al.), and detection
//! mechanisms (Déjà Vu, Varys, Cloak) respond to that degradation. An
//! attacker who throttles to stay below the detection threshold takes
//! correspondingly longer. This module turns that argument into numbers:
//! given attack and detection parameters, what is the probability that
//! *both* layers are compromised simultaneously before a response?
//!
//! The model: an attack at intensity `i ∈ (0, 1]` (fraction of full
//! speed) needs `base_attack_minutes / i` to finish, while inflating the
//! victim's service time by factor `1 + slowdown_at_full_speed × i`.
//! Detection monitors performance and flags an enclave whose slowdown
//! exceeds `detection_threshold`; flagged enclaves are recovered after
//! `response_minutes`. Breaking both layers simultaneously requires the
//! second attack to *finish* within the window where the first is broken
//! but not yet recovered.

/// Parameters of the attack/detection race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideChannelModel {
    /// Time for a full-speed attack to extract enclave secrets, minutes
    /// (tens of minutes per the survey the paper cites).
    pub base_attack_minutes: f64,
    /// Victim slowdown factor at full attack speed (e.g. 1.0 = service
    /// times double).
    pub slowdown_at_full_speed: f64,
    /// Relative slowdown above which detection flags the enclave.
    pub detection_threshold: f64,
    /// Time from detection to completed response (restart + key
    /// rotation), minutes.
    pub response_minutes: f64,
}

impl Default for SideChannelModel {
    fn default() -> Self {
        SideChannelModel {
            base_attack_minutes: 30.0,
            slowdown_at_full_speed: 1.0,
            detection_threshold: 0.15,
            response_minutes: 10.0,
        }
    }
}

/// Outcome of one attack plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Whether the attack completes before detection + response.
    pub succeeds: bool,
    /// Whether it is ever detected.
    pub detected: bool,
    /// Wall-clock minutes to completion (if it succeeds).
    pub minutes_to_complete: f64,
}

impl SideChannelModel {
    /// Evaluates a single-enclave attack at `intensity ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < intensity <= 1`.
    pub fn single_attack(&self, intensity: f64) -> AttackOutcome {
        assert!(intensity > 0.0 && intensity <= 1.0);
        let duration = self.base_attack_minutes / intensity;
        let slowdown = self.slowdown_at_full_speed * intensity;
        let detected = slowdown > self.detection_threshold;
        // A detected attack still succeeds if it finishes before the
        // response lands.
        let succeeds = !detected || duration <= self.response_minutes;
        AttackOutcome {
            succeeds,
            detected,
            minutes_to_complete: duration,
        }
    }

    /// The fastest *stealthy* attack: maximal intensity that stays below
    /// the detection threshold. Returns its duration in minutes.
    pub fn stealthy_attack_minutes(&self) -> f64 {
        let max_stealth_intensity =
            (self.detection_threshold / self.slowdown_at_full_speed).min(1.0);
        self.base_attack_minutes / max_stealth_intensity
    }

    /// Can the adversary hold both layers' secrets simultaneously?
    ///
    /// Strategy space: attack layer 1 (stealthy or loud), then attack
    /// layer 2; secrets from layer 1 remain useful until the provider's
    /// response rotates them. A loud (detected) first attack starts the
    /// response clock immediately; a stealthy one never starts it, but a
    /// stealthy second attack still needs `stealthy_attack_minutes` while
    /// the first breach stays unnoticed. Both stealthy = success — unless
    /// periodic re-attestation (modelled as `audit_interval_minutes`)
    /// bounds how long any breach survives.
    pub fn both_layers_breakable(&self, audit_interval_minutes: f64) -> bool {
        let stealth = self.stealthy_attack_minutes();
        // Loud path: second attack must beat the response window.
        let loud_duration = self.base_attack_minutes; // full speed
        let loud_path = loud_duration <= self.response_minutes;
        // Stealth path: both attacks complete within one audit interval.
        let stealth_path = 2.0 * stealth <= audit_interval_minutes;
        loud_path || stealth_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_attack_is_detected() {
        let m = SideChannelModel::default();
        let o = m.single_attack(1.0);
        assert!(o.detected);
        assert!(!o.succeeds, "30 min attack vs 10 min response");
    }

    #[test]
    fn stealthy_attack_succeeds_but_slowly() {
        let m = SideChannelModel::default();
        let o = m.single_attack(0.1); // 10% intensity → 10% slowdown < 15%
        assert!(!o.detected);
        assert!(o.succeeds);
        assert_eq!(o.minutes_to_complete, 300.0);
    }

    #[test]
    fn stealthy_duration_formula() {
        let m = SideChannelModel::default();
        // Max stealth intensity = 0.15 → 30 / 0.15 = 200 minutes.
        assert_eq!(m.stealthy_attack_minutes(), 200.0);
    }

    #[test]
    fn paper_parameters_forbid_double_break() {
        let m = SideChannelModel::default();
        // With 2-hour re-attestation audits, two 200-minute stealthy
        // attacks cannot both fit, and the loud path loses to response.
        assert!(!m.both_layers_breakable(120.0));
    }

    #[test]
    fn weak_detection_allows_double_break() {
        // If the provider never audits and detection threshold is high,
        // the paper's assumption fails — quantifying why detection
        // machinery (Varys/Déjà Vu) matters.
        let weak = SideChannelModel {
            detection_threshold: 2.0, // never triggers
            ..SideChannelModel::default()
        };
        assert!(weak.both_layers_breakable(f64::INFINITY));
        assert!(
            !weak.both_layers_breakable(30.0),
            "frequent audits still save it"
        );
    }

    #[test]
    fn slow_response_allows_loud_double_break() {
        let slow = SideChannelModel {
            response_minutes: 120.0, // response slower than the attack
            ..SideChannelModel::default()
        };
        assert!(slow.both_layers_breakable(f64::INFINITY));
    }

    #[test]
    #[should_panic]
    fn invalid_intensity_panics() {
        SideChannelModel::default().single_attack(0.0);
    }
}
