//! EPC-bounded in-enclave key–value store.
//!
//! §5 of the paper: "An in-memory key-value store in the EPC (Enclave Page
//! Cache) holds the information necessary for handling requests responses
//! on their way back from the LRS." The EPC is a scarce resource (tens to
//! low hundreds of MiB on the paper's hardware), so the store accounts for
//! its footprint and rejects inserts that would exceed its capacity instead
//! of silently paging — paging would both destroy performance and create a
//! side channel.

use std::collections::HashMap;

/// Errors from the bounded store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpcError {
    /// Inserting would exceed the configured EPC budget.
    Full {
        /// Bytes the insert needed.
        needed: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for EpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpcError::Full { needed, available } => {
                write!(
                    f,
                    "EPC budget exceeded: need {needed} bytes, {available} available"
                )
            }
        }
    }
}

impl std::error::Error for EpcError {}

/// A byte-budgeted key–value store living in (simulated) enclave memory.
///
/// Accounting is approximate but monotone: every entry is charged its key
/// and value lengths plus a fixed per-entry overhead.
///
/// # Examples
///
/// ```
/// use pprox_sgx::epc::EpcStore;
///
/// let mut store = EpcStore::with_capacity(1024);
/// store.insert(b"req-1".to_vec(), vec![0u8; 100])?;
/// assert!(store.get(b"req-1").is_some());
/// # Ok::<(), pprox_sgx::epc::EpcError>(())
/// ```
#[derive(Debug)]
pub struct EpcStore {
    map: HashMap<Vec<u8>, Vec<u8>>,
    capacity: usize,
    used: usize,
}

/// Fixed bookkeeping cost charged per entry.
const ENTRY_OVERHEAD: usize = 48;

impl EpcStore {
    /// Creates a store with a byte budget.
    pub fn with_capacity(capacity: usize) -> Self {
        EpcStore {
            map: HashMap::new(),
            capacity,
            used: 0,
        }
    }

    fn cost(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + ENTRY_OVERHEAD
    }

    /// Inserts an entry, replacing any previous value under the key.
    ///
    /// # Errors
    ///
    /// [`EpcError::Full`] when the new entry would exceed the budget; the
    /// store is unchanged in that case.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), EpcError> {
        let new_cost = Self::cost(&key, &value);
        let old_cost = self.map.get(&key).map(|v| Self::cost(&key, v)).unwrap_or(0);
        let projected = self.used - old_cost + new_cost;
        if projected > self.capacity {
            return Err(EpcError::Full {
                needed: new_cost,
                available: self.capacity - (self.used - old_cost),
            });
        }
        self.map.insert(key, value);
        self.used = projected;
        Ok(())
    }

    /// Looks up a value.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Removes and returns an entry, releasing its budget.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let value = self.map.remove(key)?;
        self.used -= Self::cost(key, &value);
        Some(value)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Configured budget in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = EpcStore::with_capacity(10_000);
        s.insert(b"k".to_vec(), b"v".to_vec()).unwrap();
        assert_eq!(s.get(b"k"), Some(b"v".as_slice()));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(b"k"), Some(b"v".to_vec()));
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut s = EpcStore::with_capacity(200);
        s.insert(b"a".to_vec(), vec![0; 100]).unwrap();
        let err = s.insert(b"b".to_vec(), vec![0; 100]).unwrap_err();
        assert!(matches!(err, EpcError::Full { .. }));
        // Store unchanged on failure.
        assert_eq!(s.len(), 1);
        assert!(s.get(b"b").is_none());
    }

    #[test]
    fn replace_releases_old_budget() {
        let mut s = EpcStore::with_capacity(200);
        s.insert(b"a".to_vec(), vec![0; 120]).unwrap();
        // Replacing with a smaller value must succeed even though adding a
        // second 120-byte entry would not.
        s.insert(b"a".to_vec(), vec![0; 60]).unwrap();
        assert_eq!(s.get(b"a").unwrap().len(), 60);
        assert_eq!(s.used_bytes(), 1 + 60 + 48);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut s = EpcStore::with_capacity(100);
        assert_eq!(s.remove(b"x"), None);
    }

    #[test]
    fn budget_accounting_roundtrips() {
        let mut s = EpcStore::with_capacity(10_000);
        for i in 0u32..50 {
            s.insert(i.to_be_bytes().to_vec(), vec![0; i as usize])
                .unwrap();
        }
        for i in 0u32..50 {
            s.remove(&i.to_be_bytes());
        }
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn error_display() {
        let e = EpcError::Full {
            needed: 100,
            available: 10,
        };
        assert_eq!(
            e.to_string(),
            "EPC budget exceeded: need 100 bytes, 10 available"
        );
    }
}
