//! Enclave code identity (MRENCLAVE analog).

use pprox_crypto::base64;
use pprox_crypto::sha256;

/// A 256-bit measurement of enclave code, the simulated analog of Intel
/// SGX's `MRENCLAVE`.
///
/// Two enclaves loaded from the same code have the same measurement; the
/// attestation protocol lets a remote party check it before provisioning
/// secrets (§2.2 of the paper: "code running inside enclaves is properly
/// attested before being provided with secrets").
///
/// # Examples
///
/// ```
/// use pprox_sgx::measurement::Measurement;
///
/// let ua = Measurement::of_code("pprox-ua-v1");
/// assert_eq!(ua, Measurement::of_code("pprox-ua-v1"));
/// assert_ne!(ua, Measurement::of_code("pprox-ia-v1"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement([u8; sha256::DIGEST_LEN]);

impl Measurement {
    /// Measures a code identity string (stand-in for hashing the enclave
    /// binary pages).
    pub fn of_code(code_identity: &str) -> Self {
        Measurement(sha256::digest(code_identity.as_bytes()))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; sha256::DIGEST_LEN] {
        &self.0
    }
}

impl std::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Measurement({})", base64::encode(&self.0[..9]))
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", base64::encode(&self.0[..9]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        assert_eq!(Measurement::of_code("x"), Measurement::of_code("x"));
    }

    #[test]
    fn distinct_code_distinct_measurement() {
        assert_ne!(Measurement::of_code("a"), Measurement::of_code("b"));
    }

    #[test]
    fn debug_is_short_and_nonempty() {
        let m = Measurement::of_code("ua");
        let s = format!("{m:?}");
        assert!(s.starts_with("Measurement("));
        assert!(s.len() < 40);
    }
}
