//! Simulated SGX enclaves and the platform that hosts them.
//!
//! The contract enforced here is exactly what the PProx security analysis
//! (§6.1) relies on:
//!
//! * Enclave state (layer secrets, pending response keys) is reachable only
//!   through [`Enclave::call`] — the simulated ECALL boundary. Code outside
//!   the enclave (the proxy's event-driven server, the adversary observing
//!   the host) cannot read it.
//! * Secrets are installed only via [`Enclave::provision`], which consumes
//!   a [`ProvisioningToken`] obtained from successful remote attestation.
//! * An adversary *can* break an enclave through a side-channel attack —
//!   [`Platform::break_enclave`] — obtaining its [`SecretBag`]. But the
//!   platform enforces the paper's §2.3 assumption: attacks are slow and
//!   detectable, so **at most one measurement group** (i.e. one proxy
//!   layer) can be in a compromised state at any time. Breaking a second
//!   group requires first calling [`Platform::detect_and_recover`], which
//!   models breach detection plus key rotation and clears the first breach.

use crate::attestation::{AttestationService, ProvisioningToken, Quote};
use crate::measurement::Measurement;
use crate::sealing::SealingKey;
use crate::{EnclaveError, EnclaveId};
use parking_lot::Mutex;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::secret::SecretBytes;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Secrets extracted from a broken enclave, as named byte strings.
///
/// The attack harness inspects these to mount the §6.1 case analysis
/// (e.g. a broken UA enclave yields `sk_ua` and `k_ua` but never `k_ia`).
/// Values live in [`SecretBytes`]: the derived `Debug` therefore prints
/// names and lengths but never key material, and dropping the bag zeroes
/// every buffer.
// analysis-allow: R4 every value is a SecretBytes, whose own Debug prints
// lengths only — the derived impl is redacting by construction
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecretBag {
    entries: BTreeMap<String, SecretBytes>,
}

impl SecretBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named secret.
    pub fn insert(&mut self, name: impl Into<String>, value: Vec<u8>) {
        self.entries.insert(name.into(), SecretBytes::new(value));
    }

    /// Looks up a secret by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries.get(name).map(|v| v.expose())
    }

    /// Names of all contained secrets.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// Number of secrets in the bag.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no secrets were extracted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// State held inside an enclave must describe what an attacker would steal.
pub trait EnclaveApp: Send + 'static {
    /// The secrets an adversary obtains by breaking this enclave.
    fn leak_secrets(&self) -> SecretBag;
}

struct EnclaveInner<T> {
    state: Option<T>,
}

/// A simulated SGX enclave holding application state `T`.
///
/// Created via [`Platform::load_enclave`]; see the crate docs for the full
/// lifecycle (load → attest → provision → call).
pub struct Enclave<T: EnclaveApp> {
    id: EnclaveId,
    measurement: Measurement,
    inner: Mutex<EnclaveInner<T>>,
    compromised: AtomicBool,
    crashed: AtomicBool,
    ecalls: AtomicU64,
    platform: Weak<PlatformShared>,
}

impl<T: EnclaveApp> std::fmt::Debug for Enclave<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("id", &self.id)
            .field("measurement", &self.measurement)
            .field("compromised", &self.compromised.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: EnclaveApp> Enclave<T> {
    /// This enclave instance's id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The enclave's code measurement.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Requests a quote binding `report_data` (the attestation step).
    pub fn quote(&self, report_data: Vec<u8>) -> Quote {
        let platform = self.platform.upgrade().expect("platform dropped");
        platform
            .attestation
            .quote(self.id, self.measurement, report_data)
    }

    /// Installs application state (secrets) after attestation.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::TokenMismatch`] when the token was issued for a
    /// different enclave; [`EnclaveError::AlreadyProvisioned`] on double
    /// provisioning.
    pub fn provision(&self, token: ProvisioningToken, state: T) -> Result<(), EnclaveError> {
        if token.enclave_id != self.id || token.measurement != self.measurement {
            return Err(EnclaveError::TokenMismatch);
        }
        let mut inner = self.inner.lock();
        if inner.state.is_some() {
            return Err(EnclaveError::AlreadyProvisioned);
        }
        inner.state = Some(state);
        Ok(())
    }

    /// Executes `f` against the enclave state — the simulated ECALL.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NotProvisioned`] before [`provision`](Self::provision)
    /// succeeds; [`EnclaveError::Crashed`] after a fault-injected crash
    /// (the state is dropped — a crashed enclave cannot be revived, only
    /// replaced).
    pub fn call<R>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, EnclaveError> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(EnclaveError::Crashed);
        }
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if self.crashed.load(Ordering::Acquire) {
            return Err(EnclaveError::Crashed);
        }
        match inner.state.as_mut() {
            Some(state) => Ok(f(state)),
            None => Err(EnclaveError::NotProvisioned),
        }
    }

    /// Number of ECALLs performed so far (performance accounting: each
    /// world switch has a cost, dissected in the paper's Figure 6).
    pub fn ecall_count(&self) -> u64 {
        self.ecalls.load(Ordering::Relaxed)
    }

    /// Whether this enclave is currently in a compromised state.
    pub fn is_compromised(&self) -> bool {
        self.compromised.load(Ordering::Relaxed)
    }

    /// Whether this enclave has crashed (see [`Platform::crash_enclave`]).
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }
}

/// Object-safe view of an enclave used by the platform registry.
trait AnyEnclave: Send + Sync {
    fn id(&self) -> EnclaveId;
    fn measurement(&self) -> Measurement;
    fn leak(&self) -> Result<SecretBag, EnclaveError>;
    fn mark_compromised(&self, v: bool);
    fn compromised(&self) -> bool;
    fn crash(&self);
    fn has_crashed(&self) -> bool;
}

impl<T: EnclaveApp> AnyEnclave for Enclave<T> {
    fn id(&self) -> EnclaveId {
        self.id
    }

    fn measurement(&self) -> Measurement {
        self.measurement
    }

    fn leak(&self) -> Result<SecretBag, EnclaveError> {
        let inner = self.inner.lock();
        match inner.state.as_ref() {
            Some(state) => Ok(state.leak_secrets()),
            None => Err(EnclaveError::NotProvisioned),
        }
    }

    fn mark_compromised(&self, v: bool) {
        self.compromised.store(v, Ordering::Relaxed);
    }

    fn compromised(&self) -> bool {
        self.compromised.load(Ordering::Relaxed)
    }

    fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
        // The EPC pages are torn down with the process: state is gone.
        self.inner.lock().state = None;
    }

    fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }
}

struct PlatformShared {
    attestation: AttestationService,
    sealing: SealingKey,
    registry: Mutex<Vec<Arc<dyn AnyEnclave>>>,
    next_id: AtomicU64,
    breaches: AtomicU64,
    recoveries: AtomicU64,
    crashes: AtomicU64,
}

/// Errors from the adversary's compromise API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompromiseError {
    /// A different measurement group is already compromised; the paper's
    /// model forbids breaking two layers synchronously (§2.3).
    AnotherLayerCompromised {
        /// Measurement of the currently compromised group.
        active: Measurement,
    },
    /// Target enclave does not exist.
    UnknownEnclave,
    /// Target enclave holds no secrets yet.
    NotProvisioned,
}

impl std::fmt::Display for CompromiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompromiseError::AnotherLayerCompromised { active } => write!(
                f,
                "layer {active} is already compromised; synchronous multi-layer breaks are outside the adversary model"
            ),
            CompromiseError::UnknownEnclave => write!(f, "no such enclave"),
            CompromiseError::NotProvisioned => write!(f, "enclave holds no secrets"),
        }
    }
}

impl std::error::Error for CompromiseError {}

/// A simulated SGX-capable platform: hosts enclaves, quotes them, and
/// exposes the adversary's (rate-limited) compromise interface.
///
/// # Examples
///
/// ```
/// use pprox_sgx::enclave::{Platform, EnclaveApp, SecretBag};
/// use pprox_sgx::measurement::Measurement;
/// use pprox_crypto::rng::SecureRng;
///
/// struct Counter(u64);
/// impl EnclaveApp for Counter {
///     fn leak_secrets(&self) -> SecretBag {
///         let mut bag = SecretBag::new();
///         bag.insert("counter", self.0.to_be_bytes().to_vec());
///         bag
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::new(&mut SecureRng::from_seed(1));
/// let enclave = platform.load_enclave::<Counter>("counter-v1");
/// let quote = enclave.quote(vec![]);
/// let token = platform.attestation().verify(&quote, Measurement::of_code("counter-v1"))?;
/// enclave.provision(token, Counter(0))?;
/// enclave.call(|c| c.0 += 1)?;
/// assert_eq!(enclave.call(|c| c.0)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Platform {
    shared: Arc<PlatformShared>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("enclaves", &self.shared.registry.lock().len())
            .finish()
    }
}

impl Platform {
    /// Creates a platform with a fresh quoting key and root sealing key.
    pub fn new(rng: &mut SecureRng) -> Self {
        Platform {
            shared: Arc::new(PlatformShared {
                attestation: AttestationService::new(rng),
                sealing: SealingKey::generate(rng),
                registry: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                breaches: AtomicU64::new(0),
                recoveries: AtomicU64::new(0),
                crashes: AtomicU64::new(0),
            }),
        }
    }

    /// The platform's attestation service (shared with verifying clients).
    pub fn attestation(&self) -> &AttestationService {
        &self.shared.attestation
    }

    /// The platform's root sealing key (the CPU-fused key on real SGX).
    ///
    /// Deterministic per platform seed, so a re-provisioned process that
    /// rebuilds the platform from the same seed — the simulated analog of
    /// restarting on the same physical machine — can unseal state written
    /// before a crash without any trusted third party.
    pub fn sealing(&self) -> &SealingKey {
        &self.shared.sealing
    }

    /// Loads enclave code, returning an unprovisioned enclave.
    pub fn load_enclave<T: EnclaveApp>(&self, code_identity: &str) -> Arc<Enclave<T>> {
        let id = EnclaveId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let enclave = Arc::new(Enclave {
            id,
            measurement: Measurement::of_code(code_identity),
            inner: Mutex::new(EnclaveInner { state: None }),
            compromised: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            ecalls: AtomicU64::new(0),
            platform: Arc::downgrade(&self.shared),
        });
        self.shared.registry.lock().push(enclave.clone());
        enclave
    }

    /// Adversary action: side-channel attack stealing an enclave's secrets.
    ///
    /// # Errors
    ///
    /// Fails with [`CompromiseError::AnotherLayerCompromised`] when a
    /// different measurement group is already broken — the §2.3 assumption
    /// that breaking multiple layers synchronously is infeasible before
    /// breach detection reacts.
    pub fn break_enclave(&self, id: EnclaveId) -> Result<SecretBag, CompromiseError> {
        let registry = self.shared.registry.lock();
        let target = registry
            .iter()
            .find(|e| e.id() == id)
            .ok_or(CompromiseError::UnknownEnclave)?;
        if let Some(active) = registry
            .iter()
            .find(|e| e.compromised() && e.measurement() != target.measurement())
        {
            return Err(CompromiseError::AnotherLayerCompromised {
                active: active.measurement(),
            });
        }
        let bag = target.leak().map_err(|_| CompromiseError::NotProvisioned)?;
        target.mark_compromised(true);
        self.shared.breaches.fetch_add(1, Ordering::Relaxed);
        Ok(bag)
    }

    /// Breach detection + response (Déjà Vu / Varys / Cloak analog, §2.3):
    /// clears all compromise flags, modelling a restart with fresh secrets.
    ///
    /// Returns how many enclaves were recovered.
    pub fn detect_and_recover(&self) -> usize {
        let registry = self.shared.registry.lock();
        let mut n = 0;
        for e in registry.iter() {
            if e.compromised() {
                e.mark_compromised(false);
                n += 1;
            }
        }
        if n > 0 {
            self.shared.recoveries.fetch_add(1, Ordering::Relaxed);
        }
        n
    }

    /// Measurement of the currently compromised layer, if any.
    pub fn compromised_layer(&self) -> Option<Measurement> {
        self.shared
            .registry
            .lock()
            .iter()
            .find(|e| e.compromised())
            .map(|e| e.measurement())
    }

    /// Fault injection: crashes one enclave. Its state is dropped and
    /// every subsequent ECALL fails with [`EnclaveError::Crashed`] — the
    /// supervisor's job is to load and re-provision a replacement.
    ///
    /// # Errors
    ///
    /// [`CompromiseError::UnknownEnclave`] when `id` does not exist.
    pub fn crash_enclave(&self, id: EnclaveId) -> Result<(), CompromiseError> {
        let registry = self.shared.registry.lock();
        let target = registry
            .iter()
            .find(|e| e.id() == id)
            .ok_or(CompromiseError::UnknownEnclave)?;
        if !target.has_crashed() {
            target.crash();
            self.shared.crashes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fault injection: crashes every live enclave of a measurement group
    /// (e.g. the whole IA layer). Returns how many enclaves were killed.
    pub fn crash_layer(&self, measurement: Measurement) -> usize {
        let registry = self.shared.registry.lock();
        let mut n = 0;
        for e in registry.iter() {
            if e.measurement() == measurement && !e.has_crashed() {
                e.crash();
                n += 1;
            }
        }
        self.shared.crashes.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Total number of injected enclave crashes so far.
    pub fn crash_count(&self) -> u64 {
        self.shared.crashes.load(Ordering::Relaxed)
    }

    /// Total number of successful breaches so far.
    pub fn breach_count(&self) -> u64 {
        self.shared.breaches.load(Ordering::Relaxed)
    }

    /// Number of enclaves hosted.
    pub fn enclave_count(&self) -> usize {
        self.shared.registry.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct App {
        secret: Vec<u8>,
    }

    impl EnclaveApp for App {
        fn leak_secrets(&self) -> SecretBag {
            let mut bag = SecretBag::new();
            bag.insert("secret", self.secret.clone());
            bag
        }
    }

    fn setup() -> (Platform, Arc<Enclave<App>>) {
        let platform = Platform::new(&mut SecureRng::from_seed(1));
        let enclave = platform.load_enclave::<App>("app-v1");
        (platform, enclave)
    }

    fn provision(platform: &Platform, enclave: &Enclave<App>, secret: &[u8]) {
        let quote = enclave.quote(vec![]);
        let token = platform
            .attestation()
            .verify(&quote, Measurement::of_code("app-v1"))
            .unwrap();
        enclave
            .provision(
                token,
                App {
                    secret: secret.to_vec(),
                },
            )
            .unwrap();
    }

    #[test]
    fn call_before_provision_fails() {
        let (_p, e) = setup();
        assert_eq!(e.call(|_| ()), Err(EnclaveError::NotProvisioned));
    }

    #[test]
    fn lifecycle_load_attest_provision_call() {
        let (p, e) = setup();
        provision(&p, &e, b"k");
        assert_eq!(e.call(|a| a.secret.len()).unwrap(), 1);
        assert_eq!(e.ecall_count(), 1);
    }

    #[test]
    fn double_provision_rejected() {
        let (p, e) = setup();
        provision(&p, &e, b"k");
        let quote = e.quote(vec![]);
        let token = p
            .attestation()
            .verify(&quote, Measurement::of_code("app-v1"))
            .unwrap();
        assert_eq!(
            e.provision(token, App { secret: vec![] }),
            Err(EnclaveError::AlreadyProvisioned)
        );
    }

    #[test]
    fn token_for_other_enclave_rejected() {
        let p = Platform::new(&mut SecureRng::from_seed(2));
        let e1 = p.load_enclave::<App>("app-v1");
        let e2 = p.load_enclave::<App>("app-v1");
        let quote1 = e1.quote(vec![]);
        let token1 = p
            .attestation()
            .verify(&quote1, Measurement::of_code("app-v1"))
            .unwrap();
        assert_eq!(
            e2.provision(token1, App { secret: vec![] }),
            Err(EnclaveError::TokenMismatch)
        );
    }

    #[test]
    fn break_yields_secrets() {
        let (p, e) = setup();
        provision(&p, &e, b"top-secret");
        let bag = p.break_enclave(e.id()).unwrap();
        assert_eq!(bag.get("secret"), Some(b"top-secret".as_slice()));
        assert!(e.is_compromised());
        assert_eq!(p.breach_count(), 1);
    }

    #[test]
    fn second_layer_break_blocked_until_recovery() {
        let p = Platform::new(&mut SecureRng::from_seed(3));
        let ua = p.load_enclave::<App>("ua");
        let ia = p.load_enclave::<App>("ia");
        for (e, code) in [(&ua, "ua"), (&ia, "ia")] {
            let quote = e.quote(vec![]);
            let token = p
                .attestation()
                .verify(&quote, Measurement::of_code(code))
                .unwrap();
            e.provision(
                token,
                App {
                    secret: b"s".to_vec(),
                },
            )
            .unwrap();
        }
        p.break_enclave(ua.id()).unwrap();
        // Breaking the *other layer* while UA is compromised is forbidden.
        assert!(matches!(
            p.break_enclave(ia.id()),
            Err(CompromiseError::AnotherLayerCompromised { .. })
        ));
        // Same layer (same measurement) is fine: one layer at a time.
        let ua2 = p.load_enclave::<App>("ua");
        let quote = ua2.quote(vec![]);
        let token = p
            .attestation()
            .verify(&quote, Measurement::of_code("ua"))
            .unwrap();
        ua2.provision(
            token,
            App {
                secret: b"s2".to_vec(),
            },
        )
        .unwrap();
        assert!(p.break_enclave(ua2.id()).is_ok());
        // After detection/recovery the IA layer becomes breakable.
        assert_eq!(p.detect_and_recover(), 2);
        assert!(p.break_enclave(ia.id()).is_ok());
    }

    #[test]
    fn break_unprovisioned_fails() {
        let (p, e) = setup();
        assert_eq!(
            p.break_enclave(e.id()),
            Err(CompromiseError::NotProvisioned)
        );
    }

    #[test]
    fn break_unknown_fails() {
        let (p, _e) = setup();
        assert_eq!(
            p.break_enclave(EnclaveId(999)),
            Err(CompromiseError::UnknownEnclave)
        );
    }

    #[test]
    fn secret_bag_api() {
        let mut bag = SecretBag::new();
        assert!(bag.is_empty());
        bag.insert("a", vec![1]);
        bag.insert("b", vec![2]);
        assert_eq!(bag.len(), 2);
        assert_eq!(bag.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(bag.get("a"), Some([1u8].as_slice()));
        assert_eq!(bag.get("z"), None);
    }

    #[test]
    fn crash_kills_enclave_and_drops_state() {
        let (p, e) = setup();
        provision(&p, &e, b"k");
        assert_eq!(e.call(|a| a.secret.len()).unwrap(), 1);
        p.crash_enclave(e.id()).unwrap();
        assert!(e.is_crashed());
        assert_eq!(e.call(|_| ()), Err(EnclaveError::Crashed));
        // Secrets are gone with the process: nothing to leak.
        assert_eq!(
            p.break_enclave(e.id()),
            Err(CompromiseError::NotProvisioned)
        );
        assert_eq!(p.crash_count(), 1);
        // Crashing again is idempotent.
        p.crash_enclave(e.id()).unwrap();
        assert_eq!(p.crash_count(), 1);
    }

    #[test]
    fn crash_layer_kills_measurement_group_only() {
        let p = Platform::new(&mut SecureRng::from_seed(9));
        let ua1 = p.load_enclave::<App>("ua");
        let ua2 = p.load_enclave::<App>("ua");
        let ia = p.load_enclave::<App>("ia");
        for (e, code) in [(&ua1, "ua"), (&ua2, "ua"), (&ia, "ia")] {
            let quote = e.quote(vec![]);
            let token = p
                .attestation()
                .verify(&quote, Measurement::of_code(code))
                .unwrap();
            e.provision(
                token,
                App {
                    secret: b"s".to_vec(),
                },
            )
            .unwrap();
        }
        assert_eq!(p.crash_layer(Measurement::of_code("ua")), 2);
        assert!(ua1.is_crashed() && ua2.is_crashed());
        assert!(!ia.is_crashed());
        assert!(ia.call(|_| ()).is_ok());
        // A second sweep finds nothing left to kill.
        assert_eq!(p.crash_layer(Measurement::of_code("ua")), 0);
    }

    #[test]
    fn crash_unknown_enclave_fails() {
        let (p, _e) = setup();
        assert_eq!(
            p.crash_enclave(EnclaveId(424242)),
            Err(CompromiseError::UnknownEnclave)
        );
    }

    #[test]
    fn replacement_after_crash_works() {
        let (p, e) = setup();
        provision(&p, &e, b"k1");
        p.crash_enclave(e.id()).unwrap();
        // Supervisor path: load a fresh enclave of the same code identity
        // and provision it; service resumes.
        let fresh = p.load_enclave::<App>("app-v1");
        provision(&p, &fresh, b"k2");
        assert_eq!(fresh.call(|a| a.secret.to_vec()).unwrap(), b"k2");
    }

    #[test]
    fn platform_sealing_key_is_seed_deterministic() {
        let a = Platform::new(&mut SecureRng::from_seed(42));
        let b = Platform::new(&mut SecureRng::from_seed(42));
        let m = Measurement::of_code("app-v1");
        let blob = a
            .sealing()
            .seal_labeled(m, b"t", b"state", &mut SecureRng::from_seed(1));
        assert_eq!(
            b.sealing().unseal_labeled(m, b"t", &blob).unwrap(),
            b"state"
        );
        let c = Platform::new(&mut SecureRng::from_seed(43));
        assert!(c.sealing().unseal_labeled(m, b"t", &blob).is_err());
    }

    #[test]
    fn compromised_layer_reported() {
        let (p, e) = setup();
        provision(&p, &e, b"k");
        assert!(p.compromised_layer().is_none());
        p.break_enclave(e.id()).unwrap();
        assert_eq!(p.compromised_layer(), Some(Measurement::of_code("app-v1")));
    }
}
