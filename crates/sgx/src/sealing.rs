//! Data sealing: encrypting enclave state to the platform + measurement.
//!
//! SGX sealing lets an enclave persist secrets outside the EPC such that
//! only an enclave with the same measurement on the same platform can
//! recover them. PProx's footnote on breach response mentions re-starting
//! the system with new secrets or re-encrypting state — sealing is the
//! primitive such machinery relies on, so the simulated platform provides
//! it too.

use crate::measurement::Measurement;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::hmac::{hmac_sha256, verify_tag};
use pprox_crypto::rng::SecureRng;
use pprox_crypto::sha256::Sha256;

/// Errors from unsealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// Blob too short or structurally invalid.
    Malformed,
    /// Authentication failed: wrong platform, wrong measurement, or
    /// tampered blob.
    AuthenticationFailed,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Malformed => write!(f, "malformed sealed blob"),
            SealError::AuthenticationFailed => write!(f, "sealed blob failed authentication"),
        }
    }
}

impl std::error::Error for SealError {}

/// Per-platform root sealing key (fused into the CPU on real hardware).
#[derive(Clone)]
pub struct SealingKey {
    root: [u8; 32],
}

impl std::fmt::Debug for SealingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SealingKey(redacted)")
    }
}

const MAC_LEN: usize = 32;

impl SealingKey {
    /// Generates a fresh platform root key.
    pub fn generate(rng: &mut SecureRng) -> Self {
        let mut root = [0u8; 32];
        rng.fill(&mut root);
        SealingKey { root }
    }

    /// Derives the per-measurement sealing key (MRENCLAVE policy). The
    /// label domain-separates independent sealed artifacts of the same
    /// enclave (e.g. layer secrets vs. a store data-encryption key); the
    /// empty label reproduces the original derivation exactly, keeping
    /// old blobs readable.
    fn derive(&self, measurement: Measurement, label: &[u8]) -> ([u8; 32], [u8; 32]) {
        let mut enc = Sha256::new();
        enc.update(b"seal-enc");
        enc.update(&self.root);
        enc.update(measurement.as_bytes());
        enc.update(label);
        let mut mac = Sha256::new();
        mac.update(b"seal-mac");
        mac.update(&self.root);
        mac.update(measurement.as_bytes());
        mac.update(label);
        (enc.finalize(), mac.finalize())
    }

    /// Seals `data` to `measurement` on this platform.
    ///
    /// Layout: `ciphertext(IV || body) || mac`.
    pub fn seal(&self, measurement: Measurement, data: &[u8], rng: &mut SecureRng) -> Vec<u8> {
        self.seal_labeled(measurement, b"", data, rng)
    }

    /// Seals `data` to `measurement` under an application-chosen `label`,
    /// so different artifacts of the same enclave cannot be swapped for
    /// each other on disk. `seal(m, d)` is `seal_labeled(m, b"", d)`.
    pub fn seal_labeled(
        &self,
        measurement: Measurement,
        label: &[u8],
        data: &[u8],
        rng: &mut SecureRng,
    ) -> Vec<u8> {
        let (enc_key, mac_key) = self.derive(measurement, label);
        let ct = SymmetricKey::from_bytes(enc_key).encrypt(data, rng);
        let tag = hmac_sha256(&mac_key, &ct);
        let mut out = ct;
        out.extend_from_slice(&tag);
        out
    }

    /// Recovers data sealed by [`seal`](Self::seal) with the same
    /// measurement on the same platform.
    ///
    /// # Errors
    ///
    /// [`SealError::AuthenticationFailed`] if platform or measurement
    /// differ or the blob was modified; [`SealError::Malformed`] if the
    /// blob is too short.
    pub fn unseal(&self, measurement: Measurement, blob: &[u8]) -> Result<Vec<u8>, SealError> {
        self.unseal_labeled(measurement, b"", blob)
    }

    /// Recovers data sealed by [`seal_labeled`](Self::seal_labeled) with
    /// the same measurement, label, and platform.
    ///
    /// # Errors
    ///
    /// [`SealError::AuthenticationFailed`] if platform, measurement, or
    /// label differ or the blob was modified; [`SealError::Malformed`] if
    /// the blob is too short.
    pub fn unseal_labeled(
        &self,
        measurement: Measurement,
        label: &[u8],
        blob: &[u8],
    ) -> Result<Vec<u8>, SealError> {
        if blob.len() < MAC_LEN + 16 {
            return Err(SealError::Malformed);
        }
        let (ct, tag) = blob.split_at(blob.len() - MAC_LEN);
        let (enc_key, mac_key) = self.derive(measurement, label);
        let expected = hmac_sha256(&mac_key, ct);
        if !verify_tag(&expected, tag) {
            return Err(SealError::AuthenticationFailed);
        }
        SymmetricKey::from_bytes(enc_key)
            .decrypt(ct)
            .ok_or(SealError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SealingKey, Measurement, SecureRng) {
        (
            SealingKey::generate(&mut SecureRng::from_seed(1)),
            Measurement::of_code("ua"),
            SecureRng::from_seed(2),
        )
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let (key, m, mut rng) = setup();
        let blob = key.seal(m, b"layer secrets", &mut rng);
        assert_eq!(key.unseal(m, &blob).unwrap(), b"layer secrets");
    }

    #[test]
    fn wrong_measurement_fails() {
        let (key, m, mut rng) = setup();
        let blob = key.seal(m, b"s", &mut rng);
        assert_eq!(
            key.unseal(Measurement::of_code("ia"), &blob),
            Err(SealError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_platform_fails() {
        let (key, m, mut rng) = setup();
        let other = SealingKey::generate(&mut SecureRng::from_seed(9));
        let blob = key.seal(m, b"s", &mut rng);
        assert_eq!(other.unseal(m, &blob), Err(SealError::AuthenticationFailed));
    }

    #[test]
    fn tampering_detected() {
        let (key, m, mut rng) = setup();
        let mut blob = key.seal(m, b"s", &mut rng);
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        assert_eq!(key.unseal(m, &blob), Err(SealError::AuthenticationFailed));
    }

    #[test]
    fn short_blob_malformed() {
        let (key, m, _) = setup();
        assert_eq!(key.unseal(m, &[0u8; 10]), Err(SealError::Malformed));
    }

    #[test]
    fn sealed_blobs_randomized() {
        let (key, m, mut rng) = setup();
        let a = key.seal(m, b"same", &mut rng);
        let b = key.seal(m, b"same", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts() {
        let (key, _, _) = setup();
        assert_eq!(format!("{key:?}"), "SealingKey(redacted)");
    }

    #[test]
    fn labeled_roundtrip_and_domain_separation() {
        let (key, m, mut rng) = setup();
        let blob = key.seal_labeled(m, b"store-dek", b"dek bytes", &mut rng);
        assert_eq!(
            key.unseal_labeled(m, b"store-dek", &blob).unwrap(),
            b"dek bytes"
        );
        // A blob sealed under one label cannot be presented as another
        // artifact of the same enclave.
        assert_eq!(
            key.unseal_labeled(m, b"layer-secrets", &blob),
            Err(SealError::AuthenticationFailed)
        );
        assert_eq!(key.unseal(m, &blob), Err(SealError::AuthenticationFailed));
    }

    #[test]
    fn empty_label_is_the_unlabeled_format() {
        let (key, m, mut rng) = setup();
        let blob = key.seal(m, b"compat", &mut rng);
        assert_eq!(key.unseal_labeled(m, b"", &blob).unwrap(), b"compat");
        let blob2 = key.seal_labeled(m, b"", b"compat", &mut rng);
        assert_eq!(key.unseal(m, &blob2).unwrap(), b"compat");
    }

    #[test]
    fn same_seed_platforms_share_sealing_keys() {
        // Warm restart with the same platform seed must be able to unseal
        // blobs written before the crash — the simulated analog of the
        // CPU-fused key surviving a reboot.
        let before = SealingKey::generate(&mut SecureRng::from_seed(77));
        let after = SealingKey::generate(&mut SecureRng::from_seed(77));
        let m = Measurement::of_code("lrs-store");
        let blob = before.seal_labeled(m, b"dek", b"k", &mut SecureRng::from_seed(5));
        assert_eq!(after.unseal_labeled(m, b"dek", &blob).unwrap(), b"k");
    }
}
