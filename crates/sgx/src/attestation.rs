//! Simulated remote attestation.
//!
//! Models the part of the SGX ecosystem PProx relies on: before a RaaS
//! client application provisions layer secrets (`skUA`/`kUA` or
//! `skIA`/`kIA`) to an enclave, it verifies a *quote* proving that (a) the
//! enclave runs on a genuine platform and (b) its code measurement matches
//! the expected proxy-layer code (§2.2, §4.1).
//!
//! The simulation replaces Intel's EPID/DCAP machinery with an HMAC keyed
//! by a per-platform key that only the [`AttestationService`] (standing in
//! for Intel's attestation service) can verify.

use crate::measurement::Measurement;
use crate::EnclaveId;
use pprox_crypto::hmac::{hmac_sha256, verify_tag};
use pprox_crypto::rng::SecureRng;

/// A signed statement that enclave `enclave_id` with code `measurement`
/// runs on a genuine platform, binding caller-chosen `report_data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Identity of the quoted enclave instance.
    pub enclave_id: EnclaveId,
    /// Code measurement of the quoted enclave.
    pub measurement: Measurement,
    /// 64 bytes of caller-chosen data (e.g. a key-exchange public value).
    pub report_data: Vec<u8>,
    mac: [u8; 32],
}

/// Errors from quote verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// The quote's MAC does not verify (forged or corrupted quote).
    InvalidQuote,
    /// The quote is genuine but the measurement is not the expected one.
    WrongMeasurement {
        /// Measurement the verifier expected.
        expected: Measurement,
        /// Measurement found in the quote.
        found: Measurement,
    },
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::InvalidQuote => write!(f, "quote MAC verification failed"),
            AttestationError::WrongMeasurement { expected, found } => {
                write!(f, "expected measurement {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

/// Token proving a successful attestation of a specific enclave; consumed
/// by [`crate::enclave::Enclave::provision`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningToken {
    pub(crate) enclave_id: EnclaveId,
    pub(crate) measurement: Measurement,
}

/// The platform's quoting/verification authority (Intel IAS/DCAP analog).
///
/// One instance per simulated platform; it holds the secret quoting key.
#[derive(Debug)]
pub struct AttestationService {
    quoting_key: [u8; 32],
}

impl AttestationService {
    /// Creates a service with a random quoting key.
    pub fn new(rng: &mut SecureRng) -> Self {
        let mut quoting_key = [0u8; 32];
        rng.fill(&mut quoting_key);
        AttestationService { quoting_key }
    }

    fn mac_input(enclave_id: EnclaveId, measurement: &Measurement, report_data: &[u8]) -> Vec<u8> {
        let mut input = Vec::with_capacity(8 + 32 + report_data.len());
        input.extend_from_slice(&enclave_id.0.to_be_bytes());
        input.extend_from_slice(measurement.as_bytes());
        input.extend_from_slice(report_data);
        input
    }

    /// Produces a quote for an enclave (invoked by the enclave runtime).
    pub fn quote(
        &self,
        enclave_id: EnclaveId,
        measurement: Measurement,
        report_data: Vec<u8>,
    ) -> Quote {
        let mac = hmac_sha256(
            &self.quoting_key,
            &Self::mac_input(enclave_id, &measurement, &report_data),
        );
        Quote {
            enclave_id,
            measurement,
            report_data,
            mac,
        }
    }

    /// Verifies a quote against the measurement the verifier expects.
    ///
    /// # Errors
    ///
    /// [`AttestationError::InvalidQuote`] when the MAC fails;
    /// [`AttestationError::WrongMeasurement`] when the quote is genuine but
    /// for different code.
    pub fn verify(
        &self,
        quote: &Quote,
        expected: Measurement,
    ) -> Result<ProvisioningToken, AttestationError> {
        let mac = hmac_sha256(
            &self.quoting_key,
            &Self::mac_input(quote.enclave_id, &quote.measurement, &quote.report_data),
        );
        if !verify_tag(&mac, &quote.mac) {
            return Err(AttestationError::InvalidQuote);
        }
        if quote.measurement != expected {
            return Err(AttestationError::WrongMeasurement {
                expected,
                found: quote.measurement,
            });
        }
        Ok(ProvisioningToken {
            enclave_id: quote.enclave_id,
            measurement: quote.measurement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> AttestationService {
        AttestationService::new(&mut SecureRng::from_seed(1))
    }

    #[test]
    fn genuine_quote_verifies() {
        let svc = service();
        let m = Measurement::of_code("ua");
        let q = svc.quote(EnclaveId(7), m, b"rd".to_vec());
        let token = svc.verify(&q, m).unwrap();
        assert_eq!(token.enclave_id, EnclaveId(7));
    }

    #[test]
    fn tampered_quote_rejected() {
        let svc = service();
        let m = Measurement::of_code("ua");
        let mut q = svc.quote(EnclaveId(7), m, b"rd".to_vec());
        q.report_data = b"other".to_vec();
        assert_eq!(svc.verify(&q, m), Err(AttestationError::InvalidQuote));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let svc = service();
        let ua = Measurement::of_code("ua");
        let ia = Measurement::of_code("ia");
        let q = svc.quote(EnclaveId(1), ua, vec![]);
        assert!(matches!(
            svc.verify(&q, ia),
            Err(AttestationError::WrongMeasurement { .. })
        ));
    }

    #[test]
    fn quote_from_other_platform_rejected() {
        let svc_a = service();
        let svc_b = AttestationService::new(&mut SecureRng::from_seed(2));
        let m = Measurement::of_code("ua");
        let q = svc_b.quote(EnclaveId(1), m, vec![]);
        assert_eq!(svc_a.verify(&q, m), Err(AttestationError::InvalidQuote));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AttestationError::InvalidQuote.to_string(),
            "quote MAC verification failed"
        );
    }
}
