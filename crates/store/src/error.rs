//! Typed storage errors.
//!
//! Recovery code branches on these: a torn tail is routine (truncate and
//! continue), a corrupt record with valid data behind it is not (the log
//! was tampered with or the disk reordered writes), and a stale snapshot
//! means committing would silently lose events.

use pprox_sgx::sealing::SealError;
use std::path::PathBuf;

/// Errors from the durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure, with the path it concerned.
    Io {
        /// Path of the file or directory involved.
        path: PathBuf,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
    /// A WAL record failed its checksum or decryption with valid data
    /// after it — not a torn tail, so not silently recoverable.
    CorruptRecord {
        /// Byte offset of the bad record in the log.
        offset: u64,
    },
    /// A block's content no longer hashes to its address, or failed to
    /// decrypt under the store key.
    CorruptBlock {
        /// Content address (hex) of the bad block.
        address: String,
    },
    /// The manifest references a block that is not on disk.
    MissingBlock {
        /// Content address (hex) of the absent block.
        address: String,
    },
    /// The manifest on disk is older than the WAL it claims to cover:
    /// the first fresh record jumps past `applied_seq + 1`, so replaying
    /// would silently skip events.
    StaleSnapshot {
        /// Sequence number the manifest claims is applied.
        applied_seq: u64,
        /// First sequence number found in the WAL beyond the snapshot.
        next_seq: u64,
    },
    /// The sealed keyring failed to unseal (wrong platform, wrong
    /// measurement, or a tampered blob).
    Seal(SealError),
    /// A structurally invalid persisted artifact.
    Malformed(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, kind } => write!(f, "io error ({kind:?}) at {}", path.display()),
            StoreError::CorruptRecord { offset } => {
                write!(
                    f,
                    "corrupt WAL record at offset {offset} with valid data after it"
                )
            }
            StoreError::CorruptBlock { address } => write!(f, "block {address} is corrupt"),
            StoreError::MissingBlock { address } => write!(f, "block {address} is missing"),
            StoreError::StaleSnapshot {
                applied_seq,
                next_seq,
            } => write!(
                f,
                "stale snapshot: manifest applied_seq={applied_seq} but WAL resumes at {next_seq}"
            ),
            StoreError::Seal(e) => write!(f, "keyring unseal failed: {e}"),
            StoreError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SealError> for StoreError {
    fn from(e: SealError) -> Self {
        StoreError::Seal(e)
    }
}

impl StoreError {
    /// Wraps an `std::io::Error` with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, e: std::io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            kind: e.kind(),
        }
    }
}
