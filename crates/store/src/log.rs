//! The append-only sealed event log (write-ahead log).
//!
//! On-disk record layout:
//!
//! ```text
//! len: u32 BE   — ciphertext length
//! sum: 8 bytes  — SHA-256(ciphertext) prefix
//! ct:  len bytes — AES-256-CTR(IV || frame) under the store DEK
//! ```
//!
//! The encrypted frame is `len(u32 BE) || seq(u64 BE) || payload`,
//! zero-padded to the next multiple of the configured pad class, so the
//! ciphertext length discloses only a class count, never the payload
//! size — the same discipline as the wire codec's padding classes.
//!
//! Torn-write tolerance: a `kill -9` can leave a half-written final
//! record. Opening scans forward; a record that extends past EOF or
//! fails its checksum *with nothing valid after it* is treated as the
//! torn tail, reported, and truncated away. A bad record followed by a
//! valid one is not a crash artifact — the scan refuses with
//! [`StoreError::CorruptRecord`].

use crate::error::StoreError;
use crate::framing;
use crate::keyring::StoreKey;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::sha256;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Record header length: u32 ciphertext length + 8-byte checksum.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a single ciphertext, to reject absurd length headers
/// during the recovery scan.
const MAX_RECORD_LEN: usize = 1 << 20;

/// One recovered log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Monotonic sequence number stamped at append time.
    pub seq: u64,
    /// The application payload (for the LRS: one pseudonymous event).
    pub payload: Vec<u8>,
}

/// What opening a log found on disk.
#[derive(Debug, Clone, Default)]
pub struct LogRecovery {
    /// All intact records, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes of torn tail discarded (0 for a clean log).
    pub torn_bytes: u64,
}

/// The append-only encrypted event log.
pub struct EventLog {
    path: PathBuf,
    file: File,
    cipher: SymmetricKey,
    pad_class: usize,
    next_seq: u64,
    len: u64,
    rng: SecureRng,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("len", &self.len)
            .finish()
    }
}

/// Is there a structurally valid record at `offset`? (Header plausible,
/// full ciphertext present, checksum matches — no key required.)
fn valid_record_at(bytes: &[u8], offset: usize) -> bool {
    let Some(header) = bytes.get(offset..offset + HEADER_LEN) else {
        return false;
    };
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len == 0 || len > MAX_RECORD_LEN {
        return false;
    }
    let Some(ct) = bytes.get(offset + HEADER_LEN..offset + HEADER_LEN + len) else {
        return false;
    };
    sha256::digest(ct)[..8] == header[4..12]
}

impl EventLog {
    /// Opens (or creates) the log at `path`, scanning and decrypting all
    /// intact records and truncating a torn tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptRecord`] when a bad record is followed by a
    /// valid one (mid-log corruption, not a crash artifact);
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(
        path: &Path,
        key: &StoreKey,
        pad_class: usize,
        rng_seed: u64,
    ) -> Result<(EventLog, LogRecovery), StoreError> {
        let cipher = key.cipher();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::io(path, e)),
        };

        let mut recovery = LogRecovery::default();
        let mut offset = 0usize;
        let mut expected_seq: Option<u64> = None;
        let good_end = loop {
            if offset == bytes.len() {
                break offset;
            }
            // Decide whether the bytes at `offset` are a torn tail
            // (tolerated) or mid-log corruption (refused): corruption is
            // only tolerable when nothing valid follows it.
            let record = parse_record(&bytes, offset, &cipher);
            match record {
                Ok((seq, payload, next_offset)) => {
                    if let Some(want) = expected_seq {
                        if seq != want {
                            return Err(StoreError::CorruptRecord {
                                offset: offset as u64,
                            });
                        }
                    }
                    expected_seq = Some(seq + 1);
                    recovery.records.push(LogRecord { seq, payload });
                    offset = next_offset;
                }
                Err(claimed_next) => {
                    // Resync probe: a valid record at the claimed next
                    // offset (or anywhere the corrupt header could not
                    // reach) proves this is not the tail.
                    if let Some(next) = claimed_next {
                        if valid_record_at(&bytes, next) {
                            return Err(StoreError::CorruptRecord {
                                offset: offset as u64,
                            });
                        }
                    }
                    recovery.torn_bytes = (bytes.len() - offset) as u64;
                    break offset;
                }
            }
        };

        if recovery.torn_bytes > 0 {
            // Truncate the torn tail so the next append starts clean.
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io(path, e))?;
            file.set_len(good_end as u64)
                .map_err(|e| StoreError::io(path, e))?;
        }

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(path, e))?;
        let next_seq = recovery.records.last().map_or(1, |r| r.seq + 1);
        Ok((
            EventLog {
                path: path.to_path_buf(),
                file,
                cipher,
                pad_class: pad_class.max(1),
                next_seq,
                len: good_end as u64,
                rng: SecureRng::from_seed(rng_seed),
            },
            recovery,
        ))
    }

    /// Appends one payload, returning its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let mut plain = Vec::with_capacity(8 + payload.len());
        plain.extend_from_slice(&seq.to_be_bytes());
        plain.extend_from_slice(payload);
        let frame = framing::frame(&plain, self.pad_class);
        let ct = self.cipher.encrypt(&frame, &mut self.rng);
        let sum = sha256::digest(&ct);
        let mut record = Vec::with_capacity(HEADER_LEN + ct.len());
        record.extend_from_slice(&(ct.len() as u32).to_be_bytes());
        record.extend_from_slice(&sum[..8]);
        record.extend_from_slice(&ct);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.file
            .flush()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.len += record.len() as u64;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(&self.path, e))
    }

    /// Truncates the log after a snapshot covering everything up to and
    /// including `applied_seq`; subsequent appends continue the sequence
    /// from there.
    pub fn reset(&mut self, applied_seq: u64) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.len = 0;
        self.next_seq = applied_seq + 1;
        Ok(())
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Overrides the next sequence number (used after recovery to resume
    /// past a snapshot's `applied_seq` when the log is empty).
    pub fn set_next_seq(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
    }

    /// Current on-disk length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

/// Parses the record at `offset`. `Ok((seq, payload, next_offset))` for
/// an intact record; `Err(claimed_next_offset)` when the record is bad —
/// the claimed offset (where the length header said the next record
/// starts, when plausible and in-bounds) lets the caller probe for valid
/// data beyond the corruption.
fn parse_record(
    bytes: &[u8],
    offset: usize,
    cipher: &SymmetricKey,
) -> Result<(u64, Vec<u8>, usize), Option<usize>> {
    let header = bytes.get(offset..offset + HEADER_LEN).ok_or(None)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len == 0 || len > MAX_RECORD_LEN {
        return Err(None);
    }
    let next_offset = offset + HEADER_LEN + len;
    let claimed = if next_offset <= bytes.len() {
        Some(next_offset)
    } else {
        None
    };
    let ct = bytes.get(offset + HEADER_LEN..next_offset).ok_or(claimed)?;
    if sha256::digest(ct)[..8] != header[4..12] {
        return Err(claimed);
    }
    let frame = cipher.decrypt(ct).ok_or(claimed)?;
    let inner = framing::unframe(&frame).ok_or(claimed)?;
    if inner.len() < 8 {
        return Err(claimed);
    }
    let seq = u64::from_be_bytes(inner[..8].try_into().expect("8 bytes"));
    Ok((seq, inner[8..].to_vec(), next_offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn key() -> StoreKey {
        StoreKey::generate(&mut SecureRng::from_seed(7))
    }

    fn open(dir: &TempDir) -> (EventLog, LogRecovery) {
        EventLog::open(&dir.path().join("wal.log"), &key(), 256, 0x10).unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = TempDir::new("wal");
        let (mut log, rec) = open(&dir);
        assert!(rec.records.is_empty());
        assert_eq!(log.append(b"alpha").unwrap(), 1);
        assert_eq!(log.append(b"beta").unwrap(), 2);
        drop(log);
        let (log, rec) = open(&dir);
        assert_eq!(log.next_seq(), 3);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(
            rec.records,
            vec![
                LogRecord {
                    seq: 1,
                    payload: b"alpha".to_vec()
                },
                LogRecord {
                    seq: 2,
                    payload: b"beta".to_vec()
                },
            ]
        );
    }

    #[test]
    fn record_lengths_are_padded_to_class() {
        let dir = TempDir::new("wal");
        let (mut log, _) = open(&dir);
        log.append(b"x").unwrap();
        log.append(&[9u8; 200]).unwrap();
        drop(log);
        // Both payloads fit one 256-byte class: identical record sizes.
        let bytes = std::fs::read(dir.path().join("wal.log")).unwrap();
        let len0 = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len0, 16 + 256, "IV plus one pad class");
        assert_eq!(bytes.len(), 2 * (HEADER_LEN + len0));
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = TempDir::new("wal");
        let path = dir.path().join("wal.log");
        let (mut log, _) = open(&dir);
        log.append(b"keep me").unwrap();
        log.append(b"torn").unwrap();
        drop(log);
        // Cut into the middle of the final record, as a crash mid-write
        // would.
        let full = std::fs::read(&path).unwrap();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full.len() as u64 - 20).unwrap();
        drop(file);

        let (mut log, rec) = open(&dir);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"keep me");
        assert!(rec.torn_bytes > 0);
        // The tail is gone from disk and appending resumes at seq 2.
        assert_eq!(log.append(b"after").unwrap(), 2);
        drop(log);
        let (_, rec) = open(&dir);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn mid_log_corruption_with_valid_tail_is_refused() {
        let dir = TempDir::new("wal");
        let path = dir.path().join("wal.log");
        let (mut log, _) = open(&dir);
        log.append(b"first").unwrap();
        log.append(b"second").unwrap();
        drop(log);
        // Flip a ciphertext byte inside the FIRST record: the second is
        // still valid, so this cannot be a torn tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 5] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match EventLog::open(&path, &key(), 256, 0x10) {
            Err(StoreError::CorruptRecord { offset }) => assert_eq!(offset, 0),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_a_torn_tail() {
        let dir = TempDir::new("wal");
        let path = dir.path().join("wal.log");
        let (mut log, _) = open(&dir);
        log.append(b"ok").unwrap();
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x00, 0x00]); // 2 stray header bytes
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = open(&dir);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.torn_bytes, 2);
    }

    #[test]
    fn reset_truncates_and_continues_sequence() {
        let dir = TempDir::new("wal");
        let (mut log, _) = open(&dir);
        for i in 0..5 {
            log.append(format!("e{i}").as_bytes()).unwrap();
        }
        log.reset(5).unwrap();
        assert_eq!(log.len_bytes(), 0);
        assert_eq!(log.append(b"post-snapshot").unwrap(), 6);
        drop(log);
        let (_, rec) = open(&dir);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].seq, 6);
    }

    #[test]
    fn wrong_key_refuses_log_with_single_record() {
        let dir = TempDir::new("wal");
        let path = dir.path().join("wal.log");
        let (mut log, _) = open(&dir);
        log.append(b"sealed").unwrap();
        drop(log);
        // With one record, a failed decrypt looks like a torn tail — the
        // log opens empty rather than leaking anything. (Checksums pass;
        // decrypt structure fails only probabilistically, so assert the
        // recovered payloads never match.)
        let other = StoreKey::generate(&mut SecureRng::from_seed(8));
        let (_, rec) = EventLog::open(&path, &other, 256, 0x10).unwrap();
        assert!(rec.records.iter().all(|r| r.payload != b"sealed"));
    }

    #[test]
    fn empty_payloads_and_class_boundaries() {
        let dir = TempDir::new("wal");
        let (mut log, _) = open(&dir);
        log.append(b"").unwrap();
        log.append(&vec![1u8; 244]).unwrap(); // exactly fills one class
        log.append(&vec![2u8; 245]).unwrap(); // spills into a second
        drop(log);
        let (_, rec) = open(&dir);
        assert_eq!(rec.records[0].payload, b"");
        assert_eq!(rec.records[1].payload.len(), 244);
        assert_eq!(rec.records[2].payload.len(), 245);
    }
}
