//! The sealed keyring: the store's data-encryption key (DEK) at rest.
//!
//! The DEK encrypting the WAL and blocks is random — not derived from
//! any provisioned layer secret — and persists only inside a blob sealed
//! to (platform root key, enclave measurement, label). Recovery after
//! `kill -9` is therefore self-contained: a respawned instance on the
//! same platform re-derives the sealing key from its measurement and
//! unseals the DEK with no provisioner or third party in the loop,
//! exactly the SGX sealed-storage model.

use crate::error::StoreError;
use crate::KEYRING_FILE;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::rng::SecureRng;
use pprox_sgx::measurement::Measurement;
use pprox_sgx::sealing::SealingKey;
use std::path::Path;

/// Domain-separation label under which the DEK is sealed.
pub const DEK_LABEL: &[u8] = b"pprox-store-dek-v1";

/// The store's data-encryption key. Never persisted in the clear and
/// never printed: `Debug` redacts.
#[derive(Clone)]
pub struct StoreKey {
    dek: [u8; 32],
}

impl std::fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StoreKey(redacted)")
    }
}

impl StoreKey {
    /// Generates a fresh random DEK.
    pub fn generate(rng: &mut SecureRng) -> Self {
        let mut dek = [0u8; 32];
        rng.fill(&mut dek);
        StoreKey { dek }
    }

    /// The symmetric cipher instance for this key.
    pub fn cipher(&self) -> SymmetricKey {
        SymmetricKey::from_bytes(self.dek)
    }
}

/// Manages the sealed DEK file inside a store directory.
pub struct StoreKeyring {
    dek: StoreKey,
}

impl std::fmt::Debug for StoreKeyring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StoreKeyring(redacted)")
    }
}

impl StoreKeyring {
    /// Generates a fresh DEK and seals it to `dir/keyring.sealed`.
    pub fn create(
        dir: &Path,
        sealing: &SealingKey,
        measurement: Measurement,
        rng: &mut SecureRng,
    ) -> Result<Self, StoreError> {
        let dek = StoreKey::generate(rng);
        let blob = sealing.seal_labeled(measurement, DEK_LABEL, &dek.dek, rng);
        let path = dir.join(KEYRING_FILE);
        std::fs::write(&path, &blob).map_err(|e| StoreError::io(&path, e))?;
        Ok(StoreKeyring { dek })
    }

    /// Unseals the DEK from an existing `dir/keyring.sealed`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file is absent or unreadable;
    /// [`StoreError::Seal`] when the platform or measurement differ from
    /// the sealer's (the blob is bound to both).
    pub fn open(
        dir: &Path,
        sealing: &SealingKey,
        measurement: Measurement,
    ) -> Result<Self, StoreError> {
        let path = dir.join(KEYRING_FILE);
        let blob = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        let raw = sealing.unseal_labeled(measurement, DEK_LABEL, &blob)?;
        let dek: [u8; 32] = raw
            .as_slice()
            .try_into()
            .map_err(|_| StoreError::Malformed("keyring payload"))?;
        Ok(StoreKeyring {
            dek: StoreKey { dek },
        })
    }

    /// Opens the keyring if present, creating and sealing a fresh DEK
    /// otherwise — the normal path for both cold start and warm restart.
    pub fn open_or_create(
        dir: &Path,
        sealing: &SealingKey,
        measurement: Measurement,
        rng: &mut SecureRng,
    ) -> Result<Self, StoreError> {
        if dir.join(KEYRING_FILE).exists() {
            Self::open(dir, sealing, measurement)
        } else {
            Self::create(dir, sealing, measurement, rng)
        }
    }

    /// The unsealed DEK.
    pub fn key(&self) -> &StoreKey {
        &self.dek
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn setup() -> (TempDir, SealingKey, Measurement, SecureRng) {
        (
            TempDir::new("keyring"),
            SealingKey::generate(&mut SecureRng::from_seed(1)),
            Measurement::of_code("pprox-lrs-store-v1"),
            SecureRng::from_seed(2),
        )
    }

    #[test]
    fn create_then_open_recovers_same_dek() {
        let (dir, sealing, m, mut rng) = setup();
        let created = StoreKeyring::create(dir.path(), &sealing, m, &mut rng).unwrap();
        let opened = StoreKeyring::open(dir.path(), &sealing, m).unwrap();
        assert_eq!(created.key().dek, opened.key().dek);
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let (dir, sealing, m, mut rng) = setup();
        let a = StoreKeyring::open_or_create(dir.path(), &sealing, m, &mut rng).unwrap();
        let b = StoreKeyring::open_or_create(dir.path(), &sealing, m, &mut rng).unwrap();
        assert_eq!(a.key().dek, b.key().dek);
    }

    #[test]
    fn wrong_measurement_cannot_unseal() {
        let (dir, sealing, m, mut rng) = setup();
        StoreKeyring::create(dir.path(), &sealing, m, &mut rng).unwrap();
        let other = Measurement::of_code("some-other-enclave");
        assert!(matches!(
            StoreKeyring::open(dir.path(), &sealing, other),
            Err(StoreError::Seal(_))
        ));
    }

    #[test]
    fn wrong_platform_cannot_unseal() {
        let (dir, sealing, m, mut rng) = setup();
        StoreKeyring::create(dir.path(), &sealing, m, &mut rng).unwrap();
        let foreign = SealingKey::generate(&mut SecureRng::from_seed(99));
        assert!(matches!(
            StoreKeyring::open(dir.path(), &foreign, m),
            Err(StoreError::Seal(_))
        ));
    }

    #[test]
    fn missing_keyring_is_io_error() {
        let (dir, sealing, m, _) = setup();
        assert!(matches!(
            StoreKeyring::open(dir.path(), &sealing, m),
            Err(StoreError::Io { .. })
        ));
    }

    #[test]
    fn debug_redacts() {
        let (dir, sealing, m, mut rng) = setup();
        let keyring = StoreKeyring::create(dir.path(), &sealing, m, &mut rng).unwrap();
        assert_eq!(format!("{keyring:?}"), "StoreKeyring(redacted)");
        assert_eq!(format!("{:?}", keyring.key()), "StoreKey(redacted)");
    }
}
