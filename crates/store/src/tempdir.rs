//! A std-only scratch-directory helper for recovery drills and tests.
//!
//! The workspace builds offline, so there is no `tempfile` crate; this
//! is the minimal subset the store's tests and the kill-and-replay
//! drills need: a uniquely named directory under the OS temp root,
//! removed on drop unless explicitly kept.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, recursively deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Creates `{tmp}/pprox-{tag}-{pid}-{n}-{t}`; panics on failure (the
    /// callers are tests and report binaries, where a missing temp root
    /// is unrecoverable anyway).
    pub fn new(tag: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!("pprox-{tag}-{}-{n}-{t}", std::process::id()));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        TempDir { path, keep: false }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables deletion on drop (for post-mortem inspection).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_removed_on_drop() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        assert!(kept.is_dir());
        drop(a);
        assert!(!kept.exists());
    }
}
