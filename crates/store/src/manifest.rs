//! The snapshot manifest: the store's atomic commit point.
//!
//! A manifest is one encrypted, checksummed record (same layout as a WAL
//! record) naming the snapshot's block set and the WAL sequence number
//! it covers. Installation is two renames: the live `manifest.bin` moves
//! to `manifest.old`, then the freshly written temp file moves to
//! `manifest.bin`. Renames are atomic on POSIX, so recovery always finds
//! either the old or the new manifest intact — never a torn one — and
//! `manifest.old` doubles as the artifact the stale-snapshot fault
//! injector restores.

use crate::error::StoreError;
use crate::framing;
use crate::keyring::StoreKey;
use crate::{MANIFEST_FILE, MANIFEST_OLD_FILE};
use pprox_crypto::rng::SecureRng;
use pprox_crypto::sha256;
use pprox_json::Value;
use std::path::Path;

/// Schema version embedded in each manifest.
pub const MANIFEST_VERSION: u64 = 1;

/// Snapshot metadata: which blocks, covering which WAL prefix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Highest WAL sequence number whose effect is captured in the
    /// snapshot blocks; replay skips records at or below it.
    pub applied_seq: u64,
    /// Content addresses of the snapshot blocks, in load order.
    pub blocks: Vec<String>,
}

impl Manifest {
    fn to_value(&self) -> Value {
        Value::object([
            ("version", Value::from(MANIFEST_VERSION)),
            ("applied_seq", Value::from(self.applied_seq)),
            (
                "blocks",
                self.blocks
                    .iter()
                    .map(|b| Value::from(b.as_str()))
                    .collect(),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<Manifest> {
        if v.get("version").and_then(Value::as_u64)? != MANIFEST_VERSION {
            return None;
        }
        let blocks = v
            .get("blocks")?
            .as_array()?
            .iter()
            .map(|b| b.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        Some(Manifest {
            applied_seq: v.get("applied_seq").and_then(Value::as_u64)?,
            blocks,
        })
    }
}

/// Encrypts and atomically installs `manifest` as `dir/manifest.bin`,
/// preserving the previous one as `dir/manifest.old`.
pub fn save(
    dir: &Path,
    key: &StoreKey,
    manifest: &Manifest,
    rng: &mut SecureRng,
) -> Result<(), StoreError> {
    let plain = manifest.to_value().to_json();
    let frame = framing::frame(plain.as_bytes(), 256);
    let ct = key.cipher().encrypt(&frame, rng);
    let sum = sha256::digest(&ct);
    let mut record = Vec::with_capacity(12 + ct.len());
    record.extend_from_slice(&(ct.len() as u32).to_be_bytes());
    record.extend_from_slice(&sum[..8]);
    record.extend_from_slice(&ct);

    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let live = dir.join(MANIFEST_FILE);
    let old = dir.join(MANIFEST_OLD_FILE);
    std::fs::write(&tmp, &record).map_err(|e| StoreError::io(&tmp, e))?;
    if live.exists() {
        std::fs::rename(&live, &old).map_err(|e| StoreError::io(&old, e))?;
    }
    std::fs::rename(&tmp, &live).map_err(|e| StoreError::io(&live, e))?;
    Ok(())
}

/// Loads the committed manifest, or `None` when the store has never
/// snapshotted.
///
/// # Errors
///
/// [`StoreError::Malformed`] when the record fails its checksum,
/// decryption, or schema — a manifest is installed atomically, so a bad
/// one is tampering, not a crash artifact.
pub fn load(dir: &Path, key: &StoreKey) -> Result<Option<Manifest>, StoreError> {
    let live = dir.join(MANIFEST_FILE);
    let record = match std::fs::read(&live) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(&live, e)),
    };
    if record.len() < 12 {
        return Err(StoreError::Malformed("manifest record"));
    }
    let len = u32::from_be_bytes(record[..4].try_into().expect("4 bytes")) as usize;
    let ct = record
        .get(12..12 + len)
        .ok_or(StoreError::Malformed("manifest record"))?;
    if sha256::digest(ct)[..8] != record[4..12] {
        return Err(StoreError::Malformed("manifest checksum"));
    }
    let frame = key
        .cipher()
        .decrypt(ct)
        .ok_or(StoreError::Malformed("manifest ciphertext"))?;
    let plain = framing::unframe(&frame).ok_or(StoreError::Malformed("manifest frame"))?;
    let text = String::from_utf8(plain).map_err(|_| StoreError::Malformed("manifest encoding"))?;
    let value = Value::parse(&text).map_err(|_| StoreError::Malformed("manifest json"))?;
    Manifest::from_value(&value)
        .map(Some)
        .ok_or(StoreError::Malformed("manifest schema"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn setup() -> (TempDir, StoreKey, SecureRng) {
        (
            TempDir::new("manifest"),
            StoreKey::generate(&mut SecureRng::from_seed(5)),
            SecureRng::from_seed(6),
        )
    }

    #[test]
    fn save_load_roundtrip() {
        let (dir, key, mut rng) = setup();
        assert_eq!(load(dir.path(), &key).unwrap(), None);
        let m = Manifest {
            applied_seq: 42,
            blocks: vec!["a".repeat(64), "b".repeat(64)],
        };
        save(dir.path(), &key, &m, &mut rng).unwrap();
        assert_eq!(load(dir.path(), &key).unwrap(), Some(m));
    }

    #[test]
    fn save_preserves_previous_as_old() {
        let (dir, key, mut rng) = setup();
        let first = Manifest {
            applied_seq: 1,
            blocks: vec![],
        };
        let second = Manifest {
            applied_seq: 2,
            blocks: vec![],
        };
        save(dir.path(), &key, &first, &mut rng).unwrap();
        save(dir.path(), &key, &second, &mut rng).unwrap();
        assert!(dir.path().join(MANIFEST_OLD_FILE).exists());
        assert_eq!(load(dir.path(), &key).unwrap(), Some(second));
        // Restoring manifest.old (the stale-snapshot fault) yields the
        // first manifest again.
        std::fs::rename(
            dir.path().join(MANIFEST_OLD_FILE),
            dir.path().join(MANIFEST_FILE),
        )
        .unwrap();
        assert_eq!(load(dir.path(), &key).unwrap(), Some(first));
    }

    #[test]
    fn tampered_manifest_is_malformed() {
        let (dir, key, mut rng) = setup();
        save(
            dir.path(),
            &key,
            &Manifest {
                applied_seq: 9,
                blocks: vec![],
            },
            &mut rng,
        )
        .unwrap();
        let path = dir.path().join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(dir.path(), &key),
            Err(StoreError::Malformed(_))
        ));
    }
}
