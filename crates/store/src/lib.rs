//! Durable sealed state for the PProx reproduction.
//!
//! Everything the proxy chain keeps in memory — the LRS corpus, trained
//! indicators, and each enclave's working keys — dies with a `kill -9`.
//! PProx §6 bounds what the provider *sees*; a deployable system must
//! also bound what survives a crash *on disk*. This crate provides the
//! storage layer both properties hang off:
//!
//! * [`keyring::StoreKeyring`] — a random data-encryption key (DEK)
//!   sealed to the platform + measurement via
//!   [`pprox_sgx::sealing::SealingKey::seal_labeled`]. A re-provisioned
//!   enclave on the same platform unseals the DEK by itself; no trusted
//!   third party holds a copy.
//! * [`log::EventLog`] — an append-only write-ahead log of encrypted,
//!   length-prefixed, checksummed records, padded to a fixed size class
//!   so record boundaries reveal no payload lengths. Opening tolerates a
//!   torn final write (the `kill -9` artifact) by truncating it; valid
//!   data *after* a corrupt record is a hard [`error::StoreError`].
//! * [`block::BlockStore`] — content-addressed encrypted snapshot blocks
//!   (address = SHA-256 of the ciphertext), padded to a block class, so
//!   the at-rest image is uniform ciphertext with self-verifying names.
//! * [`manifest`] — the snapshot commit point: one encrypted record
//!   naming the block set and the WAL sequence number it covers,
//!   installed by atomic rename.
//! * [`store::SealedStore`] — the facade combining the four:
//!   `open` unseals and replays, `append_event` logs, `snapshot`
//!   checkpoints and truncates the WAL.
//! * [`faults::FaultInjector`] — deterministic storage fault injection
//!   (torn write, corrupted block, stale snapshot, partial log) driving
//!   the recovery paths in tests and chaos schedules.
//!
//! Crash-ordering contract: snapshot writes blocks, then installs the
//! manifest by rename (the commit point), then truncates the WAL. A
//! crash between the last two steps leaves records at or below the
//! manifest's `applied_seq` in the log; recovery skips them. A WAL whose
//! first fresh record jumps past `applied_seq + 1` means the manifest on
//! disk is older than the log it claims to cover — recovery refuses with
//! [`error::StoreError::StaleSnapshot`] rather than silently losing
//! events.
//!
//! The crate is std-only and stores only what the LRS legitimately sees:
//! pseudonymous events and ciphertext. `attack::at_rest_audit` in
//! `pprox-attack` scans a store directory to verify exactly that.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod error;
pub mod faults;
pub mod keyring;
pub mod log;
pub mod manifest;
pub mod store;
pub mod tempdir;

pub use block::BlockStore;
pub use error::StoreError;
pub use faults::{FaultInjector, FaultReport, StorageFault};
pub use keyring::{StoreKey, StoreKeyring};
pub use log::{EventLog, LogRecord, LogRecovery};
pub use manifest::Manifest;
pub use store::{Recovery, SealedStore, StoreConfig};
pub use tempdir::TempDir;

// Re-exported so store consumers (e.g. `pprox-lrs`) can name the sealing
// surface without depending on `pprox-sgx` directly.
pub use pprox_crypto::rng::SecureRng;
pub use pprox_sgx::measurement::Measurement;
pub use pprox_sgx::sealing::{SealError, SealingKey};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the sealed keyring inside a store directory.
pub const KEYRING_FILE: &str = "keyring.sealed";
/// File name of the committed snapshot manifest.
pub const MANIFEST_FILE: &str = "manifest.bin";
/// File name the previous manifest is renamed to during a snapshot.
pub const MANIFEST_OLD_FILE: &str = "manifest.old";
/// Subdirectory holding content-addressed blocks.
pub const BLOCKS_DIR: &str = "blocks";

pub(crate) mod framing {
    //! Fixed-class plaintext framing shared by the WAL and block store:
    //! `len(u32 BE) || payload || zeros`, padded up to the next multiple
    //! of the size class so ciphertext lengths reveal only a class count.

    /// Frames `payload` into the smallest multiple of `class` that fits.
    pub fn frame(payload: &[u8], class: usize) -> Vec<u8> {
        let class = class.max(1);
        let raw = 4 + payload.len();
        let framed = raw.div_ceil(class) * class;
        let mut out = Vec::with_capacity(framed);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        out.resize(framed, 0);
        out
    }

    /// Recovers the payload from a frame; `None` if structurally invalid.
    pub fn unframe(frame: &[u8]) -> Option<Vec<u8>> {
        if frame.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        if 4 + len > frame.len() {
            return None;
        }
        Some(frame[4..4 + len].to_vec())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn frame_pads_to_class_multiples() {
            assert_eq!(frame(b"", 64).len(), 64);
            assert_eq!(frame(&[7u8; 59], 64).len(), 64);
            assert_eq!(frame(&[7u8; 61], 64).len(), 128);
            assert_eq!(unframe(&frame(&[7u8; 61], 64)).unwrap(), vec![7u8; 61]);
        }

        #[test]
        fn unframe_rejects_garbage() {
            assert!(unframe(&[]).is_none());
            assert!(unframe(&[0xff, 0xff, 0xff, 0xff, 0]).is_none());
        }
    }
}
