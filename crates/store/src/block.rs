//! Content-addressed encrypted block store.
//!
//! Snapshot state is chunked into blocks, each encrypted under the store
//! DEK with a random IV and padded to a block class, then written to
//! `blocks/<hex>` where `<hex>` is the SHA-256 of the *ciphertext*. The
//! name therefore authenticates the content without revealing anything
//! about the plaintext, and a flipped bit is detected by re-hashing on
//! read. Writes go through a temp file + rename, so a crash never leaves
//! a half-written block under a valid address.

use crate::error::StoreError;
use crate::framing;
use crate::keyring::StoreKey;
use crate::BLOCKS_DIR;
use pprox_crypto::ctr::SymmetricKey;
use pprox_crypto::rng::SecureRng;
use pprox_crypto::sha256;
use std::path::{Path, PathBuf};

/// The content-addressed encrypted block store of one store directory.
pub struct BlockStore {
    dir: PathBuf,
    cipher: SymmetricKey,
    block_class: usize,
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("dir", &self.dir)
            .finish()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl BlockStore {
    /// Opens (creating if needed) the `blocks/` subdirectory of `dir`.
    pub fn open(dir: &Path, key: &StoreKey, block_class: usize) -> Result<Self, StoreError> {
        let blocks = dir.join(BLOCKS_DIR);
        std::fs::create_dir_all(&blocks).map_err(|e| StoreError::io(&blocks, e))?;
        Ok(BlockStore {
            dir: blocks,
            cipher: key.cipher(),
            block_class: block_class.max(1),
        })
    }

    /// Encrypts and stores `data`, returning its content address.
    pub fn put(&self, data: &[u8], rng: &mut SecureRng) -> Result<String, StoreError> {
        let frame = framing::frame(data, self.block_class);
        let ct = self.cipher.encrypt(&frame, rng);
        let address = hex(&sha256::digest(&ct));
        let path = self.dir.join(&address);
        if path.exists() {
            return Ok(address);
        }
        let tmp = self.dir.join(format!("{address}.tmp"));
        std::fs::write(&tmp, &ct).map_err(|e| StoreError::io(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        Ok(address)
    }

    /// Reads and decrypts the block at `address`, verifying the content
    /// hash first.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingBlock`] when no such file exists;
    /// [`StoreError::CorruptBlock`] when the bytes no longer hash to the
    /// address or fail to decrypt.
    pub fn get(&self, address: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.dir.join(address);
        let ct = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingBlock {
                    address: address.to_string(),
                })
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        if hex(&sha256::digest(&ct)) != address {
            return Err(StoreError::CorruptBlock {
                address: address.to_string(),
            });
        }
        let frame = self
            .cipher
            .decrypt(&ct)
            .ok_or_else(|| StoreError::CorruptBlock {
                address: address.to_string(),
            })?;
        framing::unframe(&frame).ok_or(StoreError::CorruptBlock {
            address: address.to_string(),
        })
    }

    /// Lists all block addresses currently on disk (sorted).
    pub fn addresses(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.dir, e))?;
            if let Some(name) = entry.file_name().to_str() {
                if name.len() == 64 && name.bytes().all(|b| b.is_ascii_hexdigit()) {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Deletes blocks not in `keep` (post-snapshot garbage collection).
    /// Returns how many were removed.
    pub fn retain(&self, keep: &[String]) -> Result<usize, StoreError> {
        let mut removed = 0;
        for address in self.addresses()? {
            if !keep.contains(&address) {
                let path = self.dir.join(&address);
                std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn setup() -> (TempDir, BlockStore, SecureRng) {
        let dir = TempDir::new("blocks");
        let key = StoreKey::generate(&mut SecureRng::from_seed(3));
        let store = BlockStore::open(dir.path(), &key, 4096).unwrap();
        (dir, store, SecureRng::from_seed(4))
    }

    #[test]
    fn put_get_roundtrip() {
        let (_dir, store, mut rng) = setup();
        let address = store.put(b"snapshot chunk", &mut rng).unwrap();
        assert_eq!(address.len(), 64);
        assert_eq!(store.get(&address).unwrap(), b"snapshot chunk");
    }

    #[test]
    fn blocks_are_padded_to_class() {
        let (dir, store, mut rng) = setup();
        let a = store.put(b"tiny", &mut rng).unwrap();
        let b = store.put(&vec![5u8; 4000], &mut rng).unwrap();
        let size = |addr: &str| {
            std::fs::metadata(dir.path().join(BLOCKS_DIR).join(addr))
                .unwrap()
                .len()
        };
        // Both fit one 4096-byte class: same ciphertext size (IV + class).
        assert_eq!(size(&a), 16 + 4096);
        assert_eq!(size(&a), size(&b));
    }

    #[test]
    fn corruption_is_detected() {
        let (dir, store, mut rng) = setup();
        let address = store.put(b"verify me", &mut rng).unwrap();
        let path = dir.path().join(BLOCKS_DIR).join(&address);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get(&address),
            Err(StoreError::CorruptBlock { .. })
        ));
    }

    #[test]
    fn missing_block_reported() {
        let (_dir, store, _) = setup();
        let absent = "0".repeat(64);
        assert!(matches!(
            store.get(&absent),
            Err(StoreError::MissingBlock { .. })
        ));
    }

    #[test]
    fn addresses_and_retain() {
        let (_dir, store, mut rng) = setup();
        let a = store.put(b"live", &mut rng).unwrap();
        let b = store.put(b"dead", &mut rng).unwrap();
        assert_eq!(store.addresses().unwrap().len(), 2);
        assert_eq!(store.retain(std::slice::from_ref(&a)).unwrap(), 1);
        assert_eq!(store.addresses().unwrap(), vec![a.clone()]);
        assert!(matches!(
            store.get(&b),
            Err(StoreError::MissingBlock { .. })
        ));
    }

    #[test]
    fn same_content_same_rng_draw_gives_distinct_addresses() {
        let (_dir, store, mut rng) = setup();
        // Random IVs make repeated puts of identical plaintext distinct
        // ciphertexts (and addresses) — the at-rest image does not reveal
        // content equality across snapshots.
        let a = store.put(b"same", &mut rng).unwrap();
        let b = store.put(b"same", &mut rng).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.get(&a).unwrap(), store.get(&b).unwrap());
    }
}
