//! The [`SealedStore`] facade: keyring + WAL + blocks + manifest as one
//! crash-recoverable unit.
//!
//! Lifecycle:
//!
//! 1. `open` — unseal (or mint) the DEK, load the committed manifest,
//!    decrypt its snapshot blocks, scan the WAL (tolerating a torn
//!    tail), and hand back everything the application needs to rebuild
//!    its in-memory state.
//! 2. `append_event` — log one application payload ahead of applying it
//!    in memory (write-ahead discipline).
//! 3. `snapshot` — persist the application's compacted state as blocks,
//!    commit the manifest, truncate the WAL.
//!
//! Crash points and their recovery behavior are documented (and tested)
//! per step in the crate docs.

use crate::block::BlockStore;
use crate::error::StoreError;
use crate::keyring::StoreKeyring;
use crate::log::{EventLog, LogRecord};
use crate::manifest::{self, Manifest};
use crate::{KEYRING_FILE, WAL_FILE};
use pprox_crypto::rng::SecureRng;
use pprox_sgx::measurement::Measurement;
use pprox_sgx::sealing::SealingKey;
use std::path::{Path, PathBuf};

/// Size classes for the store's two padded artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// WAL record pad class in bytes (ciphertext length is a multiple
    /// of this, plus the 16-byte IV).
    pub pad_class: usize,
    /// Snapshot block pad class in bytes.
    pub block_class: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            pad_class: 256,
            block_class: 4096,
        }
    }
}

/// Everything `open` recovered from disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Decrypted snapshot blocks, in manifest order (empty on a store
    /// that never snapshotted).
    pub snapshot_blocks: Vec<Vec<u8>>,
    /// WAL sequence number the snapshot covers.
    pub applied_seq: u64,
    /// Fresh WAL records (sequence numbers beyond `applied_seq`), in
    /// append order — the replay set.
    pub events: Vec<LogRecord>,
    /// WAL records skipped because the snapshot already covers them (a
    /// crash between manifest commit and WAL truncation leaves these).
    pub skipped: usize,
    /// Torn-tail bytes discarded from the WAL.
    pub torn_bytes: u64,
    /// `true` when no sealed keyring existed yet (first boot).
    pub cold_start: bool,
}

/// A crash-recoverable encrypted store rooted at one directory.
pub struct SealedStore {
    dir: PathBuf,
    keyring: StoreKeyring,
    log: EventLog,
    blocks: BlockStore,
    config: StoreConfig,
    rng: SecureRng,
}

impl std::fmt::Debug for SealedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedStore")
            .field("dir", &self.dir)
            .finish()
    }
}

impl SealedStore {
    /// Opens the store at `dir`, unsealing the DEK against this
    /// platform's sealing key and `measurement`, and recovers all
    /// durable state.
    ///
    /// # Errors
    ///
    /// [`StoreError::Seal`] when the keyring was sealed by a different
    /// platform or measurement; [`StoreError::StaleSnapshot`] when the
    /// manifest is older than the WAL it claims to cover;
    /// [`StoreError::CorruptRecord`] / [`StoreError::CorruptBlock`] /
    /// [`StoreError::MissingBlock`] on non-crash damage.
    pub fn open(
        dir: &Path,
        sealing: &SealingKey,
        measurement: Measurement,
        config: StoreConfig,
    ) -> Result<(SealedStore, Recovery), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let cold_start = !dir.join(KEYRING_FILE).exists();
        let mut rng = SecureRng::from_entropy();
        let keyring = StoreKeyring::open_or_create(dir, sealing, measurement, &mut rng)?;

        let loaded = manifest::load(dir, keyring.key())?.unwrap_or_default();
        let (mut log, scanned) =
            EventLog::open(&dir.join(WAL_FILE), keyring.key(), config.pad_class, {
                rng.next_u64()
            })?;
        let applied_seq = loaded.applied_seq;
        let mut events = Vec::new();
        let mut skipped = 0;
        for record in scanned.records {
            if record.seq <= applied_seq {
                skipped += 1;
            } else {
                events.push(record);
            }
        }
        // Staleness is checked before touching blocks: a rolled-back
        // manifest typically also references garbage-collected blocks,
        // and the sequence gap is the root cause worth reporting.
        if let Some(first) = events.first() {
            if first.seq > applied_seq + 1 {
                return Err(StoreError::StaleSnapshot {
                    applied_seq,
                    next_seq: first.seq,
                });
            }
        }
        if log.next_seq() < applied_seq + 1 {
            log.set_next_seq(applied_seq + 1);
        }

        let blocks = BlockStore::open(dir, keyring.key(), config.block_class)?;
        let mut snapshot_blocks = Vec::with_capacity(loaded.blocks.len());
        for address in &loaded.blocks {
            snapshot_blocks.push(blocks.get(address)?);
        }

        Ok((
            SealedStore {
                dir: dir.to_path_buf(),
                keyring,
                log,
                blocks,
                config,
                rng,
            },
            Recovery {
                snapshot_blocks,
                applied_seq,
                events,
                skipped,
                torn_bytes: scanned.torn_bytes,
                cold_start,
            },
        ))
    }

    /// Appends one event payload to the WAL, returning its sequence
    /// number. Call *before* applying the event to in-memory state.
    pub fn append_event(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        self.log.append(payload)
    }

    /// Forces the WAL to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.log.sync()
    }

    /// Checkpoints: persists `state_blocks` (the application's compacted
    /// state), commits a manifest covering `applied_seq`, truncates the
    /// WAL, and garbage-collects superseded blocks.
    pub fn snapshot(
        &mut self,
        state_blocks: &[Vec<u8>],
        applied_seq: u64,
    ) -> Result<(), StoreError> {
        let mut addresses = Vec::with_capacity(state_blocks.len());
        for block in state_blocks {
            addresses.push(self.blocks.put(block, &mut self.rng)?);
        }
        let m = Manifest {
            applied_seq,
            blocks: addresses.clone(),
        };
        manifest::save(&self.dir, self.keyring.key(), &m, &mut self.rng)?;
        self.log.reset(applied_seq)?;
        self.blocks.retain(&addresses)?;
        Ok(())
    }

    /// Sequence number the next `append_event` will receive.
    pub fn next_seq(&self) -> u64 {
        self.log.next_seq()
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size classes.
    pub fn config(&self) -> StoreConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::{MANIFEST_FILE, MANIFEST_OLD_FILE};

    fn sealing() -> SealingKey {
        SealingKey::generate(&mut SecureRng::from_seed(11))
    }

    fn measurement() -> Measurement {
        Measurement::of_code("pprox-lrs-store-v1")
    }

    fn open(dir: &TempDir) -> (SealedStore, Recovery) {
        SealedStore::open(
            dir.path(),
            &sealing(),
            measurement(),
            StoreConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn cold_start_then_warm_restart_replays_events() {
        let dir = TempDir::new("store");
        let (mut store, rec) = open(&dir);
        assert!(rec.cold_start);
        assert!(rec.events.is_empty());
        store.append_event(b"e1").unwrap();
        store.append_event(b"e2").unwrap();
        drop(store);

        let (_store, rec) = open(&dir);
        assert!(!rec.cold_start);
        assert_eq!(rec.applied_seq, 0);
        assert_eq!(rec.skipped, 0);
        let payloads: Vec<_> = rec.events.iter().map(|r| r.payload.clone()).collect();
        assert_eq!(payloads, vec![b"e1".to_vec(), b"e2".to_vec()]);
    }

    #[test]
    fn snapshot_truncates_wal_and_recovers_blocks() {
        let dir = TempDir::new("store");
        let (mut store, _) = open(&dir);
        for i in 0..4 {
            store.append_event(format!("e{i}").as_bytes()).unwrap();
        }
        store
            .snapshot(&[b"state-a".to_vec(), b"state-b".to_vec()], 4)
            .unwrap();
        store.append_event(b"tail").unwrap();
        drop(store);

        let (store, rec) = open(&dir);
        assert_eq!(rec.applied_seq, 4);
        assert_eq!(
            rec.snapshot_blocks,
            vec![b"state-a".to_vec(), b"state-b".to_vec()]
        );
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.events[0].seq, 5);
        assert_eq!(rec.events[0].payload, b"tail");
        assert_eq!(store.next_seq(), 6);
    }

    #[test]
    fn overlapping_wal_records_are_skipped_not_replayed() {
        // Simulate a crash between manifest commit and WAL truncation:
        // snapshot, then restore the pre-snapshot WAL contents.
        let dir = TempDir::new("store");
        let (mut store, _) = open(&dir);
        store.append_event(b"covered-1").unwrap();
        store.append_event(b"covered-2").unwrap();
        let wal_before = std::fs::read(dir.path().join(WAL_FILE)).unwrap();
        store.snapshot(&[b"state".to_vec()], 2).unwrap();
        std::fs::write(dir.path().join(WAL_FILE), &wal_before).unwrap();
        drop(store);

        let (store, rec) = open(&dir);
        assert_eq!(rec.skipped, 2, "covered records are skipped");
        assert!(rec.events.is_empty());
        assert_eq!(store.next_seq(), 3, "sequence resumes past the snapshot");
    }

    #[test]
    fn stale_manifest_is_refused() {
        let dir = TempDir::new("store");
        let (mut store, _) = open(&dir);
        store.append_event(b"a").unwrap();
        store.append_event(b"b").unwrap();
        store.snapshot(&[b"s1".to_vec()], 2).unwrap();
        store.append_event(b"c").unwrap(); // seq 3
        store.snapshot(&[b"s2".to_vec()], 3).unwrap();
        store.append_event(b"d").unwrap(); // seq 4
        drop(store);
        // Roll the manifest back to the first snapshot (applied_seq 2):
        // the WAL resumes at 4, so seq 3 is unrecoverable — refuse.
        std::fs::rename(
            dir.path().join(MANIFEST_OLD_FILE),
            dir.path().join(MANIFEST_FILE),
        )
        .unwrap();
        match SealedStore::open(
            dir.path(),
            &sealing(),
            measurement(),
            StoreConfig::default(),
        ) {
            Err(StoreError::StaleSnapshot {
                applied_seq,
                next_seq,
            }) => {
                assert_eq!((applied_seq, next_seq), (2, 4));
            }
            other => panic!("expected StaleSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn foreign_platform_cannot_open() {
        let dir = TempDir::new("store");
        let (mut store, _) = open(&dir);
        store.append_event(b"sealed away").unwrap();
        drop(store);
        let foreign = SealingKey::generate(&mut SecureRng::from_seed(1234));
        assert!(matches!(
            SealedStore::open(dir.path(), &foreign, measurement(), StoreConfig::default()),
            Err(StoreError::Seal(_))
        ));
    }

    #[test]
    fn missing_snapshot_block_is_reported() {
        let dir = TempDir::new("store");
        let (mut store, _) = open(&dir);
        store.append_event(b"x").unwrap();
        store.snapshot(&[b"only-block".to_vec()], 1).unwrap();
        drop(store);
        let blocks_dir = dir.path().join(crate::BLOCKS_DIR);
        for entry in std::fs::read_dir(&blocks_dir).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
        assert!(matches!(
            SealedStore::open(
                dir.path(),
                &sealing(),
                measurement(),
                StoreConfig::default()
            ),
            Err(StoreError::MissingBlock { .. })
        ));
    }
}
