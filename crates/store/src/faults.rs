//! Deterministic storage fault injection.
//!
//! Each fault reproduces a specific real-world failure against a store
//! directory, so recovery paths are driven by tests and chaos schedules
//! rather than hoped-for:
//!
//! * [`StorageFault::TornWrite`] — `kill -9` mid-append: the WAL's last
//!   record is cut short. Recovery must truncate and continue.
//! * [`StorageFault::PartialLog`] — the tail record vanishes entirely
//!   (lost page cache): the WAL ends at a record boundary, short.
//! * [`StorageFault::CorruptBlock`] — bit rot in a snapshot block: the
//!   content hash no longer matches.
//! * [`StorageFault::StaleSnapshot`] — the previous manifest reappears
//!   (a restored backup, a reordered rename): recovery must detect the
//!   sequence gap instead of silently losing events.
//!
//! Injection only touches bytes on disk — exactly what the adversary or
//! the failing hardware could do — never the store's in-memory state.

use crate::error::StoreError;
use crate::log::HEADER_LEN;
use crate::{MANIFEST_FILE, MANIFEST_OLD_FILE, WAL_FILE};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// The storage fault classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Cut the WAL's final record short, mid-ciphertext.
    TornWrite,
    /// Remove the WAL's final record entirely (truncate at a boundary).
    PartialLog,
    /// Flip one byte inside a snapshot block.
    CorruptBlock,
    /// Reinstall the previous manifest over the committed one.
    StaleSnapshot,
}

impl std::fmt::Display for StorageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            StorageFault::TornWrite => "torn-write",
            StorageFault::PartialLog => "partial-log",
            StorageFault::CorruptBlock => "corrupt-block",
            StorageFault::StaleSnapshot => "stale-snapshot",
        };
        f.write_str(name)
    }
}

/// What an injection actually did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The requested fault.
    pub fault: StorageFault,
    /// `false` when the store had no artifact to damage (e.g. an empty
    /// WAL cannot tear).
    pub applied: bool,
    /// Human-readable description of the mutation.
    pub detail: String,
}

/// Injects storage faults into one store directory.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    dir: PathBuf,
}

impl FaultInjector {
    /// Targets the store rooted at `dir`.
    pub fn new(dir: &Path) -> Self {
        FaultInjector {
            dir: dir.to_path_buf(),
        }
    }

    /// Applies `fault`, returning what was damaged.
    pub fn inject(&self, fault: StorageFault) -> Result<FaultReport, StoreError> {
        match fault {
            StorageFault::TornWrite => self.torn_write(),
            StorageFault::PartialLog => self.partial_log(),
            StorageFault::CorruptBlock => self.corrupt_block(),
            StorageFault::StaleSnapshot => self.stale_snapshot(),
        }
    }

    /// Record boundaries of the WAL, by walking the plaintext length
    /// headers (no key needed).
    fn wal_boundaries(&self) -> Result<(PathBuf, Vec<u64>, u64), StoreError> {
        let path = self.dir.join(WAL_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        let mut boundaries = vec![0u64];
        let mut offset = 0usize;
        while offset + HEADER_LEN <= bytes.len() {
            let len =
                u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let next = offset + HEADER_LEN + len;
            if len == 0 || next > bytes.len() {
                break;
            }
            boundaries.push(next as u64);
            offset = next;
        }
        Ok((path, boundaries, bytes.len() as u64))
    }

    fn torn_write(&self) -> Result<FaultReport, StoreError> {
        let (path, boundaries, len) = self.wal_boundaries()?;
        let Some(&last_start) = boundaries.iter().rev().nth(1) else {
            return Ok(not_applied(StorageFault::TornWrite, "WAL has no records"));
        };
        // Cut inside the last record: keep its header plus a little
        // ciphertext, as an interrupted write would.
        let cut = last_start + HEADER_LEN as u64 + 3;
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        file.set_len(cut).map_err(|e| StoreError::io(&path, e))?;
        Ok(FaultReport {
            fault: StorageFault::TornWrite,
            applied: true,
            detail: format!("truncated WAL from {len} to {cut} bytes, mid-record"),
        })
    }

    fn partial_log(&self) -> Result<FaultReport, StoreError> {
        let (path, boundaries, len) = self.wal_boundaries()?;
        let Some(&last_start) = boundaries.iter().rev().nth(1) else {
            return Ok(not_applied(StorageFault::PartialLog, "WAL has no records"));
        };
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        file.set_len(last_start)
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(FaultReport {
            fault: StorageFault::PartialLog,
            applied: true,
            detail: format!("dropped final WAL record ({len} -> {last_start} bytes)"),
        })
    }

    fn corrupt_block(&self) -> Result<FaultReport, StoreError> {
        let blocks_dir = self.dir.join(crate::BLOCKS_DIR);
        let mut names: Vec<String> = match std::fs::read_dir(&blocks_dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().to_str().map(str::to_string))
                .filter(|n| n.len() == 64)
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::io(&blocks_dir, e)),
        };
        names.sort();
        let Some(name) = names.first() else {
            return Ok(not_applied(StorageFault::CorruptBlock, "no blocks on disk"));
        };
        let path = blocks_dir.join(name);
        let mut bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        std::fs::write(&path, &bytes).map_err(|e| StoreError::io(&path, e))?;
        Ok(FaultReport {
            fault: StorageFault::CorruptBlock,
            applied: true,
            detail: format!("flipped byte {mid} of block {}", &name[..8]),
        })
    }

    fn stale_snapshot(&self) -> Result<FaultReport, StoreError> {
        let old = self.dir.join(MANIFEST_OLD_FILE);
        let live = self.dir.join(MANIFEST_FILE);
        if !old.exists() {
            return Ok(not_applied(
                StorageFault::StaleSnapshot,
                "no previous manifest to reinstall",
            ));
        }
        std::fs::copy(&old, &live).map_err(|e| StoreError::io(&live, e))?;
        Ok(FaultReport {
            fault: StorageFault::StaleSnapshot,
            applied: true,
            detail: "reinstalled previous manifest over the committed one".to_string(),
        })
    }
}

fn not_applied(fault: StorageFault, why: &str) -> FaultReport {
    FaultReport {
        fault,
        applied: false,
        detail: why.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SealedStore, StoreConfig};
    use crate::tempdir::TempDir;
    use pprox_crypto::rng::SecureRng;
    use pprox_sgx::measurement::Measurement;
    use pprox_sgx::sealing::SealingKey;

    fn sealing() -> SealingKey {
        SealingKey::generate(&mut SecureRng::from_seed(21))
    }

    fn measurement() -> Measurement {
        Measurement::of_code("fault-drill")
    }

    fn open(dir: &TempDir) -> (SealedStore, crate::store::Recovery) {
        SealedStore::open(
            dir.path(),
            &sealing(),
            measurement(),
            StoreConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn torn_write_recovers_all_but_last_record() {
        let dir = TempDir::new("faults");
        let (mut store, _) = open(&dir);
        for i in 0..3 {
            store.append_event(format!("e{i}").as_bytes()).unwrap();
        }
        drop(store);
        let report = FaultInjector::new(dir.path())
            .inject(StorageFault::TornWrite)
            .unwrap();
        assert!(report.applied);
        let (_, rec) = open(&dir);
        assert_eq!(rec.events.len(), 2, "torn record is lost, rest survive");
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn partial_log_loses_exactly_the_tail_record() {
        let dir = TempDir::new("faults");
        let (mut store, _) = open(&dir);
        for i in 0..3 {
            store.append_event(format!("e{i}").as_bytes()).unwrap();
        }
        drop(store);
        let report = FaultInjector::new(dir.path())
            .inject(StorageFault::PartialLog)
            .unwrap();
        assert!(report.applied);
        let (_, rec) = open(&dir);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.torn_bytes, 0, "a boundary cut is not a torn tail");
    }

    #[test]
    fn corrupt_block_is_caught_on_recovery() {
        let dir = TempDir::new("faults");
        let (mut store, _) = open(&dir);
        store.append_event(b"x").unwrap();
        store.snapshot(&[b"precious state".to_vec()], 1).unwrap();
        drop(store);
        let report = FaultInjector::new(dir.path())
            .inject(StorageFault::CorruptBlock)
            .unwrap();
        assert!(report.applied);
        assert!(matches!(
            SealedStore::open(
                dir.path(),
                &sealing(),
                measurement(),
                StoreConfig::default()
            ),
            Err(StoreError::CorruptBlock { .. })
        ));
    }

    #[test]
    fn stale_snapshot_is_caught_on_recovery() {
        let dir = TempDir::new("faults");
        let (mut store, _) = open(&dir);
        store.append_event(b"a").unwrap();
        store.snapshot(&[b"s1".to_vec()], 1).unwrap();
        store.append_event(b"b").unwrap();
        store.snapshot(&[b"s2".to_vec()], 2).unwrap();
        store.append_event(b"c").unwrap(); // seq 3, fresh in WAL
        drop(store);
        let report = FaultInjector::new(dir.path())
            .inject(StorageFault::StaleSnapshot)
            .unwrap();
        assert!(report.applied);
        // Manifest says applied=1, WAL resumes at 3: seq 2 is gone.
        assert!(matches!(
            SealedStore::open(
                dir.path(),
                &sealing(),
                measurement(),
                StoreConfig::default()
            ),
            Err(StoreError::StaleSnapshot {
                applied_seq: 1,
                next_seq: 3
            })
        ));
    }

    #[test]
    fn faults_on_an_empty_store_do_not_apply() {
        let dir = TempDir::new("faults");
        let injector = FaultInjector::new(dir.path());
        for fault in [
            StorageFault::TornWrite,
            StorageFault::PartialLog,
            StorageFault::CorruptBlock,
            StorageFault::StaleSnapshot,
        ] {
            let report = injector.inject(fault).unwrap();
            assert!(!report.applied, "{fault} applied on empty store");
        }
    }
}
