//! Scenario execution: boot a loopback cluster, interpose taps, replay
//! an open-loop schedule against it, and score the traffic-analysis
//! adversary on what the taps saw.
//!
//! One [`run_scenario`] call is one experiment:
//!
//! 1. Launch a [`LoopbackCluster`] with the scenario's topology and
//!    shuffle knobs, linkage auditing on (ground truth), supervisor off
//!    (taps replace ring backends; a supervisor would readmit the real
//!    addresses behind our back).
//! 2. Spawn one [`RecordingTap`] per UA×IA link and reroute every UA's
//!    uplink ring through its taps — the adversary now sits on the
//!    UA→IA boundary of every instance.
//! 3. Pre-encode every request (posts and gets, round-robin across UA
//!    instances) and replay the seeded arrival schedule open-loop from
//!    a dispatcher thread into a worker pool. Workers talk to their
//!    assigned UA directly, so the harness knows each request's true
//!    instance; optional client churn, slow-loris connections, and
//!    injected WAN latency ride on top.
//! 4. Drain, then assemble the adversary's [`WireTrace`]: arrivals from
//!    the workers' send log, departures from tap frames joined to the
//!    cluster's ground-truth audit by time order.
//! 5. Run the instance-aware and instance-blind linkage attacks and
//!    package a [`ScenarioOutcome`].
//!
//! Determinism: the schedule, request plaintexts, and all seeds derive
//! from `(spec, seed)`. Wall-clock time affects *throughput*, never an
//! assertion — outcomes are judged only against the analytic bounds
//! with sample-size-aware tolerances.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;
use pprox_attack::wire_audit::{
    wire_linkage_attack, TraceArrival, TraceDeparture, WireAuditConfig, WireAuditOutcome, WireTrace,
};
use pprox_core::resilience::Deadline;
use pprox_core::shuffler::ShuffleConfig;
use pprox_lrs::stub::StubLrs;
use pprox_wire::audit::request_fingerprint;
use pprox_wire::cluster::{ClusterConfig, LoopbackCluster};
use pprox_wire::{ClientConfig, ClusterScraper, PooledClient, PressureSample};

use crate::schedule::{arrival_times_us, LoadShape};
use crate::tap::{RecordingTap, TapClock, TapDirection};

/// One scenario's full parameterization.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (report key).
    pub name: &'static str,
    /// Offered-load shape.
    pub shape: LoadShape,
    /// Total requests replayed.
    pub requests: usize,
    /// Shuffle buffer size `S`.
    pub shuffle_size: usize,
    /// Shuffle flush timeout, µs.
    pub shuffle_timeout_us: u64,
    /// UA instances `I`.
    pub ua_instances: usize,
    /// IA instances.
    pub ia_instances: usize,
    /// Forwarder threads per UA shuffle stage.
    pub forwarders: usize,
    /// WAN latency injected on every tapped UA→IA frame, µs.
    pub wan_delay_us: u64,
    /// Rebuild every worker's connections after this many requests
    /// (client churn / reconnect storms). `None` disables churn.
    pub churn_every: Option<usize>,
    /// Slow-loris connections held against the UA tier for the whole
    /// run (each trickles one garbage byte every 300 ms).
    pub slow_loris_conns: usize,
    /// Override the UA servers' admission-gate capacity (Busy-shed
    /// abuse scenarios). `None` keeps the default.
    pub max_inflight: Option<usize>,
    /// Void the shuffle permutation (arrival-order release) — the
    /// seeded ablation the audit must *catch*.
    pub order_ablation: bool,
    /// Whether this scenario is expected to violate the bound (true
    /// only for ablations).
    pub violation_expected: bool,
    /// Burst-clustering gap handed to the estimator, µs. Must sit
    /// between the intra-flush frame spread and the inter-flush
    /// interval `S / per_instance_rate`.
    pub batch_gap_us: u64,
}

/// One window of a run's pressure timeline: a wire scrape of every
/// node, taken while the load ran.
#[derive(Debug, Clone)]
pub struct PressurePoint {
    /// Offset from dispatch start, ms.
    pub at_ms: u64,
    /// Nodes that did not answer this pass (killed or respawning).
    pub unreachable: usize,
    /// Gauges merged across the nodes that answered.
    pub sample: PressureSample,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests that failed (shed, deadline, transport).
    pub failed: usize,
    /// Server-side sheds across the UA tier.
    pub shed: u64,
    /// Run duration, µs (informational).
    pub duration_us: u64,
    /// Mean offered rate, rps (informational).
    pub offered_rps: f64,
    /// Instance-aware adversary vs the `1/S` curve.
    pub aware: WireAuditOutcome,
    /// Instance-blind adversary vs the `1/(S·I)` curve.
    pub blind: WireAuditOutcome,
    /// Pressure timeline: one wire scrape of every node per ~100 ms
    /// window for the whole run (queue depth, sheds, shuffle occupancy).
    pub pressure: Vec<PressurePoint>,
}

impl ScenarioOutcome {
    /// Whether the run's verdict matches the spec's expectation: bounds
    /// hold for normal scenarios, and the ablation is *caught*.
    pub fn ok(&self) -> bool {
        if self.spec.violation_expected {
            !self.aware.within_bound()
        } else {
            self.aware.within_bound() && self.blind.within_bound()
        }
    }
}

/// Effective seed for scenario and resilience tests: honors the
/// `PPROX_TEST_SEED` environment variable and prints the seed in use,
/// so a failing run's banner is enough to replay it exactly:
/// `PPROX_TEST_SEED=<seed> cargo test ...`.
pub fn test_seed(default: u64) -> u64 {
    let seed = std::env::var("PPROX_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default);
    eprintln!("scenario seed: {seed} (override with PPROX_TEST_SEED)");
    seed
}

/// Runs one scenario to completion. Panics on harness-level failures
/// (cluster refusing to boot, taps failing to bind) — those are test
/// environment errors, not measurements.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> ScenarioOutcome {
    let mut config = ClusterConfig {
        ua_instances: spec.ua_instances,
        ia_instances: spec.ia_instances,
        lrs_instances: 1,
        forwarders: spec.forwarders,
        supervisor: false,
        linkage_audit: true,
        shuffle_order_ablation: spec.order_ablation,
        shuffle: ShuffleConfig {
            size: spec.shuffle_size,
            timeout_us: spec.shuffle_timeout_us,
        },
        seed: seed ^ 0xc105_7e2d_0000_0001,
        ..ClusterConfig::default()
    };
    // UA worker sizing (a shuffled request parks its worker for the
    // whole dwell) is derived by `ClusterConfig::ua_server_config` —
    // the harness no longer hand-rolls the 4·S formula.
    if let Some(cap) = spec.max_inflight {
        config.server.max_inflight = cap;
    }
    let mut cluster =
        LoopbackCluster::launch(config, Arc::new(StubLrs::new())).expect("cluster boot");
    assert!(
        cluster.wait_ready(Duration::from_secs(10)),
        "cluster did not come up"
    );

    // The adversary's clock is the cluster's telemetry clock; sharing it
    // lets ground-truth audit events and tap frames be joined by time.
    let telemetry = cluster.telemetry().clone();
    let clock: TapClock = Arc::new(move || telemetry.now_us());

    // One tap per UA×IA link, then reroute each UA's uplink through its
    // row of taps.
    let ia_addrs = cluster.ia_addrs();
    let wan = Duration::from_micros(spec.wan_delay_us);
    let mut taps: Vec<Vec<RecordingTap>> = Vec::with_capacity(spec.ua_instances);
    for ua in 0..spec.ua_instances {
        let row: Vec<RecordingTap> = ia_addrs
            .iter()
            .map(|&ia| RecordingTap::spawn(ia, wan, clock.clone()).expect("tap bind"))
            .collect();
        let tap_addrs: Vec<_> = row.iter().map(RecordingTap::addr).collect();
        cluster.reroute_ua_uplink(ua, &tap_addrs);
        taps.push(row);
    }

    let outcome = drive(spec, seed, &mut cluster, &taps);
    for row in &mut taps {
        for tap in row {
            tap.shutdown();
        }
    }
    cluster.shutdown();
    outcome
}

/// One pre-encoded request: which UA it targets, its wire bytes, and
/// the fingerprint the cluster's audit will log for it.
struct PlannedRequest {
    ua: usize,
    frame: Vec<u8>,
    fp: u64,
}

fn drive(
    spec: &ScenarioSpec,
    seed: u64,
    cluster: &mut LoopbackCluster,
    taps: &[Vec<RecordingTap>],
) -> ScenarioOutcome {
    let telemetry = cluster.telemetry().clone();
    let ua_addrs = cluster.ua_addrs();

    // Pre-encode the whole run: alternating posts and gets over a small
    // user/item population, round-robin across UA instances. Encryption
    // is randomized, so fingerprints are unique per request.
    let mut client = cluster.client();
    let plan: Vec<PlannedRequest> = (0..spec.requests)
        .map(|k| {
            let user = format!("user-{:03}", k % 41);
            let envelope = if k % 3 == 0 {
                client.get(&user).expect("encode get").0
            } else {
                let item = format!("item-{:03}", k % 59);
                client
                    .post(&user, &item, Some((k % 5) as f64))
                    .expect("encode post")
            };
            let frame = envelope.to_frame().expect("frame");
            let fp = request_fingerprint(&frame);
            PlannedRequest {
                ua: k % spec.ua_instances,
                frame,
                fp,
            }
        })
        .collect();
    let schedule = arrival_times_us(&spec.shape, spec.requests, seed);

    // Slow-loris floor: connections that trickle garbage one byte at a
    // time for the whole run. The servers must keep serving around them.
    let loris_stop = Arc::new(AtomicBool::new(false));
    let loris: Vec<_> = (0..spec.slow_loris_conns)
        .map(|i| {
            let addr = ua_addrs[i % ua_addrs.len()];
            let stop = loris_stop.clone();
            std::thread::spawn(move || slow_loris(addr, &stop))
        })
        .collect();

    // Worker pool. Each worker owns one PooledClient per UA instance
    // (no retries: one request == one wire frame, keeping the trace
    // clean), rebuilt wholesale every `churn_every` requests to model
    // reconnect storms.
    let (tx, rx) = channel::unbounded::<usize>();
    let completed = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let arrivals: Arc<Mutex<Vec<TraceArrival>>> = Arc::new(Mutex::new(Vec::new()));
    let plan = Arc::new(plan);
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let rx = rx.clone();
            let plan = plan.clone();
            let ua_addrs = ua_addrs.clone();
            let telemetry = telemetry.clone();
            let completed = completed.clone();
            let failed = failed.clone();
            let arrivals = arrivals.clone();
            let churn_every = spec.churn_every;
            let client_seed = seed ^ (w as u64) << 17;
            std::thread::spawn(move || {
                let build = |gen: u64| -> Vec<PooledClient> {
                    ua_addrs
                        .iter()
                        .map(|&a| {
                            PooledClient::new(
                                a,
                                ClientConfig {
                                    pool_size: 2,
                                    max_retries: 0,
                                    seed: client_seed.wrapping_add(gen),
                                    ..ClientConfig::default()
                                },
                            )
                        })
                        .collect()
                };
                let mut clients = build(0);
                let mut served = 0u64;
                while let Ok(k) = rx.recv() {
                    let req = &plan[k];
                    if let Some(every) = churn_every {
                        if served > 0 && served.is_multiple_of(every as u64) {
                            // Drop every pooled connection and dial
                            // fresh — the reconnect storm.
                            clients = build(served);
                        }
                    }
                    served += 1;
                    let at_us = telemetry.now_us();
                    arrivals.lock().push(TraceArrival {
                        request: k,
                        at_us,
                        instance: req.ua as u16,
                    });
                    let deadline = Deadline::starting_now(Duration::from_secs(5));
                    match clients[req.ua].call(&req.frame, deadline) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    drop(rx);

    // Pressure sampler: one wire scrape of every node per ~100 ms window
    // while the load runs, so the observability plane is exercised under
    // every load shape and the run yields a pressure timeline.
    let scraper = ClusterScraper::new(cluster.scrape_targets());
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let pressure: Arc<Mutex<Vec<PressurePoint>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = sampler_stop.clone();
        let pressure = pressure.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while !stop.load(Ordering::Acquire) {
                let snap = scraper.scrape();
                pressure.lock().push(PressurePoint {
                    at_ms: t0.elapsed().as_millis() as u64,
                    unreachable: snap.unreachable.len(),
                    sample: snap.pressure(),
                });
                for _ in 0..10 {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
    };

    // Open-loop dispatch: replay the schedule against the wall clock,
    // never waiting for responses.
    let started = Instant::now();
    let t0_us = telemetry.now_us();
    for (k, &at) in schedule.iter().enumerate() {
        let target = Duration::from_micros(at);
        let elapsed = started.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        tx.send(k).expect("workers alive");
    }
    drop(tx);
    for w in workers {
        w.join().expect("worker");
    }

    // Let the last buffered requests flush: every UA's admission gate
    // drains to zero once its shuffle buffers are empty.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let parked: usize = (0..spec.ua_instances)
            .map(|i| cluster.ua_in_flight(i))
            .sum();
        if parked == 0 || Instant::now() > drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let duration_us = telemetry.now_us().saturating_sub(t0_us);

    sampler_stop.store(true, Ordering::Release);
    let _ = sampler.join();
    let pressure = pressure.lock().clone();

    loris_stop.store(true, Ordering::Release);
    for h in loris {
        let _ = h.join();
    }

    let shed: u64 = (0..spec.ua_instances)
        .filter_map(|i| cluster.ua_stats(i))
        .map(|s| s.shed)
        .sum();

    // Departures: per UA, join that UA's egress tap frames (c2s,
    // Request class, across its IA row) with the UA's ground-truth
    // audit log. Both are time-ordered on the same clock and produced
    // 1:1 by the same forwarder sends, so a rank join is exact up to
    // in-batch swaps between concurrent forwarders — which never move a
    // frame across a batch, so the adversary's score is unaffected.
    let audits = cluster.linkage_audits();
    let mut departures = Vec::new();
    let mut fp_to_request = std::collections::HashMap::new();
    for (k, req) in plan.iter().enumerate() {
        fp_to_request.insert(req.fp, k);
    }
    for (ua, row) in taps.iter().enumerate() {
        let mut frames: Vec<_> = row
            .iter()
            .flat_map(|t| t.frames())
            .filter(|f| {
                f.dir == TapDirection::ClientToServer && f.class == pprox_wire::PadClass::Request
            })
            .collect();
        frames.sort_by_key(|f| f.at_us);
        let audit = audits[ua].departures();
        // Tolerate rare count mismatches (a frame lost to a failed IA
        // call) by joining only the common prefix length.
        let n = frames.len().min(audit.len());
        for (frame, event) in frames.iter().take(n).zip(audit.iter().take(n)) {
            let Some(&request) = fp_to_request.get(&event.fp) else {
                continue;
            };
            departures.push(TraceDeparture {
                at_us: frame.at_us,
                instance: ua as u16,
                truth: request,
            });
        }
    }

    let trace = WireTrace {
        shuffle_size: spec.shuffle_size,
        instances: spec.ua_instances,
        arrivals: arrivals.lock().clone(),
        departures,
    };
    let aware = wire_linkage_attack(
        &trace,
        &WireAuditConfig {
            batch_gap_us: spec.batch_gap_us,
            instance_blind: false,
        },
    );
    let blind = wire_linkage_attack(
        &trace,
        &WireAuditConfig {
            batch_gap_us: spec.batch_gap_us,
            instance_blind: true,
        },
    );

    ScenarioOutcome {
        spec: spec.clone(),
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        shed,
        duration_us,
        offered_rps: spec.shape.mean_rps(spec.requests),
        aware,
        blind,
        pressure,
    }
}

/// Worker threads draining the dispatch queue. Sized above any
/// scenario's concurrency needs: open-loop at ≤450 rps with ≤150 ms
/// end-to-end latency (two shuffle dwells plus the IA hop) keeps
/// outstanding calls under this, so the pool never closes the loop.
const WORKERS: usize = 48;

/// Holds one connection against `addr`, trickling garbage bytes slowly
/// — never completing a frame header — until told to stop.
fn slow_loris(addr: std::net::SocketAddr, stop: &AtomicBool) {
    use std::io::Write;
    let Ok(mut s) = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
        return;
    };
    let mut sent = 0u8;
    while !stop.load(Ordering::Acquire) {
        // One byte of never-valid header every 300 ms.
        if s.write_all(&[0xEEu8.wrapping_add(sent)]).is_err() {
            // The server dropped us (protocol error / idle policy) —
            // reconnect and keep pestering.
            match std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
                Ok(ns) => s = ns,
                Err(_) => return,
            }
        }
        sent = sent.wrapping_add(1);
        for _ in 0..30 {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
