//! `pprox-scenario`: topology-driven cluster scenarios and the wire-tap
//! traffic-analysis adversary.
//!
//! The other measurement crates exercise PProx either in-process or in
//! a simulator. This crate drives the *real* loopback deployment
//! ([`pprox_wire::LoopbackCluster`]) through scripted operational
//! scenarios and mounts the §6.2 network adversary against actual
//! socket traffic:
//!
//! * [`schedule`] — open-loop, arrival-rate-driven load shapes (steady,
//!   diurnal ramp, flash crowd) drawn from seeded Poisson processes; no
//!   wall-clock randomness reaches any assertion.
//! * [`tap`] — a recording frame proxy interposed on the UA→IA
//!   boundary: per-frame timing, direction, size class, and per-hop
//!   correlation id — exactly what an on-path observer gets — plus
//!   optional injected WAN latency.
//! * [`harness`] — boots a cluster, reroutes every UA uplink through
//!   taps, replays a schedule (with optional client churn, slow-loris
//!   floors, and admission-gate abuse), then scores the
//!   [`pprox_attack::wire_audit`] linkage estimator against the
//!   analytic `1/S` and `1/(S·I)` curves.
//! * [`scenarios`] — the named catalog, including the seeded
//!   shuffle-order ablation every audit run must *catch*.
//!
//! `pprox-bench`'s `scenario_report` binary runs the catalog and emits
//! `results/BENCH_scenarios.json`; `tests/scenarios.rs` pins the bounds
//! in CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;
pub mod scenarios;
pub mod schedule;
pub mod tap;

pub use harness::{run_scenario, test_seed, ScenarioOutcome, ScenarioSpec};
pub use schedule::{arrival_times_us, LoadShape};
pub use tap::{RecordingTap, TapClock, TapDirection, TapFrame};
