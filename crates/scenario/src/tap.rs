//! The adversary's vantage point: a recording TCP proxy on one layer
//! boundary.
//!
//! A [`RecordingTap`] sits between a UA instance and one IA backend
//! (the harness interposes one tap per UA×IA link via
//! [`LoopbackCluster::reroute_ua_uplink`]). It speaks the frame codec
//! just well enough to *delimit* frames — header parse, body skip — and
//! records what a §2.3 network observer actually gets from a PProx
//! deployment: per-frame **timing**, **direction**, **size class**, and
//! **per-hop correlation id**. Payloads are ciphertext and every frame
//! of a class has one length, so the recorded trace is exactly the §6.2
//! adversary's input, produced by real sockets rather than a simulator.
//!
//! The tap can also delay each forwarded frame by a fixed amount —
//! injected WAN latency between the layers, used by the `wan` scenario.
//!
//! [`LoopbackCluster::reroute_ua_uplink`]: pprox_wire::LoopbackCluster::reroute_ua_uplink

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use pprox_wire::frame::parse_header;
use pprox_wire::{PadClass, HEADER_LEN};

/// Which way a recorded frame was travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDirection {
    /// Client side → upstream server (UA egress toward the IA).
    ClientToServer,
    /// Upstream server → client side (IA responses).
    ServerToClient,
}

/// One frame observation: everything the codec leaks to an on-path
/// observer, and nothing more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapFrame {
    /// Observation instant on the shared scenario clock, µs.
    pub at_us: u64,
    /// Travel direction.
    pub dir: TapDirection,
    /// Padding class (one of three fixed on-wire sizes).
    pub class: PadClass,
    /// Per-hop correlation id from the header.
    pub corr: u64,
    /// Which tap connection carried the frame.
    pub conn: usize,
}

/// The clock observations are stamped with. The harness passes a closure
/// over the cluster's [`pprox_core::telemetry::Telemetry`] hub so tap
/// frames and ground-truth audit events share one time base.
pub type TapClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A live recording proxy for one UA→IA link.
pub struct RecordingTap {
    addr: SocketAddr,
    upstream: SocketAddr,
    frames: Arc<Mutex<Vec<TapFrame>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RecordingTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingTap")
            .field("addr", &self.addr)
            .field("upstream", &self.upstream)
            .field("frames", &self.frames.lock().len())
            .finish()
    }
}

impl RecordingTap {
    /// Spawns a tap listening on an ephemeral loopback port, forwarding
    /// to `upstream`, delaying each forwarded frame by `delay`, and
    /// stamping observations with `clock`.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn spawn(upstream: SocketAddr, delay: Duration, clock: TapClock) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let frames: Arc<Mutex<Vec<TapFrame>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(AtomicUsize::new(0));

        let acceptor = {
            let frames = frames.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
                            spawn_pumps(
                                client,
                                upstream,
                                delay,
                                conn,
                                frames.clone(),
                                stop.clone(),
                                clock.clone(),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(RecordingTap {
            addr,
            upstream,
            frames,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The tap's listening address (what the UA's uplink ring is
    /// rerouted to).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The real backend behind this tap.
    pub fn upstream(&self) -> SocketAddr {
        self.upstream
    }

    /// Snapshot of every observation so far, in time order.
    pub fn frames(&self) -> Vec<TapFrame> {
        let mut out = self.frames.lock().clone();
        out.sort_by_key(|f| f.at_us);
        out
    }

    /// Stops accepting and recording; pump threads notice within their
    /// read timeout and exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RecordingTap {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted connection: dial the upstream and pump both directions,
/// recording each frame before forwarding it.
#[allow(clippy::too_many_arguments)]
fn spawn_pumps(
    client: TcpStream,
    upstream: SocketAddr,
    delay: Duration,
    conn: usize,
    frames: Arc<Mutex<Vec<TapFrame>>>,
    stop: Arc<AtomicBool>,
    clock: TapClock,
) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        return; // client will see the closed socket and retry elsewhere
    };
    server.set_nodelay(true).ok();
    client.set_nodelay(true).ok();
    let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    for (rd, wr, dir) in [
        (client_rd, server, TapDirection::ClientToServer),
        (server_rd, client, TapDirection::ServerToClient),
    ] {
        let frames = frames.clone();
        let stop = stop.clone();
        let clock = clock.clone();
        std::thread::spawn(move || {
            pump(rd, wr, dir, delay, conn, &frames, &stop, &clock);
        });
    }
}

/// Reads whole frames from `rd`, records them, applies the WAN delay,
/// and forwards them to `wr` until EOF, a codec error, or shutdown.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut rd: TcpStream,
    mut wr: TcpStream,
    dir: TapDirection,
    delay: Duration,
    conn: usize,
    frames: &Mutex<Vec<TapFrame>>,
    stop: &AtomicBool,
    clock: &TapClock,
) {
    rd.set_read_timeout(Some(Duration::from_millis(50))).ok();
    let mut header = [0u8; HEADER_LEN];
    let mut body = vec![0u8; PadClass::Response.capacity()];
    loop {
        if !read_full(&mut rd, &mut header, stop) {
            return;
        }
        let Ok((class, body_len, corr)) = parse_header(&header) else {
            return; // not our protocol: drop the connection
        };
        if !read_full(&mut rd, &mut body[..body_len], stop) {
            return;
        }
        frames.lock().push(TapFrame {
            at_us: clock(),
            dir,
            class,
            corr,
            conn,
        });
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        if wr.write_all(&header).is_err() || wr.write_all(&body[..body_len]).is_err() {
            return;
        }
    }
}

/// Fills `buf` from `rd`, riding out read timeouts until shutdown.
/// Returns `false` on EOF, hard error, or shutdown.
fn read_full(rd: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut off = 0;
    while off < buf.len() {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        match rd.read(&mut buf[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprox_wire::Frame;

    /// A minimal frame-echo server: answers every request frame with a
    /// response frame carrying the same correlation id.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        let stop3 = stop2.clone();
                        std::thread::spawn(move || {
                            s.set_read_timeout(Some(Duration::from_millis(50))).ok();
                            let mut header = [0u8; HEADER_LEN];
                            let mut body = vec![0u8; PadClass::Response.capacity()];
                            loop {
                                if !read_full(&mut s, &mut header, &stop3) {
                                    return;
                                }
                                let Ok((_, body_len, corr)) = parse_header(&header) else {
                                    return;
                                };
                                if !read_full(&mut s, &mut body[..body_len], &stop3) {
                                    return;
                                }
                                let reply = Frame::new(PadClass::Response, corr, b"ok".to_vec())
                                    .unwrap()
                                    .encode()
                                    .unwrap();
                                if s.write_all(&reply).is_err() {
                                    return;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn tap_records_both_directions_and_forwards() {
        let (upstream, stop_echo) = echo_server();
        let t0 = std::time::Instant::now();
        let clock: TapClock = Arc::new(move || t0.elapsed().as_micros() as u64);
        let mut tap = RecordingTap::spawn(upstream, Duration::ZERO, clock).unwrap();

        let mut s = TcpStream::connect(tap.addr()).unwrap();
        for corr in 1..=3u64 {
            let req = Frame::new(PadClass::Request, corr, vec![7; 64])
                .unwrap()
                .encode()
                .unwrap();
            s.write_all(&req).unwrap();
            let mut header = [0u8; HEADER_LEN];
            s.read_exact(&mut header).unwrap();
            let (class, body_len, got_corr) = parse_header(&header).unwrap();
            assert_eq!(class, PadClass::Response);
            assert_eq!(got_corr, corr);
            let mut body = vec![0u8; body_len];
            s.read_exact(&mut body).unwrap();
        }
        drop(s);

        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let frames = tap.frames();
            let c2s = frames
                .iter()
                .filter(|f| f.dir == TapDirection::ClientToServer)
                .count();
            let s2c = frames
                .iter()
                .filter(|f| f.dir == TapDirection::ServerToClient)
                .count();
            if c2s == 3 && s2c == 3 {
                assert!(frames
                    .iter()
                    .all(|f| matches!(f.class, PadClass::Request | PadClass::Response)));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "tap recorded {c2s} c2s / {s2c} s2c frames"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        tap.shutdown();
        stop_echo.store(true, Ordering::Release);
    }
}
