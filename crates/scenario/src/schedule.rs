//! Open-loop arrival schedules.
//!
//! Scenario load is *arrival-rate driven*: request send instants are
//! drawn once, up front, from a seeded Poisson process whose rate varies
//! with the scenario's load shape. The dispatcher then replays the
//! schedule against the wall clock regardless of how fast the cluster
//! answers — the open-loop discipline that makes overload scenarios
//! (flash crowds, Busy-shedding) actually overload instead of
//! self-throttling. No assertion anywhere reads the wall clock; the
//! schedule is a pure function of `(shape, n, seed)`.

use pprox_crypto::rng::SecureRng;

/// How the offered rate evolves over a scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShape {
    /// Constant offered rate.
    Steady {
        /// Requests per second.
        rps: f64,
    },
    /// Sinusoidal day/night ramp between two rates, `cycles` full
    /// periods across the run.
    Diurnal {
        /// Trough rate.
        low_rps: f64,
        /// Peak rate.
        high_rps: f64,
        /// Full low→high→low periods over the run.
        cycles: u32,
    },
    /// Steady base rate with a rectangular spike.
    Flash {
        /// Rate outside the spike.
        base_rps: f64,
        /// Rate inside the spike.
        spike_rps: f64,
        /// Spike start, as a fraction of the request count.
        spike_start: f64,
        /// Spike width, as a fraction of the request count.
        spike_frac: f64,
    },
}

impl LoadShape {
    /// Offered rate when the `k`-th of `n` requests is being scheduled.
    fn rate_at(&self, k: usize, n: usize) -> f64 {
        let progress = k as f64 / n.max(1) as f64;
        match *self {
            LoadShape::Steady { rps } => rps,
            LoadShape::Diurnal {
                low_rps,
                high_rps,
                cycles,
            } => {
                // Starts and ends at the trough; peaks mid-cycle.
                let phase = std::f64::consts::TAU * cycles as f64 * progress;
                low_rps + (high_rps - low_rps) * 0.5 * (1.0 - phase.cos())
            }
            LoadShape::Flash {
                base_rps,
                spike_rps,
                spike_start,
                spike_frac,
            } => {
                if progress >= spike_start && progress < spike_start + spike_frac {
                    spike_rps
                } else {
                    base_rps
                }
            }
        }
    }

    /// Mean offered rate over a run of `n` requests (for reports).
    pub fn mean_rps(&self, n: usize) -> f64 {
        let total: f64 = (0..n.max(1))
            .map(|k| 1.0 / self.rate_at(k, n).max(1e-9))
            .sum();
        n.max(1) as f64 / total
    }
}

/// Draws `n` arrival instants (µs from scenario start, non-decreasing)
/// from a seeded Poisson process shaped by `shape`. Deterministic in
/// `(shape, n, seed)`.
pub fn arrival_times_us(shape: &LoadShape, n: usize, seed: u64) -> Vec<u64> {
    // Domain-separated from the cluster and client seeds derived from
    // the same scenario seed.
    let mut rng = SecureRng::from_seed(seed ^ SCHEDULE_DOMAIN);
    let mut at = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let rate = shape.rate_at(k, n).max(1e-9);
        // Exponential inter-arrival gap; clamp the uniform away from 1.0
        // so ln() stays finite.
        let u = rng.unit_f64().min(1.0 - 1e-12);
        let gap_s = -(1.0 - u).ln() / rate;
        at += gap_s * 1e6;
        out.push(at as u64);
    }
    out
}

const SCHEDULE_DOMAIN: u64 = 0x5ced_01e5_eed0_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_monotone() {
        let shape = LoadShape::Steady { rps: 200.0 };
        let a = arrival_times_us(&shape, 100, 7);
        let b = arrival_times_us(&shape, 100, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = arrival_times_us(&shape, 100, 8);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn steady_rate_is_roughly_honored() {
        let shape = LoadShape::Steady { rps: 250.0 };
        let times = arrival_times_us(&shape, 2_000, 42);
        let span_s = *times.last().unwrap() as f64 / 1e6;
        let measured = 2_000.0 / span_s;
        assert!(
            (measured - 250.0).abs() < 25.0,
            "measured {measured} rps vs 250 offered"
        );
    }

    #[test]
    fn flash_spike_compresses_gaps() {
        let shape = LoadShape::Flash {
            base_rps: 100.0,
            spike_rps: 1_000.0,
            spike_start: 0.4,
            spike_frac: 0.2,
        };
        let times = arrival_times_us(&shape, 1_000, 3);
        let gap = |lo: usize, hi: usize| (times[hi] - times[lo]) as f64 / (hi - lo) as f64;
        let base_gap = gap(0, 300);
        let spike_gap = gap(420, 580);
        assert!(
            spike_gap < base_gap / 4.0,
            "spike gaps {spike_gap} vs base {base_gap}"
        );
    }

    #[test]
    fn diurnal_mean_sits_between_bounds() {
        let shape = LoadShape::Diurnal {
            low_rps: 100.0,
            high_rps: 300.0,
            cycles: 2,
        };
        let mean = shape.mean_rps(1_000);
        assert!(mean > 100.0 && mean < 300.0, "{mean}");
    }
}
