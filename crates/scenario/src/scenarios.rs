//! The scenario catalog.
//!
//! Eight named scenarios cover the deployment conditions the paper's
//! §6.2 bounds must survive: steady state, diurnal ramps, flash crowds,
//! client churn, WAN latency between layers, slow-loris floors,
//! admission-gate abuse — plus the seeded shuffle ablation the audit
//! must *catch*. Rates are tuned so `S / per_instance_rate` stays well
//! under the flush timeout: buffers fill before the timer fires, which
//! is the regime the `1/S` analysis assumes (§6.3 treats the starved
//! regime separately; `pprox-attack::lowtraffic` measures it).
//!
//! The ablation scenario runs a single forwarder on a single instance:
//! concurrent forwarders would re-randomize wire order on their own and
//! mask the suppressed permutation, turning a real leak into a pass.

use crate::harness::ScenarioSpec;
use crate::schedule::LoadShape;

/// Baseline shared by the catalog; scenarios override what they test.
fn base(name: &'static str) -> ScenarioSpec {
    ScenarioSpec {
        name,
        shape: LoadShape::Steady { rps: 200.0 },
        requests: 320,
        shuffle_size: 4,
        shuffle_timeout_us: 80_000,
        ua_instances: 2,
        ia_instances: 2,
        forwarders: 2,
        wan_delay_us: 0,
        churn_every: None,
        slow_loris_conns: 0,
        max_inflight: None,
        order_ablation: false,
        violation_expected: false,
        batch_gap_us: 8_000,
    }
}

/// The full catalog, in report order.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 220.0 },
            shuffle_timeout_us: 60_000,
            ..base("steady")
        },
        ScenarioSpec {
            shape: LoadShape::Diurnal {
                low_rps: 120.0,
                high_rps: 280.0,
                cycles: 2,
            },
            requests: 360,
            ..base("diurnal")
        },
        ScenarioSpec {
            shape: LoadShape::Flash {
                base_rps: 140.0,
                spike_rps: 420.0,
                spike_start: 0.4,
                spike_frac: 0.25,
            },
            requests: 360,
            ..base("flash_crowd")
        },
        ScenarioSpec {
            churn_every: Some(12),
            ..base("churn")
        },
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 120.0 },
            requests: 240,
            wan_delay_us: 5_000,
            shuffle_timeout_us: 100_000,
            // WAN serialization spreads a flush's frames ~5 ms apart on
            // a shared connection; the gap must clear that spread while
            // staying far under the ~67 ms inter-flush interval.
            batch_gap_us: 16_000,
            ..base("wan")
        },
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 180.0 },
            requests: 280,
            slow_loris_conns: 16,
            ..base("slow_loris")
        },
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 320.0 },
            requests: 360,
            shuffle_timeout_us: 60_000,
            max_inflight: Some(8),
            ..base("busy_shed")
        },
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 160.0 },
            requests: 240,
            shuffle_timeout_us: 60_000,
            ua_instances: 1,
            ia_instances: 1,
            forwarders: 1,
            order_ablation: true,
            violation_expected: true,
            ..base("ablation_unshuffled")
        },
    ]
}

/// A short two-scenario set for CI smoke runs: one normal scenario that
/// must meet its bounds and one ablation that must be caught.
pub fn smoke() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            requests: 144,
            shuffle_timeout_us: 60_000,
            ..base("steady_smoke")
        },
        ScenarioSpec {
            shape: LoadShape::Steady { rps: 160.0 },
            requests: 96,
            shuffle_timeout_us: 60_000,
            ua_instances: 1,
            ia_instances: 1,
            forwarders: 1,
            order_ablation: true,
            violation_expected: true,
            ..base("ablation_smoke")
        },
    ]
}

/// Looks a scenario up by name across both catalogs.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().chain(smoke()).find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        let specs = all();
        assert!(specs.len() >= 5, "report needs at least five scenarios");
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate scenario names");
        for s in specs.iter().chain(&smoke()) {
            assert!(s.requests > 0 && s.shuffle_size > 1);
            assert!(s.violation_expected == s.order_ablation);
            // Buffers must fill before the flush timer fires: the mean
            // per-instance inter-flush interval S/rate stays under the
            // timeout with margin.
            let per_instance = s.shape.mean_rps(s.requests) / s.ua_instances as f64;
            let fill_us = s.shuffle_size as f64 / per_instance * 1e6;
            assert!(
                fill_us < s.shuffle_timeout_us as f64 * 0.9,
                "{}: buffers would starve (fill {:.0}µs vs timeout {}µs)",
                s.name,
                fill_us,
                s.shuffle_timeout_us
            );
            // And the burst-clustering gap must separate flushes.
            assert!(
                (s.batch_gap_us as f64) < fill_us,
                "{}: batch gap would merge consecutive flushes",
                s.name
            );
        }
        assert!(by_name("steady").is_some());
        assert!(by_name("ablation_smoke").is_some());
        assert!(by_name("nope").is_none());
    }
}
