//! Property-based tests for workload generation and statistics.

use pprox_workload::dataset::Dataset;
use pprox_workload::injector::{ArrivalProcess, Schedule};
use pprox_workload::stats::Candlestick;
use pprox_workload::zipf::Zipf;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Candlestick invariants: ordering of the five summary values, mean
    /// within [min, max], count correct.
    #[test]
    fn candlestick_invariants(samples in proptest::collection::vec(0.0f64..10_000.0, 1..300)) {
        let c = Candlestick::from_samples(&samples).unwrap();
        // Quartiles are ordered; whiskers bracket the retained data. Note
        // whisker_low may exceed the *interpolated* q1 when no sample
        // falls between the fence and q1 (the standard boxplot artifact),
        // so the whisker/quartile comparison is deliberately loose.
        prop_assert!(c.q1 <= c.median);
        prop_assert!(c.median <= c.q3);
        prop_assert!(c.whisker_low <= c.whisker_high);
        prop_assert!(c.whisker_high <= c.max);
        let fence = c.q1 - 1.5 * (c.q3 - c.q1);
        prop_assert!(c.whisker_low >= fence - 1e-9);
        prop_assert_eq!(c.count, samples.len());
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(c.mean >= min - 1e-9 && c.mean <= c.max + 1e-9);
        prop_assert!(c.whisker_low >= min - 1e-9);
    }

    /// Candlesticks are permutation-invariant.
    #[test]
    fn candlestick_order_independent(mut samples in proptest::collection::vec(0.0f64..100.0, 2..100)) {
        let a = Candlestick::from_samples(&samples).unwrap();
        samples.reverse();
        let b = Candlestick::from_samples(&samples).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Zipf pmf is a probability distribution and monotone over ranks.
    #[test]
    fn zipf_pmf_is_valid(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s, 0);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k - 1) >= z.pmf(k) - 1e-12);
        }
    }

    /// Schedules hit the requested request count and are sorted.
    #[test]
    fn schedules_are_well_formed(
        rps in 1.0f64..500.0,
        duration in 0.5f64..30.0,
        poisson in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let process = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Uniform };
        let sched = Schedule::new(rps, duration, process, seed);
        prop_assert_eq!(sched.len(), (rps * duration).round() as usize);
        for w in sched.arrivals_us.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Datasets have exactly the requested rating count with unique pairs
    /// and in-range ids.
    #[test]
    fn datasets_are_consistent(
        users in 2usize..40,
        items in 2usize..60,
        seed in any::<u64>(),
    ) {
        let ratings = (users * items / 4).max(1);
        let d = Dataset::generate(users, items, ratings, seed);
        prop_assert_eq!(d.ratings.len(), ratings);
        let mut pairs = HashSet::new();
        for r in &d.ratings {
            prop_assert!((r.user as usize) < users);
            prop_assert!((r.item as usize) < items);
            prop_assert!(pairs.insert((r.user, r.item)));
            prop_assert!((0.5..=5.0).contains(&r.rating));
        }
    }

    /// Trimming bounds: a real window exists iff the trim leaves room;
    /// otherwise the measurement window is empty.
    #[test]
    fn trim_bounds_are_sane(duration in 1.0f64..600.0, trim in 0.0f64..100.0) {
        let sched = Schedule::new(10.0, duration, ArrivalProcess::Uniform, 0);
        let (lo, hi) = sched.trim_bounds(trim);
        prop_assert!(hi <= (duration * 1e6) as u64);
        if 2.0 * trim < duration {
            prop_assert!(lo < hi);
            let mid = ((duration / 2.0) * 1e6) as u64;
            prop_assert!(sched.in_measurement_window(mid, trim));
        } else {
            // Over-trimmed runs keep no samples at all.
            for probe in [0u64, (duration * 5e5) as u64, (duration * 1e6) as u64] {
                prop_assert!(!sched.in_measurement_window(probe, trim));
            }
        }
    }
}
