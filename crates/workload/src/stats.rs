//! Latency statistics: the paper's candlestick summaries.
//!
//! §8 (footnote 7): "Each such distribution is represented as a candlestick
//! chart: the box boundaries represent the 25th and 75th percentiles … The
//! middle line in each box represent the median. The whiskers extend from
//! the end of the box to the most distant point whose value lie within 1.5
//! times the IQR starting from the box boundary." [`Candlestick`] computes
//! exactly that summary; the figure harnesses print one per (configuration,
//! RPS) cell.

/// Accumulates latency samples (milliseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency in milliseconds.
    pub fn record(&mut self, millis: f64) {
        debug_assert!(millis.is_finite() && millis >= 0.0);
        self.samples.push(millis);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merges another recorder's samples (aggregating experiment runs, as
    /// the paper aggregates 6 repetitions per configuration).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Candlestick summary of the distribution.
    ///
    /// Returns `None` when empty.
    pub fn candlestick(&self) -> Option<Candlestick> {
        Candlestick::from_samples(&self.samples)
    }
}

/// The five-value candlestick summary used throughout the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candlestick {
    /// Sample count.
    pub count: usize,
    /// Lower whisker: most distant sample within 1.5×IQR below Q1.
    pub whisker_low: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Upper whisker: most distant sample within 1.5×IQR above Q3.
    pub whisker_high: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum sample (beyond the whisker when outliers exist).
    pub max: f64,
}

/// Linear-interpolation percentile over a sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl Candlestick {
    /// Computes the summary from unsorted samples; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Candlestick> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let q1 = percentile_sorted(&sorted, 25.0);
        let median = percentile_sorted(&sorted, 50.0);
        let q3 = percentile_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let low_fence = q1 - 1.5 * iqr;
        let high_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&v| v >= low_fence)
            .unwrap_or(sorted[0]);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= high_fence)
            .unwrap_or(*sorted.last().expect("nonempty"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Candlestick {
            count: sorted.len(),
            whisker_low,
            q1,
            median,
            q3,
            whisker_high,
            mean,
            max: *sorted.last().expect("nonempty"),
        })
    }

    /// One-line rendering used by the figure harnesses, e.g.
    /// `n=1200 lo=1.2 q1=2.0 med=2.4 q3=3.1 hi=5.0 (mean 2.6, max 9.8)`.
    pub fn render(&self) -> String {
        format!(
            "n={} lo={:.1} q1={:.1} med={:.1} q3={:.1} hi={:.1} (mean {:.1}, max {:.1})",
            self.count,
            self.whisker_low,
            self.q1,
            self.median,
            self.q3,
            self.whisker_high,
            self.mean,
            self.max
        )
    }
}

impl std::fmt::Display for Candlestick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(LatencyRecorder::new().candlestick().is_none());
    }

    #[test]
    fn single_sample() {
        let c = Candlestick::from_samples(&[5.0]).unwrap();
        assert_eq!(c.median, 5.0);
        assert_eq!(c.q1, 5.0);
        assert_eq!(c.q3, 5.0);
        assert_eq!(c.whisker_low, 5.0);
        assert_eq!(c.whisker_high, 5.0);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn quartiles_of_known_distribution() {
        // 0..=100 → q1=25, median=50, q3=75.
        let samples: Vec<f64> = (0..=100).map(|v| v as f64).collect();
        let c = Candlestick::from_samples(&samples).unwrap();
        assert_eq!(c.q1, 25.0);
        assert_eq!(c.median, 50.0);
        assert_eq!(c.q3, 75.0);
        assert_eq!(c.whisker_low, 0.0);
        assert_eq!(c.whisker_high, 100.0);
        assert_eq!(c.mean, 50.0);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        // Tight cluster plus one far outlier.
        let mut samples: Vec<f64> = (0..100).map(|v| 10.0 + (v % 10) as f64).collect();
        samples.push(1_000.0);
        let c = Candlestick::from_samples(&samples).unwrap();
        assert!(c.whisker_high < 100.0, "whisker {}", c.whisker_high);
        assert_eq!(c.max, 1_000.0);
    }

    #[test]
    fn unsorted_input_ok() {
        let a = Candlestick::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        let b = Candlestick::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.median, 2.0);
    }

    #[test]
    fn merge_aggregates_runs() {
        let mut a = LatencyRecorder::new();
        a.record(1.0);
        let mut b = LatencyRecorder::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.candlestick().unwrap().median, 2.0);
    }

    #[test]
    fn render_is_compact() {
        let c = Candlestick::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        let s = c.render();
        assert!(s.starts_with("n=3 "));
        assert!(s.contains("med=2.0"));
    }
}
