//! Zipf-distributed sampling.
//!
//! Item popularity and user activity in recommendation workloads are
//! heavy-tailed; the MovieLens-like synthetic trace draws both from Zipf
//! distributions (the standard model for such skew).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf(`n`, `s`) sampler over ranks `0..n` using a precomputed CDF.
///
/// Rank 0 is the most popular element.
///
/// # Examples
///
/// ```
/// use pprox_workload::zipf::Zipf;
///
/// let mut z = Zipf::new(100, 1.0, 42);
/// let first = z.sample();
/// assert!(first < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the support has a single element.
    pub fn is_empty(&self) -> bool {
        false // guaranteed non-empty by the constructor
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let mut z = Zipf::new(50, 1.2, 1);
        for _ in 0..1000 {
            assert!(z.sample() < 50);
        }
    }

    #[test]
    fn rank_zero_most_popular() {
        let mut z = Zipf::new(100, 1.0, 2);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99]);
        // Head mass roughly matches pmf: p(0) = 1/H_100 ≈ 0.193
        let frac = counts[0] as f64 / 20_000.0;
        assert!((frac - 0.193).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let mut z = Zipf::new(10, 0.0, 3);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(20, 1.5, 4);
        let total: f64 = (0..20).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(99), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Zipf::new(100, 1.0, 7);
        let mut b = Zipf::new(100, 1.0, 7);
        for _ in 0..20 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0, 0);
    }
}
