//! Diurnal load curves.
//!
//! Web traffic follows a day/night rhythm; the paper's §6.3 "at night
//! time" caveat and §5's elastic-scaling requirement are both about this
//! shape. [`DiurnalCurve`] produces a smooth, reproducible 24-hour load
//! profile for the autoscaling and low-traffic experiments.

use std::f64::consts::TAU;

/// A smooth 24-hour request-rate profile.
///
/// The shape is a raised cosine between `night_rps` and `peak_rps`,
/// peaking at `peak_hour` — the classic single-peak diurnal curve of a
/// consumer-facing service.
///
/// # Examples
///
/// ```
/// use pprox_workload::diurnal::DiurnalCurve;
///
/// let curve = DiurnalCurve::new(20.0, 900.0, 20.5);
/// assert!(curve.rps_at(20.5) > curve.rps_at(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Overnight floor, requests/s.
    pub night_rps: f64,
    /// Peak rate, requests/s.
    pub peak_rps: f64,
    /// Hour of day (0–24) at which the peak occurs.
    pub peak_hour: f64,
}

impl DiurnalCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < night_rps <= peak_rps` and
    /// `0 <= peak_hour < 24`.
    pub fn new(night_rps: f64, peak_rps: f64, peak_hour: f64) -> Self {
        assert!(night_rps > 0.0 && night_rps <= peak_rps);
        assert!((0.0..24.0).contains(&peak_hour));
        DiurnalCurve {
            night_rps,
            peak_rps,
            peak_hour,
        }
    }

    /// Request rate at hour-of-day `hour` (wraps modulo 24).
    pub fn rps_at(&self, hour: f64) -> f64 {
        let phase = (hour - self.peak_hour) / 24.0 * TAU;
        // Raised cosine: 1 at the peak, 0 twelve hours away.
        let weight = (1.0 + phase.cos()) / 2.0;
        self.night_rps + (self.peak_rps - self.night_rps) * weight
    }

    /// One sample per hour for `hours` consecutive hours starting at 0.
    pub fn hourly(&self, hours: usize) -> Vec<(f64, f64)> {
        (0..hours)
            .map(|h| {
                let hour = h as f64 % 24.0;
                (h as f64, self.rps_at(hour))
            })
            .collect()
    }

    /// Mean rate over a full day.
    pub fn daily_mean(&self) -> f64 {
        (self.night_rps + self.peak_rps) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> DiurnalCurve {
        DiurnalCurve::new(10.0, 1_000.0, 20.0)
    }

    #[test]
    fn peak_is_at_peak_hour() {
        let c = curve();
        let peak = c.rps_at(20.0);
        for h in 0..24 {
            assert!(c.rps_at(h as f64) <= peak + 1e-9);
        }
        assert!((peak - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn trough_is_opposite_the_peak() {
        let c = curve();
        let trough = c.rps_at(8.0); // 12 hours from the 20:00 peak
        assert!((trough - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wraps_around_midnight() {
        let c = curve();
        assert!((c.rps_at(0.0) - c.rps_at(24.0)).abs() < 1e-9);
        assert!((c.rps_at(-4.0) - c.rps_at(20.0)).abs() < 1e-9);
    }

    #[test]
    fn always_positive_and_bounded() {
        let c = curve();
        for i in 0..240 {
            let rps = c.rps_at(i as f64 / 10.0);
            assert!(rps >= c.night_rps - 1e-9);
            assert!(rps <= c.peak_rps + 1e-9);
        }
    }

    #[test]
    fn hourly_covers_requested_span() {
        let c = curve();
        let samples = c.hourly(48);
        assert_eq!(samples.len(), 48);
        // Periodic: hour 3 equals hour 27.
        assert!((samples[3].1 - samples[27].1).abs() < 1e-9);
    }

    #[test]
    fn daily_mean_is_midpoint() {
        assert!((curve().daily_mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_params_panic() {
        let _ = DiurnalCurve::new(100.0, 10.0, 5.0);
    }
}
