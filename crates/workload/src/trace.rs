//! Request traces: the two-phase experiment protocol of §8.
//!
//! "In all of our experiments, we proceed in two phases: We inject feedback
//! for one minute and trigger the training phase of UR … in a first phase,
//! and collect recommendations for a duration of 5 minutes in a second
//! phase." A [`RequestTrace`] materializes the request sequence for either
//! phase from a [`Dataset`].

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request of the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `post(u, i[, p])`
    Post {
        /// User id string.
        user: String,
        /// Item id string.
        item: String,
        /// Optional rating payload.
        payload: Option<f64>,
    },
    /// `get(u)`
    Get {
        /// User id string.
        user: String,
    },
}

impl Request {
    /// The user the request belongs to.
    pub fn user(&self) -> &str {
        match self {
            Request::Post { user, .. } | Request::Get { user } => user,
        }
    }

    /// `true` for `get` requests.
    pub fn is_get(&self) -> bool {
        matches!(self, Request::Get { .. })
    }
}

/// A sequence of requests for one experiment phase.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    /// Requests in issue order.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Phase-1 trace: the first `n` feedback insertions of the dataset
    /// (`n = None` takes all).
    pub fn feedback_phase(dataset: &Dataset, n: Option<usize>) -> Self {
        let take = n
            .unwrap_or(dataset.ratings.len())
            .min(dataset.ratings.len());
        let requests = dataset.ratings[..take]
            .iter()
            .map(|r| Request::Post {
                user: Dataset::user_id(r.user),
                item: Dataset::item_id(r.item),
                payload: Some(r.rating),
            })
            .collect();
        RequestTrace { requests }
    }

    /// Phase-2 trace: `n` `get` requests from users drawn uniformly among
    /// users that appear in the dataset (they have history, so queries hit
    /// the model — §8 reports `get` as the costly, measured operation).
    pub fn query_phase(dataset: &Dataset, n: usize, seed: u64) -> Self {
        let mut users: Vec<u32> = dataset.ratings.iter().map(|r| r.user).collect();
        users.sort_unstable();
        users.dedup();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = (0..n)
            .map(|_| Request::Get {
                user: Dataset::user_id(users[rng.gen_range(0..users.len())]),
            })
            .collect();
        RequestTrace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Fraction of `get` requests.
    pub fn get_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|r| r.is_get()).count() as f64 / self.requests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::generate(30, 50, 300, 5)
    }

    #[test]
    fn feedback_phase_mirrors_dataset() {
        let d = small();
        let t = RequestTrace::feedback_phase(&d, None);
        assert_eq!(t.len(), 300);
        assert_eq!(t.get_fraction(), 0.0);
        match &t.requests[0] {
            Request::Post {
                user,
                item,
                payload,
            } => {
                assert_eq!(user, &Dataset::user_id(d.ratings[0].user));
                assert_eq!(item, &Dataset::item_id(d.ratings[0].item));
                assert_eq!(*payload, Some(d.ratings[0].rating));
            }
            _ => panic!("expected post"),
        }
    }

    #[test]
    fn feedback_phase_truncates() {
        let d = small();
        assert_eq!(RequestTrace::feedback_phase(&d, Some(10)).len(), 10);
        assert_eq!(RequestTrace::feedback_phase(&d, Some(10_000)).len(), 300);
    }

    #[test]
    fn query_phase_only_known_users() {
        let d = small();
        let t = RequestTrace::query_phase(&d, 100, 1);
        assert_eq!(t.len(), 100);
        assert_eq!(t.get_fraction(), 1.0);
        let known: std::collections::HashSet<String> =
            d.ratings.iter().map(|r| Dataset::user_id(r.user)).collect();
        for r in &t.requests {
            assert!(known.contains(r.user()));
        }
    }

    #[test]
    fn query_phase_deterministic() {
        let d = small();
        let a = RequestTrace::query_phase(&d, 50, 2);
        let b = RequestTrace::query_phase(&d, 50, 2);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn request_accessors() {
        let p = Request::Post {
            user: "u".into(),
            item: "i".into(),
            payload: None,
        };
        let g = Request::Get { user: "u".into() };
        assert_eq!(p.user(), "u");
        assert!(!p.is_get());
        assert!(g.is_get());
    }
}
