//! Open-loop load injection schedules.
//!
//! The paper's injector (node.js `loadtest`) issues requests at a target
//! rate regardless of response progress — an *open-loop* design, which is
//! what makes saturation visible as unbounded latency growth. This module
//! generates such arrival schedules in virtual-time microseconds and
//! implements the paper's measurement protocol: "We trim the first and
//! last 15 seconds of each measurement period to avoid perturbations
//! linked with the warm-up and slow-down of injection" (§8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival-process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic spacing (1/rate), as `loadtest` paces requests.
    Uniform,
    /// Poisson arrivals (exponential gaps) for open-system realism.
    Poisson,
}

/// An open-loop arrival schedule at a fixed rate.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Arrival offsets from the start of injection, in microseconds,
    /// ascending.
    pub arrivals_us: Vec<u64>,
    /// Target rate (requests per second).
    pub rps: f64,
    /// Injection span in seconds.
    pub duration_secs: f64,
}

impl Schedule {
    /// Builds a schedule of `rps × duration_secs` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `rps` or `duration_secs` is non-positive.
    pub fn new(rps: f64, duration_secs: f64, process: ArrivalProcess, seed: u64) -> Self {
        assert!(rps > 0.0 && duration_secs > 0.0);
        let n = (rps * duration_secs).round() as usize;
        let mut arrivals_us = Vec::with_capacity(n);
        match process {
            ArrivalProcess::Uniform => {
                let gap = 1e6 / rps;
                for i in 0..n {
                    arrivals_us.push((i as f64 * gap).round() as u64);
                }
            }
            ArrivalProcess::Poisson => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                for _ in 0..n {
                    let u: f64 = rng.gen();
                    t += -(1e6 / rps) * (1.0 - u).ln();
                    arrivals_us.push(t.round() as u64);
                }
            }
        }
        Schedule {
            arrivals_us,
            rps,
            duration_secs,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals_us.len()
    }

    /// `true` when the schedule holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals_us.is_empty()
    }

    /// The paper's trim window: samples whose *arrival* falls within the
    /// first or last `trim_secs` of the injection period are discarded.
    ///
    /// Returns the inclusive `[lo, hi]` bounds in microseconds.
    pub fn trim_bounds(&self, trim_secs: f64) -> (u64, u64) {
        let lo = (trim_secs * 1e6) as u64;
        let span = (self.duration_secs * 1e6) as u64;
        let hi = span.saturating_sub((trim_secs * 1e6) as u64);
        (lo, hi)
    }

    /// `true` if an arrival at `offset_us` survives trimming.
    pub fn in_measurement_window(&self, offset_us: u64, trim_secs: f64) -> bool {
        let (lo, hi) = self.trim_bounds(trim_secs);
        offset_us >= lo && offset_us <= hi
    }
}

/// Default trim applied to every measurement (15 s in the paper; harnesses
/// scale it with their shortened runs).
pub const PAPER_TRIM_SECS: f64 = 15.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_has_exact_spacing() {
        let s = Schedule::new(100.0, 2.0, ArrivalProcess::Uniform, 0);
        assert_eq!(s.len(), 200);
        assert_eq!(s.arrivals_us[0], 0);
        assert_eq!(s.arrivals_us[1], 10_000);
        assert_eq!(s.arrivals_us[199], 1_990_000);
    }

    #[test]
    fn poisson_schedule_is_ascending_with_right_count() {
        let s = Schedule::new(250.0, 4.0, ArrivalProcess::Poisson, 1);
        assert_eq!(s.len(), 1000);
        for w in s.arrivals_us.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Mean gap should be close to 4ms.
        let span = *s.arrivals_us.last().unwrap() as f64;
        let mean_gap = span / (s.len() - 1) as f64;
        assert!((mean_gap - 4_000.0).abs() < 500.0, "gap {mean_gap}");
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let a = Schedule::new(50.0, 1.0, ArrivalProcess::Poisson, 9);
        let b = Schedule::new(50.0, 1.0, ArrivalProcess::Poisson, 9);
        assert_eq!(a.arrivals_us, b.arrivals_us);
    }

    #[test]
    fn trimming_window() {
        let s = Schedule::new(10.0, 60.0, ArrivalProcess::Uniform, 0);
        let (lo, hi) = s.trim_bounds(15.0);
        assert_eq!(lo, 15_000_000);
        assert_eq!(hi, 45_000_000);
        assert!(!s.in_measurement_window(0, 15.0));
        assert!(s.in_measurement_window(30_000_000, 15.0));
        assert!(!s.in_measurement_window(59_000_000, 15.0));
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = Schedule::new(0.0, 1.0, ArrivalProcess::Uniform, 0);
    }
}
