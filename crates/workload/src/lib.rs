//! Workload generation, load injection and latency statistics.
//!
//! Reproduces the paper's measurement methodology (§7.1, §8):
//!
//! * [`dataset`] — a synthetic MovieLens-like trace matching the `ml-20m`
//!   2014–2015 slice dimensions (7,288 users / 17,141 movies / 562,888
//!   ratings) with Zipf popularity, since the original dataset is not
//!   bundled.
//! * [`zipf`] — the heavy-tail sampler behind it.
//! * [`trace`] — the two-phase protocol: feedback injection + training,
//!   then a query phase.
//! * [`injector`] — open-loop arrival schedules at a target RPS (the
//!   node.js `loadtest` role) with the paper's 15-second trim rule.
//! * [`stats`] — candlestick latency summaries exactly as the paper's
//!   figures draw them (quartiles + 1.5×IQR whiskers).
//! * [`diurnal`] — day/night load curves for the §5 elastic-scaling and
//!   §6.3 night-time experiments.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dataset;
pub mod diurnal;
pub mod injector;
pub mod stats;
pub mod trace;
pub mod zipf;

pub use dataset::Dataset;
pub use injector::{ArrivalProcess, Schedule};
pub use stats::{Candlestick, LatencyRecorder};
pub use trace::{Request, RequestTrace};
