//! Synthetic MovieLens-like trace.
//!
//! The paper drives its evaluation with the MovieLens `ml-20m` dataset,
//! restricted to the years 2014–2015: **562,888 ratings for 17,141
//! different movies made by 7,288 different users** (§8). The dataset
//! itself is not redistributable inside this reproduction, so
//! [`Dataset::movielens_like`] synthesizes a trace with the same user,
//! item and rating counts and heavy-tailed (Zipf) popularity/activity —
//! the properties that matter for model training and load generation.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Users in the paper's 2014–2015 MovieLens slice.
pub const PAPER_USERS: usize = 7_288;

/// Movies in the paper's slice.
pub const PAPER_ITEMS: usize = 17_141;

/// Ratings in the paper's slice.
pub const PAPER_RATINGS: usize = 562_888;

/// One feedback record of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Rating {
    /// User index in `0..num_users` (format with [`Dataset::user_id`]).
    pub user: u32,
    /// Item index in `0..num_items`.
    pub item: u32,
    /// Star rating in 0.5 steps, 0.5–5.0 (MovieLens scale).
    pub rating: f64,
}

/// A synthetic interaction dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Number of distinct users.
    pub num_users: usize,
    /// Number of distinct items.
    pub num_items: usize,
    /// All ratings, in generation order.
    pub ratings: Vec<Rating>,
}

impl Dataset {
    /// Generates a dataset with explicit dimensions.
    ///
    /// Item popularity is Zipf(1.0); user activity is Zipf(0.8) (milder —
    /// MovieLens raters are less skewed than items); `(user, item)` pairs
    /// are unique as in MovieLens.
    ///
    /// # Panics
    ///
    /// Panics when `ratings > users * items` (cannot place that many
    /// unique pairs) or any dimension is zero.
    pub fn generate(num_users: usize, num_items: usize, num_ratings: usize, seed: u64) -> Self {
        assert!(num_users > 0 && num_items > 0 && num_ratings > 0);
        assert!(
            num_ratings <= num_users * num_items,
            "more ratings than unique (user, item) pairs"
        );
        let mut item_popularity = Zipf::new(num_items, 1.0, seed ^ 0x1746);
        let mut user_activity = Zipf::new(num_users, 0.8, seed ^ 0x9e37);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(num_ratings * 2);
        let mut ratings = Vec::with_capacity(num_ratings);
        while ratings.len() < num_ratings {
            let user = user_activity.sample() as u32;
            let item = item_popularity.sample() as u32;
            if !seen.insert((user, item)) {
                continue;
            }
            // Half-star ratings 0.5..=5.0, biased high like MovieLens.
            let star = 1.0 + 4.0 * rng.gen::<f64>().powf(0.6);
            let rating = (star * 2.0).round() / 2.0;
            ratings.push(Rating {
                user,
                item,
                rating: rating.clamp(0.5, 5.0),
            });
        }
        Dataset {
            num_users,
            num_items,
            ratings,
        }
    }

    /// The full paper-scale trace (562,888 ratings). Takes a few seconds;
    /// intended for `--release` benchmark harnesses.
    pub fn movielens_like(seed: u64) -> Self {
        Self::generate(PAPER_USERS, PAPER_ITEMS, PAPER_RATINGS, seed)
    }

    /// A proportionally scaled-down trace (~1/64 of the paper's size) for
    /// tests and examples.
    pub fn small(seed: u64) -> Self {
        Self::generate(PAPER_USERS / 64, PAPER_ITEMS / 64, PAPER_RATINGS / 64, seed)
    }

    /// Stable string id for a user index (`"u0042"` style).
    pub fn user_id(user: u32) -> String {
        format!("u{user:05}")
    }

    /// Stable string id for an item index.
    pub fn item_id(item: u32) -> String {
        format!("m{item:05}")
    }

    /// `(user_id, item_id)` pairs for feeding a recommender.
    pub fn interactions(&self) -> impl Iterator<Item = (String, String)> + '_ {
        self.ratings
            .iter()
            .map(|r| (Self::user_id(r.user), Self::item_id(r.item)))
    }

    /// Number of distinct users that actually appear in the trace.
    pub fn active_users(&self) -> usize {
        self.ratings
            .iter()
            .map(|r| r.user)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Number of distinct items that actually appear.
    pub fn active_items(&self) -> usize {
        self.ratings
            .iter()
            .map(|r| r.item)
            .collect::<HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_rating_count() {
        let d = Dataset::generate(50, 100, 500, 1);
        assert_eq!(d.ratings.len(), 500);
    }

    #[test]
    fn pairs_are_unique() {
        let d = Dataset::generate(30, 40, 600, 2);
        let mut seen = HashSet::new();
        for r in &d.ratings {
            assert!(seen.insert((r.user, r.item)), "duplicate pair");
        }
    }

    #[test]
    fn ratings_on_movielens_scale() {
        let d = Dataset::generate(20, 30, 200, 3);
        for r in &d.ratings {
            assert!((0.5..=5.0).contains(&r.rating));
            let doubled = r.rating * 2.0;
            assert!((doubled - doubled.round()).abs() < 1e-9, "half-star steps");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = Dataset::generate(100, 200, 3000, 4);
        let mut counts = vec![0u32; 200];
        for r in &d.ratings {
            counts[r.item as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: u32 = counts[..20].iter().sum();
        let tail: u32 = counts[180..].iter().sum();
        assert!(head > tail * 3, "head {head} tail {tail}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::generate(10, 10, 50, 7);
        let b = Dataset::generate(10, 10, 50, 7);
        assert_eq!(a.ratings, b.ratings);
        let c = Dataset::generate(10, 10, 50, 8);
        assert_ne!(a.ratings, c.ratings);
    }

    #[test]
    fn small_has_proportional_shape() {
        let d = Dataset::small(1);
        assert_eq!(d.num_users, PAPER_USERS / 64);
        assert_eq!(d.num_items, PAPER_ITEMS / 64);
        assert_eq!(d.ratings.len(), PAPER_RATINGS / 64);
        assert!(d.active_users() > d.num_users / 2);
        assert!(d.active_items() > 100);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(Dataset::user_id(42), "u00042");
        assert_eq!(Dataset::item_id(7), "m00007");
    }

    #[test]
    #[should_panic(expected = "unique (user, item)")]
    fn impossible_density_panics() {
        let _ = Dataset::generate(2, 2, 5, 0);
    }
}
