//! The analyzer against the real workspace: the tree must scan clean, and
//! a seeded violation injected into the *actual* `ua.rs` source must be
//! caught — proving the layer-separation rule guards the real layer
//! modules, not just synthetic fixtures.

use pprox_analysis::rules::analyze_file;
use pprox_analysis::{analyze_workspace, report};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_scans_clean() {
    let report = analyze_workspace(&workspace_root()).expect("scan");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has privacy-flow violations:\n{:#?}",
        report.findings
    );
    // The known, documented escape hatches (telemetry epoch, SecretBag's
    // redacting-by-construction derive) are suppressions, not silence.
    assert!(
        !report.suppressions.is_empty(),
        "expected the documented analysis-allow sites to be reported"
    );
}

#[test]
fn seeded_violation_in_real_ua_source_is_caught() {
    let ua_path = workspace_root().join("crates/core/src/ua.rs");
    let original = std::fs::read_to_string(&ua_path).expect("read ua.rs");

    // The shipped module is clean…
    let clean = analyze_file("crates/core/src/ua.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "real ua.rs should be clean: {:#?}",
        clean.findings
    );

    // …but one stray function taking an item id, appended to the very
    // same source, trips R1.
    let seeded = format!("{original}\nfn peek(_x: &PlaintextItemId) {{}}\n");
    let report = analyze_file("crates/core/src/ua.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R1"),
        "seeded PlaintextItemId reference in ua.rs must fire R1: {:#?}",
        report.findings
    );
}

#[test]
fn seeded_violation_in_real_ia_source_is_caught() {
    let ia_path = workspace_root().join("crates/core/src/ia.rs");
    let original = std::fs::read_to_string(&ia_path).expect("read ia.rs");
    let clean = analyze_file("crates/core/src/ia.rs", &original);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);

    let seeded = format!("{original}\nfn join(_c: &UserClient) {{}}\n");
    let report = analyze_file("crates/core/src/ia.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R2"),
        "seeded UserClient reference in ia.rs must fire R2: {:#?}",
        report.findings
    );
}

#[test]
fn wire_transport_handlers_are_in_scope_and_clean() {
    // The wire crate is in the analyzer's scan set (NOT allowlisted):
    // the transport handlers must satisfy the same layer-separation and
    // telemetry rules as the core modules.
    let ua_path = workspace_root().join("crates/wire/src/services/ua.rs");
    let original = std::fs::read_to_string(&ua_path).expect("read wire ua service");
    let clean = analyze_file("crates/wire/src/services/ua.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "wire UA service should be clean: {:#?}",
        clean.findings
    );

    // Seeding an arrival-timestamped span export into the wire UA
    // handler — the R6 arrival-oracle pattern — must fire: a span
    // carrying the end-to-end stage would let a telemetry observer
    // correlate arrivals across the shuffle boundary.
    let seeded = format!(
        "{original}\nfn leak(t: &Telemetry, s: pprox_core::telemetry::SpanRecord) {{\n    t.record_span(SpanRecord {{ stage: Stage::E2e, ..s }});\n}}\n"
    );
    let report = analyze_file("crates/wire/src/services/ua.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R6"),
        "seeded E2e span export in wire handler must fire R6: {:#?}",
        report.findings
    );
}

#[test]
fn durable_store_is_in_scope_and_secret_key_debug_is_caught() {
    // The store crate is in the analyzer's scan set (NOT allowlisted):
    // the persistence layer holds the data-encryption key and must obey
    // the same secret-hygiene rules as the crypto modules.
    let keyring_path = workspace_root().join("crates/store/src/keyring.rs");
    let original = std::fs::read_to_string(&keyring_path).expect("read store keyring");
    let clean = analyze_file("crates/store/src/keyring.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "store keyring should be clean: {:#?}",
        clean.findings
    );

    // Seeding a `derive(Debug)` onto the DEK newtype — which ships with
    // a manual, redacting Debug — must fire R4: a derived Debug would
    // print the key bytes into any log that formats the store.
    let seeded = format!("{original}\n#[derive(Debug)]\npub struct StoreKey2();\n")
        .replace("pub struct StoreKey2", "pub struct StoreKey");
    let report = analyze_file("crates/store/src/keyring.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R4"),
        "seeded derive(Debug) on StoreKey must fire R4: {:#?}",
        report.findings
    );
}

#[test]
fn workspace_report_roundtrips_through_validator() {
    let r = analyze_workspace(&workspace_root()).expect("scan");
    report::validate(&r.to_value().to_json()).expect("self-produced report must validate");
}
