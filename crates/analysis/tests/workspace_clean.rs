//! The analyzer against the real workspace: the tree must scan clean, and
//! a seeded violation injected into the *actual* `ua.rs` source must be
//! caught — proving the layer-separation rule guards the real layer
//! modules, not just synthetic fixtures.

use pprox_analysis::locks::analyze_global;
use pprox_analysis::parser::parse_source;
use pprox_analysis::rules::analyze_file;
use pprox_analysis::{analyze_workspace, report};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_scans_clean() {
    let report = analyze_workspace(&workspace_root()).expect("scan");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has privacy-flow violations:\n{:#?}",
        report.findings
    );
    // The known, documented escape hatches (telemetry epoch, SecretBag's
    // redacting-by-construction derive) are suppressions, not silence.
    assert!(
        !report.suppressions.is_empty(),
        "expected the documented analysis-allow sites to be reported"
    );
}

#[test]
fn seeded_violation_in_real_ua_source_is_caught() {
    let ua_path = workspace_root().join("crates/core/src/ua.rs");
    let original = std::fs::read_to_string(&ua_path).expect("read ua.rs");

    // The shipped module is clean…
    let clean = analyze_file("crates/core/src/ua.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "real ua.rs should be clean: {:#?}",
        clean.findings
    );

    // …but one stray function taking an item id, appended to the very
    // same source, trips R1.
    let seeded = format!("{original}\nfn peek(_x: &PlaintextItemId) {{}}\n");
    let report = analyze_file("crates/core/src/ua.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R1"),
        "seeded PlaintextItemId reference in ua.rs must fire R1: {:#?}",
        report.findings
    );
}

#[test]
fn seeded_violation_in_real_ia_source_is_caught() {
    let ia_path = workspace_root().join("crates/core/src/ia.rs");
    let original = std::fs::read_to_string(&ia_path).expect("read ia.rs");
    let clean = analyze_file("crates/core/src/ia.rs", &original);
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);

    let seeded = format!("{original}\nfn join(_c: &UserClient) {{}}\n");
    let report = analyze_file("crates/core/src/ia.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R2"),
        "seeded UserClient reference in ia.rs must fire R2: {:#?}",
        report.findings
    );
}

#[test]
fn wire_transport_handlers_are_in_scope_and_clean() {
    // The wire crate is in the analyzer's scan set (NOT allowlisted):
    // the transport handlers must satisfy the same layer-separation and
    // telemetry rules as the core modules.
    let ua_path = workspace_root().join("crates/wire/src/services/ua.rs");
    let original = std::fs::read_to_string(&ua_path).expect("read wire ua service");
    let clean = analyze_file("crates/wire/src/services/ua.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "wire UA service should be clean: {:#?}",
        clean.findings
    );

    // Seeding an arrival-timestamped span export into the wire UA
    // handler — the R6 arrival-oracle pattern — must fire: a span
    // carrying the end-to-end stage would let a telemetry observer
    // correlate arrivals across the shuffle boundary.
    let seeded = format!(
        "{original}\nfn leak(t: &Telemetry, s: pprox_core::telemetry::SpanRecord) {{\n    t.record_span(SpanRecord {{ stage: Stage::E2e, ..s }});\n}}\n"
    );
    let report = analyze_file("crates/wire/src/services/ua.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R6"),
        "seeded E2e span export in wire handler must fire R6: {:#?}",
        report.findings
    );
}

#[test]
fn durable_store_is_in_scope_and_secret_key_debug_is_caught() {
    // The store crate is in the analyzer's scan set (NOT allowlisted):
    // the persistence layer holds the data-encryption key and must obey
    // the same secret-hygiene rules as the crypto modules.
    let keyring_path = workspace_root().join("crates/store/src/keyring.rs");
    let original = std::fs::read_to_string(&keyring_path).expect("read store keyring");
    let clean = analyze_file("crates/store/src/keyring.rs", &original);
    assert!(
        clean.findings.is_empty(),
        "store keyring should be clean: {:#?}",
        clean.findings
    );

    // Seeding a `derive(Debug)` onto the DEK newtype — which ships with
    // a manual, redacting Debug — must fire R4: a derived Debug would
    // print the key bytes into any log that formats the store.
    let seeded = format!("{original}\n#[derive(Debug)]\npub struct StoreKey2();\n")
        .replace("pub struct StoreKey2", "pub struct StoreKey");
    let report = analyze_file("crates/store/src/keyring.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R4"),
        "seeded derive(Debug) on StoreKey must fire R4: {:#?}",
        report.findings
    );
}

#[test]
fn workspace_report_roundtrips_through_validator() {
    let r = analyze_workspace(&workspace_root()).expect("scan");
    report::validate(&r.to_value().to_json()).expect("self-produced report must validate");
}

#[test]
fn seeded_taint_leak_in_real_ua_source_is_caught() {
    // R10: the taint pass guards the real UA module — a function that
    // launders key material through a local binding and formats it must
    // fire even though the binding name is on no deny list.
    let ua_path = workspace_root().join("crates/core/src/ua.rs");
    let original = std::fs::read_to_string(&ua_path).expect("read ua.rs");
    let seeded = format!(
        "{original}\nfn stray(key: &SecretBytes) {{\n    let k = key.expose();\n    let _ = format!(\"{{k:?}}\");\n}}\n"
    );
    let report = analyze_file("crates/core/src/ua.rs", &seeded);
    assert!(
        report.findings.iter().any(|f| f.rule == "R10"),
        "seeded laundered-secret format in ua.rs must fire R10: {:#?}",
        report.findings
    );
}

#[test]
fn seeded_lock_inversion_in_real_scrape_source_is_caught() {
    // R11: the real scrape module nests the uplink registry over the
    // balancer ring; seeding a pair of functions that nest the scrape
    // module's own locks in opposite orders must close a cycle.
    let path = workspace_root().join("crates/wire/src/scrape.rs");
    let original = std::fs::read_to_string(&path).expect("read scrape.rs");

    let parsed = parse_source("crates/wire/src/scrape.rs", &original);
    let clean = analyze_global(std::slice::from_ref(&parsed), None);
    assert!(
        clean.report.findings.is_empty(),
        "real scrape.rs alone should be R11-clean: {:#?}",
        clean.report.findings
    );

    let seeded = format!(
        "{original}\nfn seeded_fwd(h: &Hub) {{\n    let a = h.uplinks.lock();\n    let b = h.telemetry.lock();\n    a.touch(&b);\n}}\nfn seeded_rev(h: &Hub) {{\n    let b = h.telemetry.lock();\n    let a = h.uplinks.lock();\n    b.touch(&a);\n}}\n"
    );
    let parsed = parse_source("crates/wire/src/scrape.rs", &seeded);
    let global = analyze_global(std::slice::from_ref(&parsed), None);
    assert!(
        global.report.findings.iter().any(|f| f.rule == "R11"),
        "seeded lock inversion in scrape.rs must fire R11: {:#?}",
        global.report.findings
    );
    assert!(!global.graph.cycle_free, "seeded cycle must mark the graph");
}

#[test]
fn stripping_the_poll_sleep_directive_resurfaces_r12() {
    // R12: the idle-backoff sleep in the real `io_loop` is allowed only
    // because of its audited directive — removing the directive (without
    // touching the code) must bring the finding back.
    let path = workspace_root().join("crates/wire/src/server.rs");
    let original = std::fs::read_to_string(&path).expect("read server.rs");

    let parsed = parse_source("crates/wire/src/server.rs", &original);
    let clean = analyze_global(std::slice::from_ref(&parsed), None);
    assert!(
        !clean.report.findings.iter().any(|f| f.rule == "R12"),
        "real server.rs must be R12-clean (directive honored): {:#?}",
        clean.report.findings
    );
    assert!(
        clean.report.suppressions.iter().any(|s| s.rule == "R12"),
        "the audited sleep must be visible as a suppression"
    );

    let stripped = original.replace("analysis-allow: R12", "note:");
    assert_ne!(stripped, original, "directive should exist to strip");
    let parsed = parse_source("crates/wire/src/server.rs", &stripped);
    let global = analyze_global(std::slice::from_ref(&parsed), None);
    assert!(
        global.report.findings.iter().any(|f| f.rule == "R12"),
        "stripping the directive must resurface the poll-thread sleep: {:#?}",
        global.report.findings
    );
}

#[test]
fn seeded_panic_on_real_request_path_is_caught() {
    // R13: an unwrap added to the real wire UA handler module, reachable
    // from the `handle` request root, must fire.
    let path = workspace_root().join("crates/wire/src/services/ua.rs");
    let original = std::fs::read_to_string(&path).expect("read wire ua service");
    let seeded = format!("{original}\nfn handle(x: Option<u64>) -> u64 {{\n    x.unwrap()\n}}\n");
    let parsed = parse_source("crates/wire/src/services/ua.rs", &seeded);
    let global = analyze_global(std::slice::from_ref(&parsed), None);
    assert!(
        global.report.findings.iter().any(|f| f.rule == "R13"),
        "seeded unwrap on the request path must fire R13: {:#?}",
        global.report.findings
    );
}

#[test]
fn members_are_scanned_or_exempt() {
    // The scan set is derived from the workspace manifest: a new crate
    // lands in the analyzer's jurisdiction the moment it joins the
    // build graph, unless a reviewed SCAN_EXEMPT entry says otherwise.
    let root = workspace_root();
    let members = pprox_analysis::workspace_members(&root).expect("members");
    assert!(
        members.len() >= 5,
        "suspiciously few workspace members: {members:?}"
    );
    let roots = pprox_analysis::scan_roots(&root).expect("scan roots");
    for m in &members {
        let covered = roots.contains(m) || pprox_analysis::SCAN_EXEMPT.iter().any(|(e, _)| e == m);
        assert!(
            covered,
            "workspace member `{m}` is neither scanned nor allowlisted in SCAN_EXEMPT"
        );
    }
    // And exemptions must not rot: every entry still names a member.
    for (e, why) in pprox_analysis::SCAN_EXEMPT {
        assert!(
            members.iter().any(|m| m == e),
            "SCAN_EXEMPT entry `{e}` ({why}) is not a workspace member"
        );
    }
}

#[test]
fn workspace_lock_graph_is_cycle_free_and_declared() {
    let r = analyze_workspace(&workspace_root()).expect("scan");
    assert!(r.lock_graph.cycle_free, "edges: {:#?}", r.lock_graph.edges);
    assert!(
        !r.lock_graph.edges.is_empty(),
        "expected the scrape-path nesting edge to be recovered"
    );
    assert_eq!(
        r.panics.request_path, 0,
        "request path must be panic-free (or carry audited panic-ok)"
    );
    assert_eq!(
        r.panics.total,
        r.panics.request_path + r.panics.test + r.panics.other,
        "panic classification must partition"
    );
}

#[test]
fn workspace_suppressions_are_within_committed_budget() {
    let root = workspace_root();
    let r = analyze_workspace(&root).expect("scan");
    let budget = std::fs::read_to_string(root.join("results/ANALYSIS_budget.json"))
        .expect("committed suppression budget");
    report::check_ratchet(&r, &budget).expect("suppression ratchet must hold");
}
