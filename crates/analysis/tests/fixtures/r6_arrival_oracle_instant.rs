// fixture-role: crates/core/src/telemetry/export.rs
// expect: R6
//
// Telemetry internals capturing wall-clock time: an exporter that stamps
// records at export time recreates the arrival oracle the epoch-relative
// design removed.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
