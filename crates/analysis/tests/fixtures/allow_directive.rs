// fixture-role: crates/core/src/telemetry/export.rs
// expect: clean
// expect-suppressed: R6
//
// The audited escape hatch: an `analysis-allow` directive converts the
// finding into a suppression that the report lists for human review.

pub fn banner_elapsed_micros() -> u64 {
    // analysis-allow: R6 startup banner only; never stored per-request
    let started = std::time::Instant::now();
    started.elapsed().as_micros() as u64
}
