// fixture-role: crates/core/src/ua.rs
// expect: R1
//
// A UA-side module importing the item-plaintext newtype: the exact breach
// the §4.2 layer separation forbids (UA learning item identifiers).

use crate::ids::PlaintextItemId;

pub fn peek_at_item(item: &PlaintextItemId) -> usize {
    item.len()
}
