// fixture-role: crates/core/src/telemetry/histogram.rs
// expect: R7
//
// A bare Relaxed with no `relaxed-ok:` justification: the rule forces the
// author to argue (in place) why no ordering is needed.

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
