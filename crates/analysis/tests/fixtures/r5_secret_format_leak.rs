// fixture-role: crates/core/src/keys.rs
// expect: R5
// expect: R10
//
// Secret material reaching format strings: both the inline-interpolation
// form and the positional-argument form.

pub fn log_key(k_u: &SymmetricKey) {
    eprintln!("provisioned key {k_u:?}");
}

pub fn log_bag(secrets: &LayerSecrets) {
    let _line = format!("bag = {}", secrets);
}
