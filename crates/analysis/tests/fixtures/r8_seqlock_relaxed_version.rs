// fixture-role: crates/core/src/telemetry/trace.rs
// expect: R8
//
// A justified-but-wrong Relaxed on the seqlock version word: relaxed-ok
// silences R7, but the structural protocol check still rejects it — a
// Relaxed version load lets readers observe torn span records.

pub fn read_version(slot: &Slot) -> u64 {
    // relaxed-ok: (wrong!) readers retry anyway
    slot.version.load(Ordering::Relaxed)
}

pub fn publish(slot: &Slot, v: u64) {
    // relaxed-ok: (wrong!) the fields were already written
    slot.version.store(v + 2, Ordering::Relaxed);
}
