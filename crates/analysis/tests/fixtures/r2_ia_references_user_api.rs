// fixture-role: crates/core/src/ia.rs
// expect: R2
//
// IA-side code calling the UA-only depseudonymize API: would let the IA
// recover plaintext user ids and join them with the item ids it sees.

pub fn correlate(ua: &UaState, pseudonym: &[u8]) -> Vec<u8> {
    ua.depseudonymize(pseudonym).into_exposed()
}
