// fixture-role: crates/crypto/src/ctr.rs
// expect: R4
//
// Deriving Debug on a key type: one `{:?}` in a log line away from key
// material in plaintext logs. The real type carries a manual redacting
// impl; this fixture models the refactor that silently reintroduces the
// derive.

#[derive(Debug, Clone)]
pub struct SymmetricKey {
    bytes: [u8; 32],
}

impl std::fmt::Display for GetTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket")
    }
}
