// fixture-role: crates/core/src/ua.rs
// expect: R10
// expect-suppressed: R10
//
// R10: a secret laundered through a let binding reaches a format macro.
// The binding name `k` is on no deny list — only dataflow catches this.

fn leak(key: &SecretBytes) {
    let k = key.expose();
    let _ = format!("{k:?}");
}

fn justified(key: &SecretBytes) {
    let k = key.expose();
    // analysis-allow: R10 fixture-only: demonstrates the audited escape hatch
    let _ = format!("{k:?}");
}

fn clean(key: &SecretBytes) {
    let n = key.len();
    let d = sha256(key.expose());
    let _ = format!("{n} {d:?}");
}
