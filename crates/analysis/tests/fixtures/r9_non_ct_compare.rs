// fixture-role: crates/crypto/src/hmac.rs
// expect: R9
//
// Early-exit equality on a MAC tag: the textbook remote timing oracle.
// The same comparison inside `ct_eq` / on `.len()` is exempt — shown
// below to pin the exemptions down.

pub fn verify(expected_tag: &[u8], tag: &[u8]) -> bool {
    tag == expected_tag
}

pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    // Exempt: this *is* the constant-time primitive; it may compare the
    // accumulator and lengths directly.
    let tag = a;
    if tag.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in tag.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

pub fn length_gate(key_bytes: &[u8]) -> bool {
    // Exempt: lengths are public (constant-size frames).
    key_bytes.len() == 32
}
