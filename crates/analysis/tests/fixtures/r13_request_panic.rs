// fixture-role: crates/wire/src/services/ua.rs
// expect: R13
// expect-suppressed: R13
//
// R13: the request path may not panic. `handle` is a request root; the
// unwrap in the helper it calls is reachable and must either become a
// typed error or carry an audited `panic-ok` justification.

fn handle(req: &Request) -> Response {
    let user = decode(req).unwrap();
    finish(user)
}

fn finish(user: User) -> Response {
    // analysis-allow: panic-ok fixture-only: capacity proven at admission
    let slot = user.slot.expect("admission reserved a slot");
    Response::ok(slot)
}
