// fixture-role: crates/core/src/metrics.rs
// expect: R3
//
// A shared module (not on the allowlist) handling both plaintext domains:
// the one place an accidental user-item join could be coded up.

pub fn tally(user: &PlaintextUserId, item: &PlaintextItemId) -> (usize, usize) {
    (user.len(), item.len())
}
