// fixture-role: crates/core/src/pipeline.rs
// expect: R6
//
// The PR-3 arrival-oracle regression: recording the end-to-end stage as a
// *span* gives the exporter per-request arrival timestamps that §6.2's
// shuffle argument assumes do not exist. E2e must go through
// record_duration.

pub fn finish(telemetry: &Telemetry, trace: TraceId, start_us: u64, duration_us: u64) {
    telemetry.record_span(SpanRecord {
        trace,
        stage: Stage::E2e,
        instance: 0,
        start_us,
        duration_us,
        ok: true,
    });
}
