// fixture-role: crates/wire/src/ring.rs
// expect: R11
//
// R11: two functions acquire the same pair of mutexes in opposite
// orders — a deadlock waiting for the right interleaving. The analyzer
// must recover both nesting edges and flag the cycle.

fn forward(s: &Shared) {
    let a = s.accounts.lock();
    let b = s.ledger.lock();
    a.post(&b);
}

fn backward(s: &Shared) {
    let b = s.ledger.lock();
    let a = s.accounts.lock();
    b.reconcile(&a);
}
