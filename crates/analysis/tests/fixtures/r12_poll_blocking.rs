// fixture-role: crates/wire/src/server.rs
// expect: R12
//
// R12: the IO poll loop must stay non-blocking. Here it takes a mutex
// directly and sleeps via a helper it calls — both reachable from the
// `io_loop` root, both findings.

fn io_loop(state: &Shared) {
    let conns = state.conns.lock();
    drain(&conns);
    backoff();
}

fn backoff() {
    std::thread::sleep(Duration::from_millis(5));
}
