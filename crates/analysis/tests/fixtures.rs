//! Fixture corpus: every deliberately-violating snippet must be caught by
//! exactly the rule(s) its header declares, and the `clean` fixtures must
//! pass. This is the analyzer's own regression suite — a rule that stops
//! firing fails here before it silently stops protecting the workspace.

use pprox_analysis::locks::analyze_global;
use pprox_analysis::parser::parse_source;
use pprox_analysis::rules::{analyze_parsed, FileReport};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// Runs both analyzer passes — per-file (R1–R10) and global (R11–R13,
/// with the fixture as the whole "workspace" and no declared lock
/// order) — and merges their findings, so one corpus exercises every
/// rule through the same entry points the workspace scan uses.
fn analyze_fixture(role: &str, source: &str) -> FileReport {
    let parsed = parse_source(role, source);
    let mut report = analyze_parsed(&parsed);
    let global = analyze_global(std::slice::from_ref(&parsed), None);
    report.findings.extend(global.report.findings);
    report.suppressions.extend(global.report.suppressions);
    report
}

struct Fixture {
    name: String,
    role: String,
    source: String,
    expect: BTreeSet<String>,
    expect_suppressed: BTreeSet<String>,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    for path in paths {
        let source = fs::read_to_string(&path).expect("read fixture");
        let mut role = None;
        let mut expect = BTreeSet::new();
        let mut expect_suppressed = BTreeSet::new();
        for line in source.lines() {
            let line = line.trim_start_matches("//").trim();
            if let Some(r) = line.strip_prefix("fixture-role:") {
                role = Some(r.trim().to_string());
            } else if let Some(e) = line.strip_prefix("expect-suppressed:") {
                expect_suppressed.insert(e.trim().to_string());
            } else if let Some(e) = line.strip_prefix("expect:") {
                let e = e.trim();
                if e != "clean" {
                    expect.insert(e.to_string());
                }
            }
        }
        out.push(Fixture {
            name: path.file_name().unwrap().to_string_lossy().into_owned(),
            role: role.expect("fixture-role header"),
            source,
            expect,
            expect_suppressed,
        });
    }
    assert!(
        out.len() >= 10,
        "fixture corpus unexpectedly small: {}",
        out.len()
    );
    out
}

#[test]
fn every_fixture_is_caught_by_exactly_its_rule() {
    for fx in load_fixtures() {
        let report = analyze_fixture(&fx.role, &fx.source);
        let fired: BTreeSet<String> = report.findings.iter().map(|f| f.rule.to_string()).collect();
        assert_eq!(
            fired, fx.expect,
            "{}: fired {:?}, expected {:?}\nfindings: {:#?}",
            fx.name, fired, fx.expect, report.findings
        );
        let suppressed: BTreeSet<String> = report
            .suppressions
            .iter()
            .map(|s| s.rule.to_string())
            .collect();
        assert_eq!(
            suppressed, fx.expect_suppressed,
            "{}: suppressed {:?}, expected {:?}",
            fx.name, suppressed, fx.expect_suppressed
        );
    }
}

#[test]
fn all_rules_are_covered_by_the_corpus() {
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for fx in load_fixtures() {
        covered.extend(fx.expect.iter().cloned());
        covered.extend(fx.expect_suppressed.iter().cloned());
    }
    for (id, name) in pprox_analysis::rules::RULES {
        assert!(
            covered.contains(*id),
            "rule {id} ({name}) has no fixture exercising it"
        );
    }
}

#[test]
fn findings_carry_position_and_message() {
    for fx in load_fixtures() {
        for f in analyze_fixture(&fx.role, &fx.source).findings {
            assert!(f.line >= 1, "{}: finding with line 0", fx.name);
            assert!(!f.message.is_empty(), "{}: empty message", fx.name);
            assert_eq!(f.path, fx.role);
        }
    }
}
