//! CLI for the privacy-flow analyzer.
//!
//! ```text
//! pprox-analysis [--root <dir>] [--json-out <file>]   # scan, exit 1 on violations
//! pprox-analysis --validate <file>                    # check a committed report
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use pprox_analysis::{analyze_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json-out" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json-out needs a value"),
            },
            "--validate" => match args.next() {
                Some(v) => validate = Some(PathBuf::from(v)),
                None => return usage("--validate needs a value"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pprox-analysis: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match report::validate(&text) {
            Ok(()) => {
                println!("pprox-analysis: {} validates", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pprox-analysis: {} invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let result = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pprox-analysis: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_out {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut json = result.to_value().to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("pprox-analysis: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "pprox-analysis: {} files, {} finding(s), {} suppression(s)",
        result.files_scanned,
        result.findings.len(),
        result.suppressions.len()
    );
    for s in &result.suppressions {
        println!("  allow {} {}:{} — {}", s.rule, s.path, s.line, s.reason);
    }
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        for f in &result.findings {
            eprintln!("  {} {}:{} — {}", f.rule, f.path, f.line, f.message);
        }
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("pprox-analysis: {err}");
    eprintln!("usage: pprox-analysis [--root <dir>] [--json-out <file>] | --validate <file>");
    ExitCode::FAILURE
}
