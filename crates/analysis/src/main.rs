//! CLI for the privacy-flow analyzer.
//!
//! ```text
//! pprox-analysis [--root <dir>] [--json-out <file>] [--ratchet] [--emit-budget <file>]
//! pprox-analysis --validate <file>                    # check a committed report
//! ```
//!
//! `--ratchet` compares the scan's per-rule `analysis-allow:` counts
//! against the committed `results/ANALYSIS_budget.json` and fails if any
//! rule is over budget; `--emit-budget` writes a budget matching the
//! current counts (used once when a justified suppression is added).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use pprox_analysis::{analyze_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;
    let mut ratchet = false;
    let mut emit_budget: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json-out" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json-out needs a value"),
            },
            "--validate" => match args.next() {
                Some(v) => validate = Some(PathBuf::from(v)),
                None => return usage("--validate needs a value"),
            },
            "--ratchet" => ratchet = true,
            "--emit-budget" => match args.next() {
                Some(v) => emit_budget = Some(PathBuf::from(v)),
                None => return usage("--emit-budget needs a value"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pprox-analysis: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match report::validate(&text) {
            Ok(()) => {
                println!("pprox-analysis: {} validates", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pprox-analysis: {} invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let result = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pprox-analysis: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_out {
        if let Err(e) = write_json(&path, result.to_value().to_json()) {
            eprintln!("pprox-analysis: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = emit_budget {
        if let Err(e) = write_json(&path, result.budget_value().to_json()) {
            eprintln!("pprox-analysis: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("pprox-analysis: budget written to {}", path.display());
    }
    println!(
        "pprox-analysis: {} files, {} finding(s), {} suppression(s), lock graph {} node(s)/{} edge(s)",
        result.files_scanned,
        result.findings.len(),
        result.suppressions.len(),
        result.lock_graph.nodes.len(),
        result.lock_graph.edges.len(),
    );
    for s in &result.suppressions {
        println!("  allow {} {}:{} — {}", s.rule, s.path, s.line, s.reason);
    }
    if ratchet {
        let budget_path = root.join("results/ANALYSIS_budget.json");
        let text = match std::fs::read_to_string(&budget_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pprox-analysis: cannot read {}: {e}", budget_path.display());
                return ExitCode::FAILURE;
            }
        };
        match report::check_ratchet(&result, &text) {
            Ok(()) => println!("pprox-analysis: suppression ratchet holds"),
            Err(e) => {
                eprintln!("pprox-analysis: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        for f in &result.findings {
            eprintln!("  {} {}:{} — {}", f.rule, f.path, f.line, f.message);
        }
        ExitCode::FAILURE
    }
}

fn write_json(path: &std::path::Path, mut json: String) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    json.push('\n');
    std::fs::write(path, json)
}

fn usage(err: &str) -> ExitCode {
    eprintln!("pprox-analysis: {err}");
    eprintln!(
        "usage: pprox-analysis [--root <dir>] [--json-out <file>] [--ratchet] \
         [--emit-budget <file>] | --validate <file>"
    );
    ExitCode::FAILURE
}
