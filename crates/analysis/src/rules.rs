//! The privacy-flow rules.
//!
//! Each rule is a structural check over the token stream of one file; the
//! file's workspace-relative path decides which rules apply. The rules
//! encode the PProx unlinkability argument (§4.2 of the paper) and the
//! hardening decisions of earlier PRs — see DESIGN.md §6.3 for the
//! rationale behind every rule and the allowlist escape hatch.

use crate::lexer::{self, LexedFile, Tok, TokKind};

/// Rule ids and human names, in report order.
pub const RULES: &[(&str, &str)] = &[
    ("R1", "ua-item-isolation"),
    ("R2", "ia-user-isolation"),
    ("R3", "cross-layer-reference"),
    ("R4", "secret-debug-derive"),
    ("R5", "secret-format-leak"),
    ("R6", "arrival-oracle"),
    ("R7", "relaxed-justification"),
    ("R8", "seqlock-ordering"),
    ("R9", "non-ct-secret-compare"),
    ("R10", "secret-taint-dataflow"),
    ("R11", "lock-order-graph"),
    ("R12", "blocking-in-poll-thread"),
    ("R13", "panic-on-request-path"),
];

/// Identifiers that constitute an item-plaintext API surface. UA-side
/// code referencing any of these breaks layer separation (rule R1).
pub const ITEM_APIS: &[&str] = &[
    "PlaintextItemId",
    "pseudonymize_item",
    "depseudonymize_item",
    "list_to_plaintext",
    "list_from_plaintext",
    "FeedbackEvent",
    "RecommendationQuery",
    "MAX_RECOMMENDATIONS",
    "PAD_ITEM_PREFIX",
    "ITEM_BLOCK_LEN",
];

/// Identifiers that constitute a user-plaintext API surface. IA-side
/// code referencing any of these breaks layer separation (rule R2).
pub const USER_APIS: &[&str] = &[
    "PlaintextUserId",
    "UserClient",
    "depseudonymize",
    "GetTicket",
];

/// Types that must never derive `Debug` nor implement `Display` (R4):
/// each holds secret material or plaintext ids and carries a manual,
/// redacting `Debug` instead.
pub const SECRET_TYPES: &[&str] = &[
    "SecretBytes",
    "SymmetricKey",
    "LayerSecrets",
    "KeyProvisioner",
    "GetTicket",
    "RsaPrivateKey",
    "SecureRng",
    "PlaintextUserId",
    "PlaintextItemId",
    "UaState",
    "IaState",
    "ClientEnvelope",
    "LayerEnvelope",
    "EncryptedList",
    "SecretBag",
    "StoreKey",
];

/// Identifiers whose appearance in a format-like macro indicates secret
/// material reaching a formatted string (R5).
pub const FORMAT_SECRET_IDENTS: &[&str] =
    &["k_u", "secrets", "sk", "padded_user", "key_bytes", "expose"];

/// Format-like macros whose arguments R5 scans.
const FORMAT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "panic",
];

/// Identifiers treated as secret-derived for the constant-time rule (R9).
pub const CT_SECRET_IDENTS: &[&str] = &[
    "bytes",
    "key_bytes",
    "tag",
    "mac",
    "digest",
    "l_hash",
    "plaintext",
    "secret",
    "expose",
    "as_bytes",
];

/// Files allowed to reference both user- and item-plaintext APIs (R3),
/// with the reason. Prefix-matched against the workspace-relative path.
pub const CROSS_LAYER_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/core/src/client.rs",
        "user-side library: runs outside the proxy, legitimately sees both ids",
    ),
    (
        "crates/core/src/ids.rs",
        "definition site of both id newtypes; contains no id values",
    ),
    (
        "crates/core/src/lib.rs",
        "crate root: re-exports and error plumbing only",
    ),
    (
        "crates/core/src/message.rs",
        "wire format: frame sizes for both blocks, no plaintext handling",
    ),
    (
        "crates/core/src/proxy.rs",
        "deployment harness: instantiates both layers, runs outside enclaves in tests",
    ),
    (
        "crates/core/src/pipeline.rs",
        "deployment harness: supervises both layers, sees only ciphertext",
    ),
    (
        "crates/core/src/rotation.rs",
        "breach response: rotates both layers' keys inside their own enclaves",
    ),
    (
        "crates/core/src/gateway.rs",
        "REST redirection: routes opaque envelopes for both directions",
    ),
    (
        "crates/workload/",
        "workload generator: simulates users, outside the trust boundary",
    ),
    (
        "crates/attack/",
        "attack harness: deliberately adversarial, models §6.1 breaches",
    ),
    (
        "crates/bench/",
        "benchmark driver: orchestrates full deployments end to end",
    ),
    (
        "crates/scenario/",
        "scenario harness: plays the user population and the wire adversary",
    ),
    ("src/", "facade crate: re-exports only"),
    ("tests/", "integration tests exercise the full protocol"),
];

/// A rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`R1` … `R9`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What was found.
    pub message: String,
}

/// A finding silenced by an `analysis-allow:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule id that would have fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The justification given in the directive.
    pub reason: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations.
    pub findings: Vec<Finding>,
    /// Directive-silenced violations (reported for audit).
    pub suppressions: Vec<Suppression>,
}

/// Searches the flagged line and the contiguous comment block above it
/// for a directive containing `needle` (e.g. `analysis-allow: R6`);
/// returns the trailing text as the reason.
pub(crate) fn find_directive(lex: &LexedFile, line: usize, needle: &str) -> Option<String> {
    let mut l = line;
    loop {
        if let Some(text) = lex.comments.get(&l) {
            if let Some(at) = text.find(needle) {
                let reason = text[at + needle.len()..].trim().to_string();
                return Some(if reason.is_empty() {
                    "(no reason given)".to_string()
                } else {
                    reason
                });
            }
        }
        // Walk upward only through comment-only lines.
        if l == 0 {
            return None;
        }
        let above = l - 1;
        if lex.comments.contains_key(&above) && !lex.code_lines.contains(&above) {
            l = above;
        } else if l == line && lex.comments.contains_key(&above) {
            // First hop: allow a directive on the line directly above
            // even if that line also carries code (trailing comment).
            l = above;
        } else {
            return None;
        }
    }
}

/// Routes a candidate finding through the suppression machinery: an
/// `analysis-allow: <rule>` directive (or, for R13, the
/// `analysis-allow: panic-ok` spelling the panic audit uses) on the
/// flagged line or the comment block above it records an audited
/// suppression instead. Used by the global rules (R11–R13), which run
/// outside the per-file [`Ctx`].
pub fn emit_global(
    out: &mut FileReport,
    lex: &LexedFile,
    rule: &'static str,
    path: &str,
    line: usize,
    message: String,
) {
    let mut needles = vec![format!("analysis-allow: {rule}")];
    if rule == "R13" {
        needles.push("analysis-allow: panic-ok".to_string());
    }
    for needle in &needles {
        if let Some(reason) = find_directive(lex, line, needle) {
            out.suppressions.push(Suppression {
                rule,
                path: path.to_string(),
                line,
                reason,
            });
            return;
        }
    }
    out.findings.push(Finding {
        rule,
        path: path.to_string(),
        line,
        message,
    });
}

struct Ctx<'a> {
    path: &'a str,
    lex: &'a LexedFile,
    test_regions: Vec<(usize, usize)>,
    out: FileReport,
}

impl Ctx<'_> {
    fn in_test(&self, line: usize) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }

    fn directive(&self, line: usize, needle: &str) -> Option<String> {
        find_directive(self.lex, line, needle)
    }

    fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        if let Some(reason) = self.directive(line, &format!("analysis-allow: {rule}")) {
            self.out.suppressions.push(Suppression {
                rule,
                path: self.path.to_string(),
                line,
                reason,
            });
        } else {
            self.out.findings.push(Finding {
                rule,
                path: self.path.to_string(),
                line,
                message,
            });
        }
    }
}

/// Analyzes one file's source against every applicable per-file rule
/// (R1–R10). The global rules (R11–R13) need the whole workspace — see
/// [`crate::locks::analyze_global`].
pub fn analyze_file(path: &str, source: &str) -> FileReport {
    analyze_parsed(&crate::parser::parse_source(path, source))
}

/// [`analyze_file`] over an already-parsed file (the workspace scan
/// parses once and shares the result with the global pass).
pub fn analyze_parsed(parsed: &crate::parser::ParsedFile) -> FileReport {
    let path = parsed.path.as_str();
    let mut ctx = Ctx {
        path,
        lex: &parsed.lex,
        test_regions: parsed.test_regions.clone(),
        out: FileReport::default(),
    };
    let is_ua = path.ends_with("crates/core/src/ua.rs")
        || path.ends_with("crates/core/src/shuffler.rs")
        || path == "crates/core/src/ua.rs"
        || path == "crates/core/src/shuffler.rs";
    let is_ia = path.ends_with("crates/core/src/ia.rs") || path == "crates/core/src/ia.rs";
    if is_ua {
        rule_layer_isolation(&mut ctx, "R1", ITEM_APIS, "item-plaintext");
    }
    if is_ia {
        rule_layer_isolation(&mut ctx, "R2", USER_APIS, "user-plaintext");
    }
    if !is_ua && !is_ia {
        rule_cross_layer(&mut ctx);
    }
    rule_secret_debug(&mut ctx);
    rule_format_leak(&mut ctx);
    rule_arrival_oracle(&mut ctx);
    if path.contains("crates/core/src/telemetry/") {
        rule_relaxed_justification(&mut ctx);
        rule_seqlock_ordering(&mut ctx);
    }
    if path.starts_with("crates/crypto/") {
        rule_non_ct_compare(&mut ctx);
    }
    // R10: function-scope secret taint, workspace-wide.
    for hit in crate::taint::analyze(parsed) {
        ctx.emit("R10", hit.line, hit.message);
    }
    ctx.out
}

/// R1 / R2: a layer-private module references the other layer's plaintext
/// API. Scans test regions too — layer modules must not even *test*
/// against the other layer's plaintext surface.
fn rule_layer_isolation(ctx: &mut Ctx<'_>, rule: &'static str, deny: &[&str], kind: &str) {
    let hits: Vec<(usize, String)> = ctx
        .lex
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && deny.contains(&t.text.as_str()))
        .map(|t| (t.line, t.text.clone()))
        .collect();
    for (line, name) in hits {
        ctx.emit(
            rule,
            line,
            format!("layer-private module references {kind} API `{name}`"),
        );
    }
}

/// R3: a file outside the allowlist references both the user-plaintext
/// and the item-plaintext API surface — a place where the two knowledge
/// domains could be joined.
fn rule_cross_layer(ctx: &mut Ctx<'_>) {
    for (prefix, _reason) in CROSS_LAYER_ALLOWLIST {
        if ctx.path.starts_with(prefix) || ctx.path.contains("/tests/") {
            return;
        }
    }
    let mut user_hit: Option<(usize, String)> = None;
    let mut item_hit: Option<(usize, String)> = None;
    for t in &ctx.lex.tokens {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if user_hit.is_none() && USER_APIS.contains(&t.text.as_str()) {
            user_hit = Some((t.line, t.text.clone()));
        }
        if item_hit.is_none() && ITEM_APIS.contains(&t.text.as_str()) {
            item_hit = Some((t.line, t.text.clone()));
        }
    }
    if let (Some((ul, un)), Some((il, inm))) = (user_hit, item_hit) {
        let line = ul.max(il);
        ctx.emit(
            "R3",
            line,
            format!(
                "non-allowlisted file references both user API `{un}` (line {ul}) and item API `{inm}` (line {il})"
            ),
        );
    }
}

/// R4: `#[derive(.. Debug ..)]` on — or `impl Display for` — a type in
/// the secret deny list. Those types carry manual redacting impls; a
/// derive reintroduced by refactoring would print field bytes.
fn rule_secret_debug(ctx: &mut Ctx<'_>) {
    let toks = &ctx.lex.tokens;
    let mut pending: Vec<(usize, Vec<(usize, String)>)> = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind == TokKind::Ident && toks[k].text == "derive" {
            if let Some(open) = toks.get(k + 1).filter(|t| t.text == "(") {
                let _ = open;
                let mut depth = 0usize;
                let mut j = k + 1;
                let mut derived: Vec<(usize, String)> = Vec::new();
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if toks[j].kind == TokKind::Ident {
                                derived.push((toks[j].line, toks[j].text.clone()));
                            }
                        }
                    }
                    j += 1;
                }
                pending.push((j, derived));
                k = j;
            }
        } else if toks[k].kind == TokKind::Ident
            && (toks[k].text == "struct" || toks[k].text == "enum")
        {
            if let Some(name) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                if SECRET_TYPES.contains(&name.text.as_str()) {
                    // Attach the closest preceding derive list, if any.
                    if let Some((_, derived)) = pending.last() {
                        for (line, d) in derived {
                            if d == "Debug" || d == "Display" {
                                let (line, name_text) = (*line, name.text.clone());
                                ctx.emit(
                                    "R4",
                                    line,
                                    format!("secret type `{name_text}` derives `{d}`"),
                                );
                            }
                        }
                    }
                }
            }
            pending.clear();
        } else if toks[k].kind == TokKind::Ident && toks[k].text == "fn" {
            // A function between derive and struct means the derive did
            // not belong to a type definition we are about to see.
            pending.clear();
        } else if toks[k].kind == TokKind::Ident
            && (toks[k].text == "Display" || toks[k].text == "Debug")
            && toks.get(k + 1).map(|t| t.text == "for").unwrap_or(false)
        {
            // `impl Display for X` — only Display is banned outright; a
            // manual Debug is exactly what the deny-listed types should
            // have, so Debug impls are fine.
            if toks[k].text == "Display" {
                if let Some(name) = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                    if SECRET_TYPES.contains(&name.text.as_str()) {
                        let (line, name_text) = (toks[k].line, name.text.clone());
                        ctx.emit(
                            "R4",
                            line,
                            format!("secret type `{name_text}` implements `Display`"),
                        );
                    }
                }
            }
        }
        k += 1;
    }
}

/// R5: a secret-bearing identifier reaches a format-like macro, either as
/// a direct argument or as a `{name}` interpolation inside the format
/// string. Test regions are exempt (tests format secrets precisely to
/// assert they redact).
fn rule_format_leak(ctx: &mut Ctx<'_>) {
    let toks = &ctx.lex.tokens;
    let mut k = 0;
    while k + 2 < toks.len() {
        let is_macro = toks[k].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&toks[k].text.as_str())
            && toks[k + 1].text == "!"
            && matches!(toks[k + 2].text.as_str(), "(" | "[" | "{");
        if !is_macro || ctx.in_test(toks[k].line) {
            k += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = k + 2;
        let mut offenders: Vec<(usize, String)> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            match toks[j].kind {
                TokKind::Ident if FORMAT_SECRET_IDENTS.contains(&toks[j].text.as_str()) => {
                    offenders.push((toks[j].line, toks[j].text.clone()));
                }
                TokKind::Str => {
                    for name in interpolated_idents(&toks[j].text) {
                        if FORMAT_SECRET_IDENTS.contains(&name.as_str()) {
                            offenders.push((toks[j].line, name));
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for (line, name) in offenders {
            ctx.emit(
                "R5",
                line,
                format!("secret identifier `{name}` reaches a format-like macro"),
            );
        }
        k = j.max(k + 1);
    }
}

/// Extracts `{name}` / `{name:?}` interpolation identifiers from a format
/// string body.
pub(crate) fn interpolated_idents(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2; // escaped brace
                continue;
            }
            let mut j = i + 1;
            let mut name = String::new();
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty() && matches!(chars.get(j), Some(&'}') | Some(&':')) {
                out.push(name);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// R6: the arrival-oracle rule. (a) No `record_span` call may carry the
/// `E2e` stage — end-to-end latency goes through `record_duration`, which
/// carries no arrival timestamp an exporter could correlate with network
/// captures. (b) Telemetry internals — the in-process collector *and* the
/// wire scrape plane (`crates/wire/src/scrape.rs`), which exports across
/// the trust boundary — must not read wall-clock time themselves
/// (`Instant` / `SystemTime`) except at allow-listed epochs.
fn rule_arrival_oracle(ctx: &mut Ctx<'_>) {
    let toks = &ctx.lex.tokens;
    // (a) — workspace-wide, production code.
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind == TokKind::Ident
            && toks[k].text == "record_span"
            && toks.get(k + 1).map(|t| t.text == "(").unwrap_or(false)
            && !ctx.in_test(toks[k].line)
        {
            let mut depth = 0usize;
            let mut j = k + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "{" | "[" => depth += 1,
                    ")" | "}" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if toks[j].kind == TokKind::Ident && toks[j].text == "E2e" {
                    let line = toks[j].line;
                    ctx.emit(
                        "R6",
                        line,
                        "end-to-end stage recorded via record_span: spans carry arrival \
                         timestamps, which §6.2 forbids for E2e"
                            .to_string(),
                    );
                    break;
                }
                j += 1;
            }
            k = j;
        }
        k += 1;
    }
    // (b) — telemetry internals only, production code. The wire scrape
    // module is telemetry too: everything it touches leaves the node.
    if ctx.path.contains("crates/core/src/telemetry/")
        || ctx.path.contains("crates/wire/src/scrape.rs")
    {
        let hits: Vec<(usize, String)> = ctx
            .lex
            .tokens
            .iter()
            .filter(|t| {
                t.kind == TokKind::Ident
                    && (t.text == "Instant" || t.text == "SystemTime")
                    && !ctx.in_test(t.line)
            })
            .map(|t| (t.line, t.text.clone()))
            .collect();
        for (line, name) in hits {
            ctx.emit(
                "R6",
                line,
                format!("telemetry internals capture wall-clock time via `{name}`"),
            );
        }
    }
}

/// R7: every `Ordering::Relaxed` in the lock-free telemetry code must
/// carry a `relaxed-ok:` justification on the same line or in the
/// contiguous comment block directly above.
fn rule_relaxed_justification(ctx: &mut Ctx<'_>) {
    let hits: Vec<usize> = ctx
        .lex
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "Relaxed")
        .map(|t| t.line)
        .collect();
    for line in hits {
        if ctx.directive(line, "relaxed-ok:").is_none() {
            ctx.emit(
                "R7",
                line,
                "Ordering::Relaxed without a `relaxed-ok:` justification".to_string(),
            );
        }
    }
}

/// R8: the seqlock protocol's `version` field must be loaded with at
/// least Acquire, stored with at least Release, and its compare_exchange
/// must use an acquiring success ordering. A Relaxed slip here would let
/// readers observe torn span records.
fn rule_seqlock_ordering(ctx: &mut Ctx<'_>) {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let toks = &ctx.lex.tokens;
    let mut k = 0;
    while k + 3 < toks.len() {
        let is_version_op = toks[k].kind == TokKind::Ident
            && toks[k].text == "version"
            && toks[k + 1].text == "."
            && toks[k + 2].kind == TokKind::Ident
            && toks.get(k + 3).map(|t| t.text == "(").unwrap_or(false);
        if !is_version_op {
            k += 1;
            continue;
        }
        let op = toks[k + 2].text.clone();
        let line = toks[k + 2].line;
        let mut depth = 0usize;
        let mut j = k + 3;
        let mut found: Vec<String> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if toks[j].kind == TokKind::Ident && ORDERINGS.contains(&toks[j].text.as_str()) {
                found.push(toks[j].text.clone());
            }
            j += 1;
        }
        let ok = match op.as_str() {
            "load" => found.iter().any(|o| o == "Acquire" || o == "SeqCst"),
            "store" => found.iter().any(|o| o == "Release" || o == "SeqCst"),
            "compare_exchange" | "compare_exchange_weak" => found
                .first()
                .map(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
                .unwrap_or(false),
            _ => true,
        };
        if !ok {
            ctx.emit(
                "R8",
                line,
                format!(
                    "seqlock `version.{op}` uses orderings {found:?}: readers could observe \
                     torn records"
                ),
            );
        }
        k = j.max(k + 1);
    }
}

/// R9: in the crypto crate, `==` / `!=` on secret-derived byte material
/// outside `ct_eq` / `verify_tag` is an early-exit timing oracle. Length
/// checks (`.len()`, `.is_empty()`) are public and exempt.
fn rule_non_ct_compare(ctx: &mut Ctx<'_>) {
    const EXEMPT_FNS: &[&str] = &["ct_eq", "verify_tag"];
    const BOUNDARY: &[&str] = &[";", "{", "}", "&&", "||", ","];
    let toks = &ctx.lex.tokens;
    let fn_regions = fn_regions(toks);
    let mut k = 0;
    while k < toks.len() {
        if !(toks[k].kind == TokKind::Punct && (toks[k].text == "==" || toks[k].text == "!=")) {
            k += 1;
            continue;
        }
        let line = toks[k].line;
        if ctx.in_test(line)
            || fn_regions
                .iter()
                .any(|(name, a, b)| line >= *a && line <= *b && EXEMPT_FNS.contains(&name.as_str()))
        {
            k += 1;
            continue;
        }
        let mut offenders: Vec<String> = Vec::new();
        // Scan a bounded window on each side of the operator.
        let lo = k.saturating_sub(10);
        let hi = (k + 10).min(toks.len());
        for (idx, t) in toks[lo..hi].iter().enumerate() {
            let abs = lo + idx;
            if abs == k {
                continue;
            }
            // Stop the window at statement boundaries between the
            // candidate and the operator.
            let between = if abs < k { abs + 1..k } else { k + 1..abs };
            if toks[between.clone()]
                .iter()
                .any(|b| BOUNDARY.contains(&b.text.as_str()))
            {
                continue;
            }
            if t.kind == TokKind::Ident && CT_SECRET_IDENTS.contains(&t.text.as_str()) {
                // `.len()` / `.is_empty()` on the secret is public.
                let next2: Vec<&str> = toks[abs + 1..(abs + 3).min(toks.len())]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                if next2.first() == Some(&".")
                    && matches!(next2.get(1), Some(&"len") | Some(&"is_empty"))
                {
                    continue;
                }
                offenders.push(t.text.clone());
            }
        }
        if !offenders.is_empty() {
            let op = toks[k].text.clone();
            ctx.emit(
                "R9",
                line,
                format!(
                    "variable-time `{op}` on secret-derived data ({}): use ct_eq",
                    offenders.join(", ")
                ),
            );
        }
        k += 1;
    }
}

/// `(fn name, start line, end line)` for every function body.
fn fn_regions(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: Option<String> = None;
    let mut stack: Vec<(String, i64, usize)> = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind == TokKind::Ident && toks[k].text == "fn" {
            if let Some(name) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                pending = Some(name.text.clone());
            }
        }
        match toks[k].text.as_str() {
            "{" => {
                if let Some(name) = pending.take() {
                    stack.push((name, depth, toks[k].line));
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if let Some((_, d, _)) = stack.last() {
                    if *d == depth {
                        let (name, _, start) = stack.pop().unwrap();
                        out.push((name, start, toks[k].line));
                    }
                }
            }
            ";" => {
                // Trait method signature without body.
                pending = None;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = analyze_file(path, src)
            .findings
            .iter()
            .map(|f| f.rule)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    #[test]
    fn clean_file_has_no_findings() {
        let report = analyze_file(
            "crates/core/src/metrics.rs",
            "pub fn count(x: u64) -> u64 { x + 1 }\n",
        );
        assert!(report.findings.is_empty());
        assert!(report.suppressions.is_empty());
    }

    #[test]
    fn ua_referencing_item_api_fires_r1() {
        let src = "use crate::ids::PlaintextItemId;\nfn f(_x: &PlaintextItemId) {}\n";
        assert_eq!(rules_fired("crates/core/src/ua.rs", src), vec!["R1"]);
        // Same content in a non-layer file is fine (single-domain).
        assert!(rules_fired("crates/core/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn string_mention_does_not_fire() {
        let src = "fn f() -> &'static str { \"PlaintextItemId\" }\n";
        assert!(rules_fired("crates/core/src/ua.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_moves_finding_to_suppression() {
        let src = "// analysis-allow: R1 simulation of breach for docs\nuse crate::ids::PlaintextItemId;\n";
        let report = analyze_file("crates/core/src/ua.rs", src);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].rule, "R1");
        assert!(report.suppressions[0].reason.contains("simulation"));
    }

    #[test]
    fn relaxed_needs_justification() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(
            rules_fired("crates/core/src/telemetry/x.rs", bad),
            vec!["R7"]
        );
        let same_line =
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } // relaxed-ok: counter\n";
        assert!(rules_fired("crates/core/src/telemetry/x.rs", same_line).is_empty());
        let block_above = "fn f(a: &AtomicU64) {\n    // relaxed-ok: independent counter, no\n    // ordering needed across fields\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(rules_fired("crates/core/src/telemetry/x.rs", block_above).is_empty());
    }

    #[test]
    fn seqlock_relaxed_version_load_fires_r8() {
        // relaxed-ok silences R7; R8 still rejects the protocol breach.
        let src =
            "fn f(s: &Slot) { let v = s.version.load(Ordering::Relaxed); } // relaxed-ok: wrong\n";
        assert_eq!(
            rules_fired("crates/core/src/telemetry/x.rs", src),
            vec!["R8"]
        );
        let good = "fn f(s: &Slot) { let v = s.version.load(Ordering::Acquire); }\n";
        assert!(rules_fired("crates/core/src/telemetry/x.rs", good).is_empty());
    }

    #[test]
    fn compare_exchange_success_ordering_checked() {
        let bad = "fn f(s: &Slot) { let _ = s.version.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed); } // relaxed-ok: wrong\n";
        assert_eq!(
            rules_fired("crates/core/src/telemetry/x.rs", bad),
            vec!["R8"]
        );
        let good = "fn f(s: &Slot) {\n    // relaxed-ok: failure path retries\n    let _ = s.version.compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed);\n}\n";
        assert!(rules_fired("crates/core/src/telemetry/x.rs", good).is_empty());
    }

    #[test]
    fn non_ct_compare_fires_and_ct_eq_is_exempt() {
        let bad = "pub fn check(tag: &[u8], other: &[u8]) -> bool { tag == other }\n";
        assert_eq!(rules_fired("crates/crypto/src/x.rs", bad), vec!["R9"]);
        let exempt = "pub fn ct_eq(a: &[u8], b: &[u8]) -> bool { let tag = a; tag == b }\n";
        assert!(rules_fired("crates/crypto/src/x.rs", exempt).is_empty());
        let len_ok = "pub fn f(key_bytes: &[u8]) -> bool { key_bytes.len() == 32 }\n";
        assert!(rules_fired("crates/crypto/src/x.rs", len_ok).is_empty());
    }

    #[test]
    fn format_interpolation_detected() {
        let src = "fn f(k_u: &Key) { let _ = format!(\"key is {k_u:?}\"); }\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", src), vec!["R5"]);
        let direct = "fn f(secrets: &Bag) { println!(\"{}\", secrets); }\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", direct), vec!["R5"]);
        let clean = "fn f(count: u64) { println!(\"{count}\"); }\n";
        assert!(rules_fired("crates/core/src/x.rs", clean).is_empty());
    }

    #[test]
    fn e2e_record_span_fires_r6() {
        let src =
            "fn f(t: &Telemetry) { t.record_span(SpanRecord { stage: Stage::E2e, ok: true }); }\n";
        assert_eq!(rules_fired("crates/core/src/pipeline.rs", src), vec!["R6"]);
        let duration = "fn f(t: &Telemetry) { t.record_duration(Stage::E2e, us); }\n";
        assert!(rules_fired("crates/core/src/pipeline.rs", duration).is_empty());
    }

    #[test]
    fn wire_scrape_wall_clock_fires_r6() {
        // The scrape plane counts as telemetry internals: an unmarked
        // wall-clock read there is an arrival oracle in the making.
        let bad = "fn f(m: &NodeMetrics) { let now = Instant::now(); m.stamp(now); }\n";
        assert_eq!(rules_fired("crates/wire/src/scrape.rs", bad), vec!["R6"]);
        // Same code elsewhere in the wire crate is not telemetry.
        assert!(rules_fired("crates/wire/src/server.rs", bad).is_empty());
        // The allow-listed uptime epoch stays silent.
        let epoch = "fn f() {\n    // analysis-allow: R6 uptime origin, not a per-request timestamp\n    let started = Instant::now();\n}\n";
        assert!(rules_fired("crates/wire/src/scrape.rs", epoch).is_empty());
    }

    #[test]
    fn derive_debug_on_secret_type_fires_r4() {
        let src = "#[derive(Debug, Clone)]\npub struct SymmetricKey { bytes: [u8; 32] }\n";
        assert_eq!(rules_fired("crates/crypto/src/x.rs", src), vec!["R4"]);
        let manual = "pub struct SymmetricKey { bytes: [u8; 32] }\nimpl std::fmt::Debug for SymmetricKey { }\n";
        assert!(rules_fired("crates/crypto/src/x.rs", manual).is_empty());
        let display = "impl std::fmt::Display for GetTicket { }\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", display), vec!["R4"]);
    }

    #[test]
    fn cross_layer_detected_outside_allowlist() {
        let src = "fn join(u: &PlaintextUserId, i: &PlaintextItemId) {}\n";
        assert_eq!(rules_fired("crates/core/src/metrics.rs", src), vec!["R3"]);
        assert!(rules_fired("crates/core/src/client.rs", src).is_empty());
        assert!(rules_fired("crates/workload/src/gen.rs", src).is_empty());
    }
}
