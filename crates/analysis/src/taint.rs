//! R10: intra-procedural secret taint.
//!
//! R4/R5 are name-based: they catch `format!("{k_u:?}")` because `k_u`
//! is on a deny list. They miss laundering through a binding:
//!
//! ```text
//! let k = key.expose();
//! debug!("{k:?}");          // `k` is not on any name list
//! ```
//!
//! R10 closes that gap with a conservative, declaration-order dataflow
//! pass over each function body:
//!
//! * **Sources** — parameters whose declared type names a
//!   [`crate::rules::SECRET_TYPES`] entry; `let` bindings whose
//!   right-hand side mentions a secret type, an already-tainted binding,
//!   or an expose-family call (`expose` / `expose_mut` / `into_exposed`
//!   — only secret wrappers have those).
//! * **Propagation** — a tainted identifier anywhere in a `let`
//!   right-hand side taints the new binding (method chains included:
//!   `let k = key.expose().to_vec()` stays tainted).
//! * **Sanitizers** — a right-hand side that calls a declassifying
//!   transform ([`SANITIZERS`]: length, ciphertext-producing crypto,
//!   digests, constant-time compares) is *not* tainted: its output is
//!   public by design. Rebinding a name to a clean value clears taint.
//! * **Sinks** — format/log macros ([`SINK_MACROS`]), telemetry
//!   recorders, and serialization calls ([`SINK_CALLS`]). A tainted
//!   identifier reaching a sink — as a direct argument, a `{name}`
//!   interpolation, or a method receiver (`k.to_json()`) — is a finding,
//!   unless the only use is a sanitizing accessor (`k.len()`).
//!
//! The pass is intra-procedural and single-sweep (taint flows down the
//! function in declaration order); it over-approximates inside nested
//! blocks and never tracks flow *between* functions — cross-function
//! secret movement is what the R1–R3 layer rules and the type system
//! already police. Test regions are exempt: tests format secrets
//! precisely to assert redaction.

use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;
use crate::rules::SECRET_TYPES;
use std::collections::BTreeSet;

/// Methods that move secret bytes out of their zeroizing wrapper. Only
/// secret types expose these names in this workspace, so a call taints
/// unconditionally.
pub const EXPOSE_METHODS: &[&str] = &["expose", "expose_mut", "into_exposed"];

/// Secret types that do *not* seed taint. `SecureRng` guards its seed
/// and state (R4 still bans `Debug` on it), but everything it *returns*
/// — nonces, ciphertext randomness — is public by design; tainting its
/// callers would flag every benchmark that threads an RNG through its
/// measurement loop. State extraction still taints via [`EXPOSE_METHODS`].
pub const TAINT_EXEMPT_TYPES: &[&str] = &["SecureRng"];

/// Declassifying transforms: their output is public by construction
/// (lengths, ciphertext, digests, constant-time verdicts), so a
/// right-hand side routed through one does not taint its binding.
pub const SANITIZERS: &[&str] = &[
    "len",
    "is_empty",
    "seal",
    "seal_bytes",
    "open",
    "encrypt",
    "det_encrypt",
    "rsa_encrypt",
    "pseudonymize",
    "pseudonymize_item",
    "digest",
    "sha256",
    "hmac",
    "fingerprint",
    "ct_eq",
    "verify_tag",
    "redacted",
    // The UA/IA layer transforms are the system's declassifiers: their
    // outputs are pseudonymized / re-encrypted by construction, which is
    // exactly the property the unlinkability suites verify end-to-end.
    "process",
    "process_post",
    "process_get",
];

/// Format/log macros: anything reaching one is rendered into text that
/// can end up in logs or panics.
pub const SINK_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "panic", "debug",
    "info", "warn", "error", "trace", "log",
];

/// Call sinks: telemetry recorders and serialization — each moves its
/// argument toward an export surface that leaves the trust boundary.
pub const SINK_CALLS: &[&str] = &[
    "record_span",
    "record_duration",
    "to_json",
    "to_value",
    "serialize",
    "export_prometheus",
];

/// A candidate R10 violation (the caller routes it through the
/// suppression directive machinery).
#[derive(Debug)]
pub struct TaintHit {
    /// 1-based line of the sink.
    pub line: usize,
    /// What leaked where.
    pub message: String,
}

/// Runs the taint pass over every function in `file`.
pub fn analyze(file: &ParsedFile) -> Vec<TaintHit> {
    let mut out = Vec::new();
    // Integration-test files format secrets on purpose (to assert they
    // redact); only library/binary sources are held to R10.
    if file.path.contains("/tests/") || file.path.starts_with("tests/") {
        return out;
    }
    for f in &file.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if file.in_test(f.start_line) {
            continue;
        }
        let toks = &file.lex.tokens;
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        for p in &f.params {
            if p.name != "self" && p.type_idents.iter().any(|t| taint_source_type(t)) {
                tainted.insert(p.name.clone());
            }
        }
        let mut k = open;
        while k <= close {
            let t = &toks[k];
            if t.kind != TokKind::Ident {
                k += 1;
                continue;
            }
            // `let [mut] name … = rhs ;` — (re)bind taint from the rhs,
            // then resume the walk *inside* the rhs: sinks live there too
            // (`let _ = format!("{k:?}");`).
            if t.text == "let" {
                if let Some((name, rhs, _next)) = parse_let(toks, k, close) {
                    if rhs_tainted(toks, &rhs, &tainted) {
                        tainted.insert(name);
                    } else {
                        tainted.remove(&name);
                    }
                    k = rhs.0;
                    continue;
                }
            }
            // Macro sink: `name ! ( … )`.
            if SINK_MACROS.contains(&t.text.as_str())
                && toks.get(k + 1).map(|t| t.text == "!").unwrap_or(false)
                && toks
                    .get(k + 2)
                    .map(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
                    .unwrap_or(false)
            {
                let end = scan_args(toks, k + 2, close, &tainted, &mut |line, name| {
                    out.push(TaintHit {
                        line,
                        message: format!(
                            "secret-derived `{name}` reaches `{}!` (taint from this function's \
                             secret inputs)",
                            t.text
                        ),
                    });
                });
                k = end.max(k + 1);
                continue;
            }
            // Call sink: `name ( … )` or `.name ( … )`.
            if SINK_CALLS.contains(&t.text.as_str())
                && toks.get(k + 1).map(|t| t.text == "(").unwrap_or(false)
            {
                // A tainted receiver is itself a leak: `k.to_json()`.
                if k >= 2 && toks[k - 1].text == "." && tainted.contains(&toks[k - 2].text) {
                    out.push(TaintHit {
                        line: t.line,
                        message: format!(
                            "secret-derived `{}` is serialized via `.{}()`",
                            toks[k - 2].text,
                            t.text
                        ),
                    });
                }
                let end = scan_args(toks, k + 1, close, &tainted, &mut |line, name| {
                    out.push(TaintHit {
                        line,
                        message: format!("secret-derived `{name}` reaches sink `{}`", t.text),
                    });
                });
                k = end.max(k + 1);
                continue;
            }
            k += 1;
        }
    }
    out
}

/// Parses `let [mut] name [: ty] = rhs ;` starting at the `let` token.
/// Returns the binding name, the rhs token range, and the index after the
/// terminating `;`. `None` for `let … else`, destructuring, or bodies the
/// walk should just continue through token-by-token.
fn parse_let(
    toks: &[Tok],
    let_idx: usize,
    close: usize,
) -> Option<(String, (usize, usize), usize)> {
    let mut j = let_idx + 1;
    if toks.get(j).map(|t| t.text == "mut").unwrap_or(false) {
        j += 1;
    }
    let name_tok = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
    let name = name_tok.text.clone();
    j += 1;
    // Skip a `: Type` annotation (no parens/commas matter before `=`).
    while j <= close && !matches!(toks[j].text.as_str(), "=" | ";" | "{" | "}") {
        j += 1;
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    let rhs_start = j + 1;
    let mut depth = 0i64;
    let mut m = rhs_start;
    while m <= close {
        match toks[m].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => {
                return Some((name, (rhs_start, m.saturating_sub(1)), m + 1));
            }
            _ => {}
        }
        m += 1;
    }
    None
}

/// Whether the rhs token range carries taint: mentions a secret type, a
/// tainted binding, or an expose call — unless routed through a
/// sanitizing transform.
fn rhs_tainted(toks: &[Tok], rhs: &(usize, usize), tainted: &BTreeSet<String>) -> bool {
    let (lo, hi) = *rhs;
    let mut has_taint = false;
    for k in lo..=hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = toks.get(k + 1).map(|n| n.text == "(").unwrap_or(false);
        if called && SANITIZERS.contains(&t.text.as_str()) {
            return false;
        }
        if taint_source_type(&t.text)
            || tainted.contains(&t.text)
            || (called && EXPOSE_METHODS.contains(&t.text.as_str()))
        {
            has_taint = true;
        }
    }
    has_taint
}

/// Whether a type identifier seeds taint: a secret type that is not on
/// the [`TAINT_EXEMPT_TYPES`] carve-out.
fn taint_source_type(name: &str) -> bool {
    SECRET_TYPES.contains(&name) && !TAINT_EXEMPT_TYPES.contains(&name)
}

/// Scans a delimited argument list for tainted identifiers (direct or
/// `{name}`-interpolated); invokes `hit` for each. Returns the index just
/// past the closing delimiter.
fn scan_args(
    toks: &[Tok],
    open: usize,
    close: usize,
    tainted: &BTreeSet<String>,
    hit: &mut dyn FnMut(usize, &str),
) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j <= close {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        match toks[j].kind {
            TokKind::Ident if tainted.contains(&toks[j].text) => {
                // `k.len()` inside the args is the sanitized length, not
                // the secret.
                let sanitized_use = toks.get(j + 1).map(|t| t.text == ".").unwrap_or(false)
                    && toks
                        .get(j + 2)
                        .map(|t| SANITIZERS.contains(&t.text.as_str()))
                        .unwrap_or(false)
                    && toks.get(j + 3).map(|t| t.text == "(").unwrap_or(false);
                if !sanitized_use {
                    hit(toks[j].line, &toks[j].text);
                }
            }
            TokKind::Str => {
                for name in crate::rules::interpolated_idents(&toks[j].text) {
                    if tainted.contains(&name) {
                        hit(toks[j].line, &name);
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn hits(src: &str) -> Vec<TaintHit> {
        analyze(&parse_source("crates/core/src/x.rs", src))
    }

    #[test]
    fn laundered_expose_reaches_format() {
        let src = "fn f(key: &SecretBytes) {\n    let k = key.expose();\n    let _ = format!(\"{k:?}\");\n}\n";
        let h = hits(src);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].line, 3);
        assert!(h[0].message.contains("`k`"));
    }

    #[test]
    fn taint_flows_through_chained_bindings() {
        let src = "fn f(key: &SecretBytes) {\n    let a = key.expose();\n    let b = a.to_vec();\n    println!(\"{}\", b[0]);\n}\n";
        assert_eq!(hits(src).len(), 1);
    }

    #[test]
    fn sanitizer_breaks_taint() {
        let src = "fn f(key: &SecretBytes) {\n    let n = key.len();\n    println!(\"{n}\");\n    let d = sha256(key.expose());\n    println!(\"{d:?}\");\n}\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn direct_len_use_in_sink_is_clean() {
        let src = "fn f(key: &SecretBytes) { println!(\"{}\", key.len()); }\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn secret_param_direct_to_sink_fires() {
        let src = "fn f(ticket: &GetTicket) { let _ = format!(\"{ticket:?}\"); }\n";
        assert_eq!(hits(src).len(), 1);
    }

    #[test]
    fn serialization_sink_fires_on_receiver_and_arg() {
        let src = "fn f(env: ClientEnvelope) {\n    let e = env;\n    let _ = e.to_json();\n    let _ = to_value(e);\n}\n";
        let h = hits(src);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn rebinding_clears_taint() {
        let src = "fn f(key: &SecretBytes) {\n    let k = key.expose();\n    let k = 42;\n    println!(\"{k}\");\n}\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn test_regions_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(key: &SecretBytes) { let k = key.expose(); let _ = format!(\"{k:?}\"); }\n}\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn untainted_function_is_silent() {
        let src = "fn f(count: u64) { let c = count + 1; println!(\"{c}\"); }\n";
        assert!(hits(src).is_empty());
    }
}
