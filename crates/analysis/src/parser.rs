//! A brace/scope-aware function parser over the token stream.
//!
//! The v1 rules are per-line lexical checks; the v2 rules (R10–R13) need
//! *function scope*: which parameters a function takes (and their types),
//! where its body starts and ends, and which calls it makes. This module
//! recovers exactly that from the [`crate::lexer`] token stream — no full
//! AST, no `syn` (offline build), just balanced-delimiter walking.
//!
//! The recovered model is deliberately conservative:
//!
//! * nested `fn` items are reported as their own entries *and* remain
//!   inside the enclosing body's token range (a scan of the outer body
//!   sees the inner tokens too — over-approximation, never a miss);
//! * closures are not functions; their tokens belong to the enclosing
//!   body;
//! * a call is "identifier directly followed by `(`", plus the
//!   `receiver.method(` form — enum-variant constructors match too,
//!   which is harmless for the rules built on top (they resolve names
//!   against known workspace functions).

use crate::lexer::{self, LexedFile, Tok, TokKind};

/// One function parameter: the binding name and the identifiers that
/// appear in its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name (`self` for receiver parameters; the first pattern
    /// identifier for destructuring patterns).
    pub name: String,
    /// Every identifier appearing in the declared type, in order.
    pub type_idents: Vec<String>,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Parameters, in declaration order.
    pub params: Vec<Param>,
    /// Token indices of the body's `{` and matching `}`; `None` for
    /// bodiless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace (or of the signature for
    /// bodiless items).
    pub end_line: usize,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (the method name for `receiver.method(...)`).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
    /// Whether this is a method call (`.name(`) rather than a free call.
    pub method: bool,
}

/// A fully parsed source file: the lexed stream plus the recovered
/// function structure, ready for both the per-file and the global rules.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// Lexed token stream and per-line comments.
    pub lex: LexedFile,
    /// `#[cfg(test)]` line regions.
    pub test_regions: Vec<(usize, usize)>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnInfo>,
}

impl ParsedFile {
    /// Whether `line` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, line: usize) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }
}

/// Lexes and parses one source file.
pub fn parse_source(path: &str, source: &str) -> ParsedFile {
    let lex = lexer::lex(source);
    let test_regions = lexer::test_regions(&lex);
    let fns = functions(&lex.tokens);
    ParsedFile {
        path: path.to_string(),
        lex,
        test_regions,
        fns,
    }
}

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "let", "else", "move",
    "where", "impl", "dyn", "pub", "use", "mod",
];

/// Parses every `fn` item out of the token stream.
pub fn functions(toks: &[Tok]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if !(toks[k].kind == TokKind::Ident && toks[k].text == "fn") {
            k += 1;
            continue;
        }
        let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        let name = name_tok.text.clone();
        let start_line = toks[k].line;
        let mut j = k + 2;
        // Skip generics `<...>` (the lexer never fuses `>>`, and `->` is
        // a single token, so naive depth counting is sound here).
        if toks.get(j).map(|t| t.text == "<").unwrap_or(false) {
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).map(|t| t.text == "(").unwrap_or(false) {
            k += 1;
            continue;
        }
        let (params, after_params) = parse_params(toks, j);
        // Find the body `{` or the signature-terminating `;`. Return
        // types and where-clauses contain no braces, so the first hit is
        // the right one.
        let mut body = None;
        let mut end_line = toks
            .get(after_params.saturating_sub(1))
            .map_or(start_line, |t| t.line);
        let mut m = after_params;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "{" => {
                    let close = match_brace(toks, m);
                    end_line = toks.get(close).map_or(end_line, |t| t.line);
                    body = Some((m, close));
                    break;
                }
                ";" => break,
                _ => m += 1,
            }
        }
        out.push(FnInfo {
            name,
            params,
            body,
            start_line,
            end_line,
        });
        k += 2;
    }
    out
}

/// Parses the parameter list starting at the `(` token index; returns the
/// parameters and the index just past the closing `)`.
fn parse_params(toks: &[Tok], open: usize) -> (Vec<Param>, usize) {
    let mut params = Vec::new();
    let mut paren: i64 = 0;
    let mut angle: i64 = 0;
    let mut bracket: i64 = 0;
    let mut current: Vec<&Tok> = Vec::new();
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" => {
                paren += 1;
                if paren > 1 {
                    current.push(t);
                }
            }
            ")" => {
                paren -= 1;
                if paren == 0 {
                    if !current.is_empty() {
                        params.push(parse_one_param(&current));
                    }
                    return (params, j + 1);
                }
                current.push(t);
            }
            "<" => {
                angle += 1;
                current.push(t);
            }
            ">" => {
                angle -= 1;
                current.push(t);
            }
            "[" => {
                bracket += 1;
                current.push(t);
            }
            "]" => {
                bracket -= 1;
                current.push(t);
            }
            "," if paren == 1 && angle <= 0 && bracket == 0 => {
                if !current.is_empty() {
                    params.push(parse_one_param(&current));
                }
                current.clear();
                // Generic-depth bookkeeping can drift on `Fn(..) -> ..`
                // bounds; reset at each top-level comma so one odd type
                // cannot swallow the rest of the list.
                angle = 0;
            }
            _ => current.push(t),
        }
        j += 1;
    }
    (params, j)
}

/// Parses one comma-separated parameter: binding name before the
/// top-level `:`, type identifiers after it.
fn parse_one_param(toks: &[&Tok]) -> Param {
    let colon = toks.iter().position(|t| t.text == ":");
    let name = toks[..colon.unwrap_or(toks.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "_".to_string());
    let type_idents = match colon {
        Some(c) => toks[c + 1..]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect(),
        None => Vec::new(), // `self` receivers carry no written type
    };
    Param { name, type_idents }
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Extracts every call site in `toks[range.0..=range.1]`.
pub fn calls_in(toks: &[Tok], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (lo, hi) = range;
    let mut k = lo;
    while k <= hi && k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            // `name (`, `name::<..>(`, or `.name(` — but not `fn name(`
            // and not `name!(` (macros are scanned by the macro rules).
            let prev_is_fn = k > 0 && toks[k - 1].text == "fn";
            let method = k > 0 && toks[k - 1].text == ".";
            let mut n = k + 1;
            if toks.get(n).map(|t| t.text == "::").unwrap_or(false)
                && toks.get(n + 1).map(|t| t.text == "<").unwrap_or(false)
            {
                let mut depth = 0i64;
                while n < toks.len() {
                    match toks[n].text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                n += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    n += 1;
                }
            }
            let is_call = toks.get(n).map(|t| t.text == "(").unwrap_or(false)
                && !prev_is_fn
                && !toks.get(k + 1).map(|t| t.text == "!").unwrap_or(false);
            if is_call {
                out.push(Call {
                    name: t.text.clone(),
                    tok: k,
                    line: t.line,
                    method,
                });
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_fn_names_params_and_bodies() {
        let src = "pub fn io_loop(conn_rx: Receiver<TcpStream>, stop: Arc<AtomicBool>) -> u64 {\n    let x = 1;\n    x\n}\nfn sig_only(a: u8);\n";
        let lexed = lex(src);
        let fns = functions(&lexed.tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "io_loop");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[0].name, "conn_rx");
        assert_eq!(
            fns[0].params[0].type_idents,
            vec!["Receiver".to_string(), "TcpStream".to_string()]
        );
        assert_eq!(fns[0].params[1].name, "stop");
        assert!(fns[0].body.is_some());
        assert_eq!(fns[0].start_line, 1);
        assert_eq!(fns[0].end_line, 4);
        assert_eq!(fns[1].name, "sig_only");
        assert!(fns[1].body.is_none());
    }

    #[test]
    fn generic_params_do_not_split_on_inner_commas() {
        let src = "fn f(map: HashMap<u64, Conn>, n: usize) {}\n";
        let fns = functions(&lex(src).tokens);
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(
            fns[0].params[0].type_idents,
            vec!["HashMap".to_string(), "u64".to_string(), "Conn".to_string()]
        );
    }

    #[test]
    fn self_receiver_and_pattern_params() {
        let src = "impl X { fn m(&self, key: &SecretBytes) -> usize { key.len() } }\n";
        let fns = functions(&lex(src).tokens);
        assert_eq!(fns[0].params[0].name, "self");
        assert!(fns[0].params[0].type_idents.is_empty());
        assert_eq!(fns[0].params[1].name, "key");
        assert_eq!(
            fns[0].params[1].type_idents,
            vec!["SecretBytes".to_string()]
        );
    }

    #[test]
    fn calls_found_macros_and_defs_excluded() {
        let src = "fn f() { g(); h.method(); format!(\"x\"); if x() {} }\nfn g() {}\n";
        let lexed = lex(src);
        let fns = functions(&lexed.tokens);
        let body = fns[0].body.unwrap();
        let calls = calls_in(&lexed.tokens, body);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"g"));
        assert!(names.contains(&"method"));
        assert!(names.contains(&"x"));
        assert!(!names.contains(&"format"));
        assert!(calls.iter().find(|c| c.name == "method").unwrap().method);
    }

    #[test]
    fn generic_fn_and_turbofish() {
        let src = "fn f<T: Clone>(x: T) { y::<u64>(); }\n";
        let lexed = lex(src);
        let fns = functions(&lexed.tokens);
        assert_eq!(fns[0].name, "f");
        assert_eq!(fns[0].params[0].name, "x");
        let calls = calls_in(&lexed.tokens, fns[0].body.unwrap());
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "y");
    }

    #[test]
    fn nested_fn_is_its_own_entry() {
        let src = "fn outer() {\n    fn inner(k: Key) {}\n    inner(k());\n}\n";
        let fns = functions(&lex(src).tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[1].name, "inner");
    }
}
