//! Machine-readable analysis report.
//!
//! The report is deliberately deterministic — no timestamps, stable key
//! and entry ordering — so the committed `results/ANALYSIS_report.json`
//! only changes when the analysis outcome changes, and CI can diff it
//! meaningfully.

use crate::rules::{Finding, Suppression, RULES};
use pprox_json::Value;

/// Schema tag checked by [`validate`].
pub const SCHEMA: &str = "pprox-analysis-report-v1";

/// Aggregated result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// All directive suppressions, sorted by (path, line, rule).
    pub suppressions: Vec<Suppression>,
}

impl Report {
    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Whether the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes to the v1 JSON schema.
    pub fn to_value(&self) -> Value {
        let rule_counts = Value::object(RULES.iter().map(|(id, _)| {
            let n = self.findings.iter().filter(|f| f.rule == *id).count() as u64;
            (*id, Value::from(n))
        }));
        let rule_names = Value::object(RULES.iter().map(|(id, name)| (*id, Value::from(*name))));
        Value::object([
            ("schema", Value::from(SCHEMA)),
            ("files_scanned", Value::from(self.files_scanned as u64)),
            (
                "status",
                Value::from(if self.is_clean() {
                    "clean"
                } else {
                    "violations"
                }),
            ),
            ("rule_names", rule_names),
            ("rule_counts", rule_counts),
            (
                "findings",
                self.findings
                    .iter()
                    .map(|f| {
                        Value::object([
                            ("rule", Value::from(f.rule)),
                            ("path", Value::from(f.path.as_str())),
                            ("line", Value::from(f.line as u64)),
                            ("message", Value::from(f.message.as_str())),
                        ])
                    })
                    .collect(),
            ),
            (
                "suppressions",
                self.suppressions
                    .iter()
                    .map(|s| {
                        Value::object([
                            ("rule", Value::from(s.rule)),
                            ("path", Value::from(s.path.as_str())),
                            ("line", Value::from(s.line as u64)),
                            ("reason", Value::from(s.reason.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ])
    }
}

/// Validates a serialized report: schema tag, internal count consistency,
/// and status coherence. Mirrors the telemetry snapshot validator: CI
/// refuses a hand-edited or stale report.
pub fn validate(text: &str) -> Result<(), String> {
    let v = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema`")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` != `{SCHEMA}`"));
    }
    v.get("files_scanned")
        .and_then(Value::as_u64)
        .ok_or("missing `files_scanned`")?;
    let status = v
        .get("status")
        .and_then(Value::as_str)
        .ok_or("missing `status`")?;
    let findings = v
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("missing `findings`")?;
    let suppressions = v
        .get("suppressions")
        .and_then(Value::as_array)
        .ok_or("missing `suppressions`")?;
    let counts = v
        .get("rule_counts")
        .and_then(Value::as_object)
        .ok_or("missing `rule_counts`")?;
    for (id, _) in RULES {
        if !counts.contains_key(*id) {
            return Err(format!("rule_counts missing `{id}`"));
        }
    }
    let total: u64 = counts.values().filter_map(Value::as_u64).sum();
    if total != findings.len() as u64 {
        return Err(format!(
            "rule_counts sum {total} != findings length {}",
            findings.len()
        ));
    }
    for (what, entries, value_key) in [
        ("finding", findings, "message"),
        ("suppression", suppressions, "reason"),
    ] {
        for e in entries {
            for key in ["rule", "path", value_key] {
                if e.get(key).and_then(Value::as_str).is_none() {
                    return Err(format!("{what} missing string `{key}`"));
                }
            }
            if e.get("line").and_then(Value::as_u64).is_none() {
                return Err(format!("{what} missing numeric `line`"));
            }
        }
    }
    let expect_status = if findings.is_empty() {
        "clean"
    } else {
        "violations"
    };
    if status != expect_status {
        return Err(format!(
            "status `{status}` inconsistent with {} findings",
            findings.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: "R1",
            path: "crates/core/src/ua.rs".into(),
            line: 10,
            message: "test".into(),
        });
        r.suppressions.push(Suppression {
            rule: "R6",
            path: "crates/core/src/telemetry/mod.rs".into(),
            line: 35,
            reason: "epoch anchor".into(),
        });
        r.sort();
        r
    }

    #[test]
    fn roundtrip_validates() {
        let json = sample().to_value().to_json();
        validate(&json).unwrap();
    }

    #[test]
    fn clean_report_validates() {
        let r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        validate(&r.to_value().to_json()).unwrap();
    }

    #[test]
    fn tampered_counts_rejected() {
        let json = sample()
            .to_value()
            .to_json()
            .replace("\"R1\":1", "\"R1\":0");
        assert!(validate(&json).unwrap_err().contains("rule_counts sum"));
    }

    #[test]
    fn tampered_status_rejected() {
        let json = sample()
            .to_value()
            .to_json()
            .replace("\"status\":\"violations\"", "\"status\":\"clean\"");
        assert!(validate(&json).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn output_is_deterministic() {
        let a = sample().to_value().to_json();
        let b = sample().to_value().to_json();
        assert_eq!(a, b);
    }
}
