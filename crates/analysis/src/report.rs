//! Machine-readable analysis report (v2) and the suppression budget.
//!
//! The report is deliberately deterministic — no timestamps, stable key
//! and entry ordering — so the committed `results/ANALYSIS_report.json`
//! only changes when the analysis outcome changes, and CI can diff it
//! meaningfully. v2 extends v1 with the embedded lock-order graph (R11),
//! the panic-site classification (R13), and per-rule suppression counts
//! — the last of which feed the **ratchet**: the committed
//! `results/ANALYSIS_budget.json` caps how many `analysis-allow:`
//! directives each rule may carry, so suppressions can only grow when
//! the budget file is updated (and reviewed) in the same change.

use crate::locks::{LockGraph, PanicClassification};
use crate::rules::{Finding, Suppression, RULES};
use pprox_json::Value;
use std::collections::BTreeMap;

/// Schema tag checked by [`validate`].
pub const SCHEMA: &str = "pprox-analysis-report-v2";

/// Schema tag of the suppression budget file.
pub const BUDGET_SCHEMA: &str = "pprox-analysis-budget-v1";

/// Aggregated result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// All directive suppressions, sorted by (path, line, rule).
    pub suppressions: Vec<Suppression>,
    /// The workspace lock-acquisition graph (R11).
    pub lock_graph: LockGraph,
    /// The R13 panic-site classification for `crates/wire`.
    pub panics: PanicClassification,
}

impl Report {
    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Whether the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule suppression counts (every rule present, zeros included).
    pub fn suppression_counts(&self) -> BTreeMap<&'static str, u64> {
        RULES
            .iter()
            .map(|(id, _)| {
                (
                    *id,
                    self.suppressions.iter().filter(|s| s.rule == *id).count() as u64,
                )
            })
            .collect()
    }

    /// Serializes to the v2 JSON schema.
    pub fn to_value(&self) -> Value {
        let rule_counts = Value::object(RULES.iter().map(|(id, _)| {
            let n = self.findings.iter().filter(|f| f.rule == *id).count() as u64;
            (*id, Value::from(n))
        }));
        let rule_names = Value::object(RULES.iter().map(|(id, name)| (*id, Value::from(*name))));
        let suppression_counts = Value::object(
            self.suppression_counts()
                .into_iter()
                .map(|(id, n)| (id, Value::from(n))),
        );
        let lock_graph = Value::object([
            (
                "nodes",
                self.lock_graph
                    .nodes
                    .iter()
                    .map(|n| Value::from(n.as_str()))
                    .collect(),
            ),
            (
                "edges",
                self.lock_graph
                    .edges
                    .iter()
                    .map(|e| {
                        Value::object([
                            ("from", Value::from(e.from.as_str())),
                            ("to", Value::from(e.to.as_str())),
                            ("path", Value::from(e.path.as_str())),
                            ("line", Value::from(e.line as u64)),
                        ])
                    })
                    .collect(),
            ),
            ("cycle_free", Value::from(self.lock_graph.cycle_free)),
        ]);
        let panics = Value::object([
            ("total", Value::from(self.panics.total as u64)),
            ("request_path", Value::from(self.panics.request_path as u64)),
            ("test", Value::from(self.panics.test as u64)),
            ("other", Value::from(self.panics.other as u64)),
        ]);
        Value::object([
            ("schema", Value::from(SCHEMA)),
            ("files_scanned", Value::from(self.files_scanned as u64)),
            (
                "status",
                Value::from(if self.is_clean() {
                    "clean"
                } else {
                    "violations"
                }),
            ),
            ("rule_names", rule_names),
            ("rule_counts", rule_counts),
            ("suppression_counts", suppression_counts),
            ("lock_graph", lock_graph),
            ("panic_classification", panics),
            (
                "findings",
                self.findings
                    .iter()
                    .map(|f| {
                        Value::object([
                            ("rule", Value::from(f.rule)),
                            ("path", Value::from(f.path.as_str())),
                            ("line", Value::from(f.line as u64)),
                            ("message", Value::from(f.message.as_str())),
                        ])
                    })
                    .collect(),
            ),
            (
                "suppressions",
                self.suppressions
                    .iter()
                    .map(|s| {
                        Value::object([
                            ("rule", Value::from(s.rule)),
                            ("path", Value::from(s.path.as_str())),
                            ("line", Value::from(s.line as u64)),
                            ("reason", Value::from(s.reason.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    /// Serializes the suppression budget matching this report's current
    /// suppression counts (the `--emit-budget` output).
    pub fn budget_value(&self) -> Value {
        Value::object([
            ("schema", Value::from(BUDGET_SCHEMA)),
            (
                "suppressions",
                Value::object(
                    self.suppression_counts()
                        .into_iter()
                        .map(|(id, n)| (id, Value::from(n))),
                ),
            ),
        ])
    }
}

/// Validates a serialized report: schema tag, internal count consistency,
/// lock-graph shape, and status coherence. Mirrors the telemetry snapshot
/// validator: CI refuses a hand-edited or stale report.
pub fn validate(text: &str) -> Result<(), String> {
    let v = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema`")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` != `{SCHEMA}`"));
    }
    v.get("files_scanned")
        .and_then(Value::as_u64)
        .ok_or("missing `files_scanned`")?;
    let status = v
        .get("status")
        .and_then(Value::as_str)
        .ok_or("missing `status`")?;
    let findings = v
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("missing `findings`")?;
    let suppressions = v
        .get("suppressions")
        .and_then(Value::as_array)
        .ok_or("missing `suppressions`")?;
    for (key, entries) in [
        ("rule_counts", findings),
        ("suppression_counts", suppressions),
    ] {
        let counts = v
            .get(key)
            .and_then(Value::as_object)
            .ok_or(format!("missing `{key}`"))?;
        for (id, _) in RULES {
            if !counts.contains_key(*id) {
                return Err(format!("{key} missing `{id}`"));
            }
        }
        let total: u64 = counts.values().filter_map(Value::as_u64).sum();
        if total != entries.len() as u64 {
            return Err(format!(
                "{key} sum {total} != entry count {}",
                entries.len()
            ));
        }
    }
    for (what, entries, value_key) in [
        ("finding", findings, "message"),
        ("suppression", suppressions, "reason"),
    ] {
        for e in entries {
            for key in ["rule", "path", value_key] {
                if e.get(key).and_then(Value::as_str).is_none() {
                    return Err(format!("{what} missing string `{key}`"));
                }
            }
            if e.get("line").and_then(Value::as_u64).is_none() {
                return Err(format!("{what} missing numeric `line`"));
            }
        }
    }
    let graph = v.get("lock_graph").ok_or("missing `lock_graph`")?;
    graph
        .get("nodes")
        .and_then(Value::as_array)
        .ok_or("lock_graph missing `nodes`")?;
    let edges = graph
        .get("edges")
        .and_then(Value::as_array)
        .ok_or("lock_graph missing `edges`")?;
    for e in edges {
        for key in ["from", "to", "path"] {
            if e.get(key).and_then(Value::as_str).is_none() {
                return Err(format!("lock_graph edge missing string `{key}`"));
            }
        }
        if e.get("line").and_then(Value::as_u64).is_none() {
            return Err("lock_graph edge missing numeric `line`".to_string());
        }
    }
    let cycle_free = graph
        .get("cycle_free")
        .and_then(Value::as_bool)
        .ok_or("lock_graph missing `cycle_free`")?;
    let r11 = v
        .get("rule_counts")
        .and_then(|c| c.get("R11"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if !cycle_free && r11 == 0 {
        return Err("lock_graph has a cycle but rule_counts.R11 is 0".to_string());
    }
    let panics = v
        .get("panic_classification")
        .ok_or("missing `panic_classification`")?;
    let mut parts = 0u64;
    for key in ["request_path", "test", "other"] {
        parts += panics
            .get(key)
            .and_then(Value::as_u64)
            .ok_or(format!("panic_classification missing `{key}`"))?;
    }
    let total = panics
        .get("total")
        .and_then(Value::as_u64)
        .ok_or("panic_classification missing `total`")?;
    if total != parts {
        return Err(format!(
            "panic_classification total {total} != sum of parts {parts}"
        ));
    }
    let expect_status = if findings.is_empty() {
        "clean"
    } else {
        "violations"
    };
    if status != expect_status {
        return Err(format!(
            "status `{status}` inconsistent with {} findings",
            findings.len()
        ));
    }
    Ok(())
}

/// Enforces the suppression ratchet: every rule's current suppression
/// count must be within the committed budget. A rule over budget means
/// an `analysis-allow:` directive was added without updating (and
/// thereby surfacing for review) `results/ANALYSIS_budget.json`.
///
/// # Errors
///
/// A description of every rule over budget, or a malformed budget file.
pub fn check_ratchet(report: &Report, budget_text: &str) -> Result<(), String> {
    let v = Value::parse(budget_text).map_err(|e| format!("budget is not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("budget missing `schema`")?;
    if schema != BUDGET_SCHEMA {
        return Err(format!("budget schema `{schema}` != `{BUDGET_SCHEMA}`"));
    }
    let budget = v
        .get("suppressions")
        .and_then(Value::as_object)
        .ok_or("budget missing `suppressions`")?;
    for key in budget.keys() {
        if !RULES.iter().any(|(id, _)| id == key) {
            return Err(format!("budget names unknown rule `{key}`"));
        }
    }
    let mut over: Vec<String> = Vec::new();
    for (rule, current) in report.suppression_counts() {
        let allowed = budget.get(rule).and_then(Value::as_u64).unwrap_or(0);
        if current > allowed {
            over.push(format!(
                "{rule}: {current} suppression(s), budget {allowed}"
            ));
        }
    }
    if over.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "suppression ratchet violated — update results/ANALYSIS_budget.json if the new \
             directive is justified: {}",
            over.join("; ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::LockEdge;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: "R1",
            path: "crates/core/src/ua.rs".into(),
            line: 10,
            message: "test".into(),
        });
        r.suppressions.push(Suppression {
            rule: "R6",
            path: "crates/core/src/telemetry/mod.rs".into(),
            line: 35,
            reason: "epoch anchor".into(),
        });
        r.lock_graph.cycle_free = true;
        r.lock_graph.nodes = vec![
            "wire/scrape.uplinks".into(),
            "wire/balancer.backends".into(),
        ];
        r.lock_graph.edges = vec![LockEdge {
            from: "wire/scrape.uplinks".into(),
            to: "wire/balancer.backends".into(),
            path: "crates/wire/src/scrape.rs".into(),
            line: 367,
        }];
        r.panics = PanicClassification {
            total: 10,
            request_path: 1,
            test: 8,
            other: 1,
        };
        r.sort();
        r
    }

    #[test]
    fn roundtrip_validates() {
        let json = sample().to_value().to_json();
        validate(&json).unwrap();
    }

    #[test]
    fn clean_report_validates() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.lock_graph.cycle_free = true;
        validate(&r.to_value().to_json()).unwrap();
    }

    #[test]
    fn tampered_counts_rejected() {
        let json = sample()
            .to_value()
            .to_json()
            .replace("\"R1\":1", "\"R1\":0");
        assert!(validate(&json).unwrap_err().contains("rule_counts sum"));
    }

    #[test]
    fn tampered_status_rejected() {
        let json = sample()
            .to_value()
            .to_json()
            .replace("\"status\":\"violations\"", "\"status\":\"clean\"");
        assert!(validate(&json).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("not json").is_err());
        let v1 = "{\"schema\": \"pprox-analysis-report-v1\"}";
        assert!(validate(v1).unwrap_err().contains("v2"));
    }

    #[test]
    fn missing_lock_graph_rejected() {
        let json = sample().to_value().to_json().replace("lock_graph", "lg");
        assert!(validate(&json).unwrap_err().contains("lock_graph"));
    }

    #[test]
    fn cyclic_graph_without_r11_finding_rejected() {
        let mut r = sample();
        r.lock_graph.cycle_free = false;
        let err = validate(&r.to_value().to_json()).unwrap_err();
        assert!(err.contains("cycle"));
    }

    #[test]
    fn inconsistent_panic_totals_rejected() {
        let mut r = sample();
        r.panics.total = 99;
        let err = validate(&r.to_value().to_json()).unwrap_err();
        assert!(err.contains("panic_classification"));
    }

    #[test]
    fn output_is_deterministic() {
        let a = sample().to_value().to_json();
        let b = sample().to_value().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn ratchet_passes_at_budget_and_fails_over() {
        let r = sample(); // one R6 suppression
        let at = r.budget_value().to_json();
        check_ratchet(&r, &at).unwrap();
        let zero = "{\"schema\":\"pprox-analysis-budget-v1\",\"suppressions\":{}}";
        let err = check_ratchet(&r, zero).unwrap_err();
        assert!(err.contains("R6"), "{err}");
        let unknown = "{\"schema\":\"pprox-analysis-budget-v1\",\"suppressions\":{\"R99\":1}}";
        assert!(check_ratchet(&r, unknown).unwrap_err().contains("R99"));
    }

    #[test]
    fn budget_emission_round_trips() {
        let r = sample();
        let v = Value::parse(&r.budget_value().to_json()).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(BUDGET_SCHEMA));
        assert_eq!(
            v.get("suppressions")
                .and_then(|s| s.get("R6"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
