//! `pprox-analysis`: a privacy-flow static analyzer for the PProx
//! workspace.
//!
//! PProx's central claim — User–Interest unlinkability (§4.2) — is an
//! information-flow property: UA-side code must never touch item
//! plaintext, IA-side code must never touch user plaintext, and secret
//! material must never reach `Debug` output, format strings, or
//! variable-time comparisons. The type system enforces some of this
//! (`PlaintextUserId` / `PlaintextItemId` / `SecretBytes`), but types
//! cannot stop a `use` statement or a derive. This crate closes the gap
//! with two passes over every crate in the workspace:
//!
//! * a **per-file pass** (R1–R9 lexical structure, R10 function-scope
//!   secret taint — see [`rules`] and [`taint`]);
//! * a **global pass** (R11 lock-order graph, R12 blocking-on-poll-
//!   thread, R13 panic-free request path — see [`locks`]) that needs the
//!   whole parsed workspace at once.
//!
//! The analyzer is deliberately lexical + structural, not a type
//! checker: it keys on the names of layer-private APIs, which the
//! newtypes make unique and grep-able, and on a brace/scope-aware
//! function parser ([`parser`]). False positives are handled by an
//! explicit, audited escape hatch (`// analysis-allow: <rule> <reason>`)
//! that the report surfaces for review — and whose per-rule counts are
//! capped by the committed suppression budget
//! (`results/ANALYSIS_budget.json`, enforced by `--ratchet`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod locks;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

use report::Report;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace members deliberately outside the scan, with the reason.
/// Every member must either be scanned or appear here — the
/// `members_are_scanned_or_exempt` test fails otherwise, so a future
/// crate cannot silently escape analysis.
pub const SCAN_EXEMPT: &[(&str, &str)] = &[];

/// Relative path of the audited lock-order declaration consumed by R11.
pub const LOCK_ORDER_DECL: &str = "crates/analysis/lock_order.txt";

/// Parses the workspace `members = [...]` globs out of the root
/// `Cargo.toml` and expands them against the filesystem, so the scan set
/// tracks the build graph instead of a hard-coded directory list.
///
/// # Errors
///
/// I/O errors reading the manifest or expanding globs.
pub fn workspace_members(root: &Path) -> io::Result<Vec<String>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut globs: Vec<String> = Vec::new();
    if let Some(at) = manifest.find("members") {
        if let Some(open) = manifest[at..].find('[') {
            let rest = &manifest[at + open + 1..];
            let end = rest.find(']').unwrap_or(rest.len());
            for part in rest[..end].split(',') {
                let part = part.trim().trim_matches('"');
                if !part.is_empty() {
                    globs.push(part.to_string());
                }
            }
        }
    }
    let mut members = Vec::new();
    for glob in globs {
        if let Some(prefix) = glob.strip_suffix("/*") {
            let dir = root.join(prefix);
            if !dir.is_dir() {
                continue;
            }
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                if entry.path().join("Cargo.toml").is_file() {
                    members.push(format!("{prefix}/{}", entry.file_name().to_string_lossy()));
                }
            }
        } else {
            members.push(glob);
        }
    }
    members.sort();
    members.dedup();
    Ok(members)
}

/// The directories the workspace scan walks: every manifest member that
/// is not [`SCAN_EXEMPT`], plus the root facade package's `src/` and
/// `tests/`.
///
/// # Errors
///
/// I/O errors reading the manifest.
pub fn scan_roots(root: &Path) -> io::Result<Vec<String>> {
    let mut roots: Vec<String> = workspace_members(root)?
        .into_iter()
        .filter(|m| !SCAN_EXEMPT.iter().any(|(e, _)| e == m))
        .collect();
    for extra in ["src", "tests"] {
        if root.join(extra).is_dir() {
            roots.push(extra.to_string());
        }
    }
    roots.sort();
    roots.dedup();
    Ok(roots)
}

/// Scans the whole workspace under `root` — per-file rules R1–R10 and
/// the global rules R11–R13 — and returns the aggregated,
/// deterministically sorted report.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in scan_roots(root)? {
        let dir = root.join(&top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut parsed: Vec<parser::ParsedFile> = Vec::with_capacity(files.len());
    let mut out = Report::default();
    for file in files {
        let rel = normalize(root, &file);
        let source = fs::read_to_string(&file)?;
        parsed.push(parser::parse_source(&rel, &source));
    }
    for p in &parsed {
        let file_report = rules::analyze_parsed(p);
        out.findings.extend(file_report.findings);
        out.suppressions.extend(file_report.suppressions);
        out.files_scanned += 1;
    }
    let decl = fs::read_to_string(root.join(LOCK_ORDER_DECL)).ok();
    let global = locks::analyze_global(&parsed, decl.as_deref());
    out.findings.extend(global.report.findings);
    out.suppressions.extend(global.report.suppressions);
    out.lock_graph = global.graph;
    out.panics = global.panics;
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files, skipping build output and the
/// analyzer's own deliberately-violating fixture corpus.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn normalize(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_uses_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/core/src/ua.rs");
        assert_eq!(normalize(root, file), "crates/core/src/ua.rs");
    }
}
