//! `pprox-analysis`: a privacy-flow static analyzer for the PProx
//! workspace.
//!
//! PProx's central claim — User–Interest unlinkability (§4.2) — is an
//! information-flow property: UA-side code must never touch item
//! plaintext, IA-side code must never touch user plaintext, and secret
//! material must never reach `Debug` output, format strings, or
//! variable-time comparisons. The type system enforces some of this
//! (`PlaintextUserId` / `PlaintextItemId` / `SecretBytes`), but types
//! cannot stop a `use` statement or a derive. This crate closes the gap:
//! it lexes every crate in the workspace and enforces nine structural
//! rules (R1–R9, see [`rules`]) as a blocking CI stage.
//!
//! The analyzer is deliberately a *lexical* tool, not a type checker: it
//! keys on the names of layer-private APIs, which the newtypes make
//! unique and grep-able. False positives are handled by an explicit,
//! audited escape hatch (`// analysis-allow: <rule> <reason>`) that the
//! report surfaces for review rather than hiding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

use report::Report;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scans the whole workspace under `root` and returns the aggregated,
/// deterministically sorted report.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "shims", "src", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Report::default();
    for file in files {
        let rel = normalize(root, &file);
        let source = fs::read_to_string(&file)?;
        let file_report = rules::analyze_file(&rel, &source);
        out.findings.extend(file_report.findings);
        out.suppressions.extend(file_report.suppressions);
        out.files_scanned += 1;
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files, skipping build output and the
/// analyzer's own deliberately-violating fixture corpus.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn normalize(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_uses_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/core/src/ua.rs");
        assert_eq!(normalize(root, file), "crates/core/src/ua.rs");
    }
}
