//! A small self-contained Rust lexer.
//!
//! The analyzer cannot depend on `syn` (offline build), and it does not
//! need full parsing: every rule it enforces is expressible over a token
//! stream with line numbers, plus the comment text per line (comments
//! carry the `relaxed-ok:` / `analysis-allow:` directives). The lexer
//! therefore handles exactly the lexical subtleties that would otherwise
//! produce false positives — nested block comments, string and raw-string
//! literals (so an identifier *named* in a string is not a reference),
//! char literals vs lifetimes — and nothing more.

use std::collections::{BTreeMap, BTreeSet};

/// Token classification — only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator / delimiter (multi-char for `==`, `!=`, `::` …).
    Punct,
    /// String / byte-string / char literal (text is the content).
    Str,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (content only for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A lexed source file: tokens plus per-line comment text.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comment text per line. A block comment contributes its full text to
    /// every line it spans, so directive lookups are line-based.
    pub comments: BTreeMap<usize, String>,
    /// Lines that carry at least one token (used to find comment-only
    /// lines when walking a contiguous comment block upward).
    pub code_lines: BTreeSet<usize>,
}

impl LexedFile {
    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.code_lines.insert(line);
        self.tokens.push(Tok { kind, text, line });
    }

    fn note_comment(&mut self, line: usize, text: &str) {
        let slot = self.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }
}

const TWO_CHAR_PUNCT: &[&str] = &[
    "==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=", "|=", "&=",
    "^=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and per-line comments.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.note_comment(line, text.trim_start_matches('/').trim());
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment; register its text on every spanned
                // line so line-based directive lookups work.
                let start = i;
                let first_line = line;
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = chars[start..i.min(chars.len())].iter().collect();
                let trimmed = text
                    .trim_start_matches('/')
                    .trim_start_matches('*')
                    .trim_end_matches('/')
                    .trim_end_matches('*')
                    .trim();
                for l in first_line..=line {
                    out.note_comment(l, trimmed);
                }
            }
            '"' => {
                let (text, consumed, newlines) = lex_string(&chars, i);
                out.push(TokKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if raw_string_lookahead(&chars, i).is_some() => {
                let hashes = raw_string_lookahead(&chars, i).unwrap();
                let (text, consumed, newlines) = lex_raw_string(&chars, i, hashes);
                out.push(TokKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            'b' if chars.get(i + 1) == Some(&'"') => {
                let (text, consumed, newlines) = lex_string(&chars, i + 1);
                out.push(TokKind::Str, text, line);
                line += newlines;
                i += consumed + 1;
            }
            '\'' => {
                // Char literal vs lifetime: a lifetime is `'ident` NOT
                // followed by a closing quote.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    let text: String = chars[i + 1..j].iter().collect();
                    out.push(TokKind::Str, text, line);
                    i = j + 1;
                } else if chars
                    .get(i + 1)
                    .map(|&ch| is_ident_start(ch) || ch.is_ascii_digit())
                    .unwrap_or(false)
                    && chars.get(i + 2) == Some(&'\'')
                {
                    let text: String = chars[i + 1..i + 2].iter().collect();
                    out.push(TokKind::Str, text, line);
                    i += 3;
                } else {
                    // Lifetime: consume the tick + identifier, no token.
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(TokKind::Ident, text, line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (is_ident_continue(chars[i])) {
                    i += 1;
                }
                // Fractional part only when followed by a digit (so `0..9`
                // stays three tokens).
                if i < chars.len()
                    && chars[i] == '.'
                    && chars
                        .get(i + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                {
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                out.push(TokKind::Num, text, line);
            }
            _ => {
                let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                if TWO_CHAR_PUNCT.contains(&pair.as_str()) {
                    out.push(TokKind::Punct, pair, line);
                    i += 2;
                } else {
                    out.push(TokKind::Punct, c.to_string(), line);
                    i += 1;
                }
            }
        }
    }
    out
}

/// Lexes a `"…"` literal starting at the opening quote; returns
/// (content, chars consumed, newlines spanned).
fn lex_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut i = start + 1;
    let mut newlines = 0;
    let mut content = String::new();
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(&next) = chars.get(i + 1) {
                    content.push(next);
                    if next == '\n' {
                        newlines += 1;
                    }
                }
                i += 2;
            }
            '"' => {
                i += 1;
                break;
            }
            ch => {
                if ch == '\n' {
                    newlines += 1;
                }
                content.push(ch);
                i += 1;
            }
        }
    }
    (content, i - start, newlines)
}

/// Detects `r"…"`, `r#"…"#`, `br"…"` … at `i`; returns the hash count.
fn raw_string_lookahead(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn lex_raw_string(chars: &[char], start: usize, hashes: usize) -> (String, usize, usize) {
    // Skip prefix (r / br + hashes + quote).
    let mut i = start;
    while i < chars.len() && chars[i] != '"' {
        i += 1;
    }
    i += 1;
    let content_start = i;
    let mut newlines = 0;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                let content: String = chars[content_start..i].iter().collect();
                return (content, i + 1 + hashes - start, newlines);
            }
        }
        if chars[i] == '\n' {
            newlines += 1;
        }
        i += 1;
    }
    let content: String = chars[content_start..].iter().collect();
    (content, chars.len() - start, newlines)
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-gated items.
pub fn test_regions(lex: &LexedFile) -> Vec<(usize, usize)> {
    let toks = &lex.tokens;
    let mut regions = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut open_at: Vec<(i64, usize)> = Vec::new(); // (depth at open, start line)
    let mut k = 0;
    while k < toks.len() {
        // Match `# [ cfg ( test ) ]` (and `#![cfg(test)]`).
        if toks[k].text == "#"
            && matches(toks, k + 1, &["[", "cfg", "(", "test", ")", "]"]).unwrap_or(false)
        {
            pending_attr = true;
            k += 7;
            continue;
        }
        match toks[k].text.as_str() {
            "{" => {
                if pending_attr {
                    open_at.push((depth, toks[k].line));
                    pending_attr = false;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if let Some(&(d, start)) = open_at.last() {
                    if d == depth {
                        regions.push((start, toks[k].line));
                        open_at.pop();
                    }
                }
            }
            ";" => {
                // `#[cfg(test)] use …;` — single-item gate, no braces.
                pending_attr = false;
            }
            _ => {}
        }
        k += 1;
    }
    regions
}

fn matches(toks: &[Tok], at: usize, texts: &[&str]) -> Option<bool> {
    for (off, want) in texts.iter().enumerate() {
        if toks.get(at + off)?.text != *want {
            return Some(false);
        }
    }
    Some(true)
}

/// Whether `line` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_do_not_leak_idents() {
        let lexed = lex(r##"let x = "PlaintextItemId inside a string"; let y = r#"raw "too""#;"##);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "let", "y"]);
        let strs: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].text.contains("PlaintextItemId"));
    }

    #[test]
    fn comments_are_captured_per_line() {
        let src = "// relaxed-ok: counter only\nx.load(Relaxed);\n/* block\nspans */ y();\n";
        let lexed = lex(src);
        assert!(lexed.comments.get(&1).unwrap().contains("relaxed-ok:"));
        assert!(lexed.comments.get(&3).unwrap().contains("spans"));
        assert!(lexed.comments.get(&4).unwrap().contains("spans"));
        assert!(lexed.code_lines.contains(&2));
        assert!(!lexed.code_lines.contains(&1));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'z' }");
        let strs: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "z");
    }

    #[test]
    fn two_char_operators_lex_as_units() {
        let lexed = lex("if a == b && c != d { e::f(); }");
        let puncts: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"&&"));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn test_region_detection() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { use_it(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_test_on_single_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn prod() { body(); }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed);
        assert!(regions.is_empty());
    }
}
